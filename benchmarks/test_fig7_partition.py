"""Fig. 7 / Section 5.3 -- the optimal FPGA partition.

Regenerates the design-space exploration over the legal partitions of an
XCVU37P, the chosen partition's region inventory, the system-reserved
fraction (<10%), and the buffer-removal optimization's reduction of
system-reserved resources (paper: 82.3%).
"""

import pytest

from repro.analysis.report import format_table
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import (
    BufferModel,
    PartitionConstraints,
    PartitionPlanner,
)
from repro.fabric.resources import ResourceVector


def run_dse():
    device = make_xcvu37p()
    planner = PartitionPlanner(device)
    return planner.candidates(), planner.plan()


def reserved_demand_reduction():
    """Weighted system-reserved demand, with vs without the
    Section 3.5.2 optimization."""
    bm = BufferModel()
    cons = PartitionConstraints()
    fixed_lut = cons.service_luts + cons.pipeline_luts
    fixed = ResourceVector(lut=fixed_lut, dff=fixed_lut * 2,
                           bram_mb=cons.service_bram_mb)
    with_opt = (bm.communication_demand(15, 3, True) + fixed).total_cost()
    without = (bm.communication_demand(15, 3, False) + fixed).total_cost()
    return 1 - with_opt / without


def test_fig7_partition_dse(benchmark, emit):
    candidates, best = benchmark(run_dse)

    rows = [[f"{c.blocks_per_die} blocks/die x {c.device.num_dies} dies",
             c.num_blocks, f"{c.user_fraction():.1%}",
             f"{c.reserved_fraction():.1%}",
             "<- chosen" if c.num_blocks == best.num_blocks else ""]
            for c in candidates]
    reduction = reserved_demand_reduction()
    text = format_table(
        ["candidate", "#blocks", "user fraction", "reserved",
         ""], rows,
        title="Fig. 7 -- partition design-space exploration (XCVU37P)")
    text += "\n\n" + best.describe()
    text += (f"\n\nbuffer-removal optimization cuts system-reserved "
             f"demand by {reduction:.1%} (paper: 82.3%)")
    emit("fig7", text)

    # Section 5.3's claims
    assert len(candidates) < 10
    assert best.num_blocks == 15
    assert best.reserved_fraction() < 0.10
    assert 0.60 < reduction < 0.95


def test_fig7_unoptimized_partition_cost(benchmark, emit):
    """Without buffer removal, the communication region starves users."""
    def plan_unoptimized():
        device = make_xcvu37p()
        cons = PartitionConstraints(remove_intra_fpga_buffers=False,
                                    max_reserved_fraction=1.0)
        return PartitionPlanner(device, cons).plan()

    unopt = benchmark(plan_unoptimized)
    opt = PartitionPlanner(make_xcvu37p()).plan()
    emit("fig7_ablation", format_table(
        ["variant", "reserved", "block BRAM (Mb)"],
        [["with buffer removal", f"{opt.reserved_fraction():.1%}",
          f"{opt.block_capacity.bram_mb:.2f}"],
         ["without", f"{unopt.reserved_fraction():.1%}",
          f"{unopt.block_capacity.bram_mb:.2f}"]],
        title="ablation -- intra-FPGA buffer removal (Section 3.5.2)"))
    assert unopt.reserved_fraction() > opt.reserved_fraction()
    assert unopt.block_capacity.bram_mb \
        < opt.block_capacity.bram_mb
