"""Fig. 9 -- normalized response time over the Table 3 workload sets.

The paper's headline numbers: ViTAL reduces mean response time by 82% on
average versus the per-device baseline, and by 25% versus AmorphOS in
high-throughput mode; AmorphOS's improvement collapses on workload sets
whose applications cannot be combined onto one FPGA (e.g. set #3).
"""

import statistics

from repro.analysis.report import format_table
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import COMPOSITIONS, WorkloadGenerator


def test_fig9_normalized_response_time(benchmark, cluster, apps,
                                       system_results, emit):
    # time one representative replay as the benchmark kernel
    generator = WorkloadGenerator(seed=2020)
    requests = generator.generate(7)
    benchmark(lambda: run_experiment(SystemController(cluster),
                                     requests, apps))

    base = system_results["per-device"]
    rows = []
    compositions = {i: f"{int(s * 100)}S/{int(m * 100)}M/"
                       f"{int(l * 100)}L"
                    for i, (s, m, l) in COMPOSITIONS.items()}
    normalized = {mgr: [] for mgr in system_results}
    for set_index in sorted(COMPOSITIONS):
        row = [f"#{set_index} ({compositions[set_index]})"]
        for mgr, per_set in system_results.items():
            norm = (per_set[set_index].mean_response_s
                    / base[set_index].mean_response_s)
            normalized[mgr].append(norm)
            row.append(f"{norm:.2f}")
        rows.append(row)
    rows.append(["average"]
                + [f"{statistics.mean(normalized[mgr]):.2f}"
                   for mgr in system_results])

    vital_vs_base = 1 - statistics.mean(normalized["vital"])
    vital_vs_amorphos = 1 - statistics.mean(
        v / a for v, a in zip(normalized["vital"],
                              normalized["amorphos-ht"]))
    text = format_table(
        ["workload set"] + list(system_results), rows,
        title="Fig. 9 -- response time normalized to the per-device "
              "baseline (lower is better)")
    text += (f"\n\nViTAL vs baseline: -{vital_vs_base:.0%} "
             "(paper: -82%)"
             f"\nViTAL vs AmorphOS-HT: -{vital_vs_amorphos:.0%} "
             "(paper: -25%)")
    emit("fig9", text)

    # headline shapes
    assert 0.70 <= vital_vs_base <= 0.92
    assert 0.10 <= vital_vs_amorphos <= 0.40
    # ViTAL never loses to the baseline on any set
    assert all(n < 0.7 for n in normalized["vital"])
    # AmorphOS's gain is smallest where combination fails (set #3 is
    # among its three worst sets)
    amorphos = normalized["amorphos-ht"]
    worst3 = sorted(range(len(amorphos)),
                    key=lambda i: amorphos[i])[-3:]
    assert 2 in worst3  # index 2 == set #3 (all-Large)
