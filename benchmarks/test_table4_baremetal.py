"""Table 4 -- the bare-metal performance of the abstraction.

Regenerates both halves of the table: the resources one physical block
provides, and the maximum bandwidth / latency of the latency-insensitive
interface over the inter-FPGA and inter-die links, measured by driving
the benchmark-set-1 random-traffic microbenchmark through the cycle-level
channel simulator.
"""

import pytest

from repro.analysis.report import format_table
from repro.interconnect.links import LINKS, LinkClass
from repro.interconnect.simulator import (
    measure_channel_bandwidth,
    random_traffic_experiment,
)


def measure_links():
    out = {}
    for link in (LinkClass.INTER_FPGA, LinkClass.INTER_DIE):
        cycles = 400 * LINKS[link].round_trip_cycles()
        bw, lat = measure_channel_bandwidth(link, cycles=cycles)
        out[link] = (bw, lat)
    return out


def test_table4_bare_metal(benchmark, cluster, emit):
    measured = benchmark(measure_links)

    cap = cluster.partition.block_capacity
    block_rows = [[f"{cap.lut / 1e3:.1f}k", f"{cap.dff / 1e3:.1f}k",
                   f"{cap.dsp:.0f}", f"{cap.bram_mb:.2f}Mb"]]
    text = format_table(
        ["LUTs", "DFFs", "DSPs", "BRAM"], block_rows,
        title="Table 4 -- resources provided by a physical block\n"
              "(paper: 79.2k / 158.4k / 580 / 4.22Mb)")

    link_rows = []
    for link, (bw, lat) in measured.items():
        model = LINKS[link]
        link_rows.append([
            str(link), f"{bw:.1f} Gb/s",
            f"{model.bandwidth_gbps:.1f} Gb/s",
            f"{lat * 4:.0f} ns"])
    text += "\n\n" + format_table(
        ["link", "measured max bandwidth", "paper", "latency"],
        link_rows,
        title="Table 4 -- communication performance "
              "(paper: inter-FPGA 100 Gb/s, inter-die 312.5 Gb/s)")
    emit("table4", text)

    bw_fpga, _ = measured[LinkClass.INTER_FPGA]
    bw_die, _ = measured[LinkClass.INTER_DIE]
    assert bw_fpga == pytest.approx(100.0, rel=0.03)
    assert bw_die == pytest.approx(312.5, rel=0.03)


def test_table4_saturation_curve(benchmark, emit):
    """Random traffic sweep: accepted bandwidth saturates at capacity."""
    results = benchmark(
        random_traffic_experiment, LinkClass.INTER_FPGA,
        [0.2, 0.4, 0.6, 0.8, 1.0], 30000)
    emit("table4_sweep", format_table(
        ["offered rate", "accepted (Gb/s)", "saturation",
         "latency (cycles)"],
        [[f"{r.offered_rate:.1f}", f"{r.accepted_gbps:.1f}",
          f"{r.saturation:.0%}", f"{r.mean_latency_cycles:.0f}"]
         for r in results],
        title="benchmark set 1 -- random traffic on the inter-FPGA "
              "link"))
    accepted = [r.accepted_gbps for r in results]
    assert accepted == sorted(accepted)
    assert results[-1].saturation > 0.95
