"""Fig. 1 -- the motivation figures.

(a) Representative FPGA applications use widely varying, mostly small
    fractions of a VU13P -> per-device allocation fragments internally.
(b) FPGA capacity keeps growing across generations -> the fragmentation
    worsens over time.
"""

from repro.analysis.report import format_bar_series
from repro.fabric.devices import CAPACITY_TIMELINE, make_vu13p
from repro.hls.kernels import REPRESENTATIVE_APPS


def fig1a_series():
    cap = make_vu13p().capacity
    labels = [a.name for a in REPRESENTATIVE_APPS]
    values = [a.resources.utilization_of(cap)
              for a in REPRESENTATIVE_APPS]
    return labels, values


def test_fig1a_app_footprints(benchmark, emit):
    labels, values = benchmark(fig1a_series)
    emit("fig1a", format_bar_series(
        labels, values,
        title="Fig. 1a -- resource usage normalized to VU13P "
              "(max per-type fraction)"))
    # the paper's point: most applications use a small fraction of the
    # device, and usage varies widely
    assert sum(1 for v in values if v < 0.5) >= len(values) * 0.6
    assert max(values) / min(values) > 4


def test_fig1b_capacity_growth(benchmark, emit):
    series = benchmark(lambda: [(p.year, p.family, p.logic_cells_k)
                                for p in CAPACITY_TIMELINE])
    emit("fig1b", format_bar_series(
        [f"{year} {family}" for year, family, _ in series],
        [cells for *_, cells in series],
        title="Fig. 1b -- flagship capacity by generation (k logic "
              "cells)", unit="k"))
    first, last_peak = series[0][2], max(c for *_, c in series)
    assert last_peak / first > 100
