"""Ablation -- the communication-aware policy (Section 3.4).

Swaps ViTAL's multi-round, span-minimizing policy for two strawmen
(first-fit over the global block pool; round-robin spreading) and
measures what the policy is buying: fewer board-spanning deployments,
lower communication overhead, and no loss in response time.  Also checks
the scheduling-discipline knob (strict FIFO vs backfill).
"""

import statistics

from repro.analysis.report import format_table
from repro.runtime.controller import SystemController
from repro.runtime.policy import (
    CommunicationAwarePolicy,
    FirstFitPolicy,
    SpreadPolicy,
)
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator


POLICIES = {
    "communication-aware": CommunicationAwarePolicy,
    "first-fit": FirstFitPolicy,
    "spread": SpreadPolicy,
}


def replay(cluster, apps, policy_factory, backfill=False):
    generator = WorkloadGenerator(seed=77)
    summaries = []
    for replica in range(3):
        requests = generator.generate(8, replica=replica)
        manager = SystemController(cluster,
                                   policy=policy_factory())
        summaries.append(run_experiment(manager, requests, apps,
                                        backfill=backfill).summary)
    return summaries


def test_ablation_allocation_policy(benchmark, cluster, apps, emit):
    results = {name: replay(cluster, apps, factory)
               for name, factory in POLICIES.items()}
    benchmark(lambda: replay(cluster, apps, CommunicationAwarePolicy)[0])

    rows = []
    for name, summaries in results.items():
        rows.append([
            name,
            f"{statistics.mean(s.mean_response_s for s in summaries):.1f}",
            f"{statistics.mean(s.multi_fpga_fraction for s in summaries):.0%}",
            f"{max(s.max_latency_overhead for s in summaries):.2e}",
        ])
    emit("ablation_policy", format_table(
        ["policy", "mean response (s)", "multi-FPGA deployments",
         "worst latency overhead"], rows,
        title="ablation -- allocation policy on workload set #8 "
              "(L-heavy)"))

    aware = results["communication-aware"]
    spread = results["spread"]
    mean_spans = lambda ss: statistics.mean(s.multi_fpga_fraction
                                            for s in ss)
    # the paper's policy minimizes spanning; spreading maximizes it
    assert mean_spans(aware) < mean_spans(spread) * 0.6
    # and pays no more communication overhead than any strawman
    assert max(s.max_latency_overhead for s in aware) \
        <= max(s.max_latency_overhead for s in spread)
    # response time is no worse than first-fit's
    mean_resp = lambda ss: statistics.mean(s.mean_response_s
                                           for s in ss)
    assert mean_resp(aware) <= mean_resp(results["first-fit"]) * 1.10


def test_ablation_scheduling_discipline(benchmark, cluster, apps, emit):
    strict = replay(cluster, apps, CommunicationAwarePolicy,
                    backfill=False)
    backfill = replay(cluster, apps, CommunicationAwarePolicy,
                      backfill=True)
    benchmark(lambda: None)

    mean = lambda ss, attr: statistics.mean(getattr(s, attr)
                                            for s in ss)
    emit("ablation_backfill", format_table(
        ["discipline", "mean response (s)", "mean wait (s)",
         "block util"],
        [["strict FIFO", f"{mean(strict, 'mean_response_s'):.1f}",
          f"{mean(strict, 'mean_wait_s'):.1f}",
          f"{mean(strict, 'block_utilization'):.0%}"],
         ["backfill", f"{mean(backfill, 'mean_response_s'):.1f}",
          f"{mean(backfill, 'mean_wait_s'):.1f}",
          f"{mean(backfill, 'block_utilization'):.0%}"]],
        title="ablation -- queueing discipline (set #8)"))
    # backfill can only improve mean response (small jobs jump gaps)
    assert mean(backfill, "mean_response_s") \
        <= mean(strict, "mean_response_s") * 1.02
