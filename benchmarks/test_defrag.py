"""Rejected-request recovery through live migration (defragmentation).

Not a paper figure: the paper's §5.5 utilization study assumes the
communication-aware allocator may always span boards, so external
fragmentation shows up as *slower* requests (inter-board latency), not
rejected ones.  Real operators cap spanning (latency SLOs, ring-hop
budgets); under a span cap, fragmentation turns directly into rejected
capacity.  This bench builds a deliberately fragmented 64-board cluster
-- plenty of aggregate free blocks, no single board with enough -- and
asks three controllers to admit one large application:

- per-device: needs a whole free FPGA, has none -> reject;
- ViTAL, span cap 1: the stock allocator sees no single-board home ->
  reject (this is the static-allocation answer);
- ViTAL + defragmentation: the controller live-migrates a few small
  tenants (state checkpoint + relocation, §13 of DESIGN.md) to open a
  single-board home, then admits the request.

The table lands in ``benchmarks/results/`` for the report.
"""

from repro.baselines.per_device import PerDeviceManager
from repro.cluster.cluster import make_cluster
from repro.runtime.defrag import DefragmentingController
from repro.runtime.isolation import verify_isolation
from repro.runtime.policy import CommunicationAwarePolicy

NUM_BOARDS = 64
SMALL = "cifar10-M"   # 3 blocks
LARGE = "svhn-L"      # 10 blocks > the 6 free blocks left per board


def _fragment(controller, small, release) -> None:
    """Fill every board with small tenants, then free a scattered
    subset: each board ends with some free blocks, none with enough
    for ``svhn-L``, while the cluster-wide total dwarfs it."""
    per_board = controller.cluster.blocks_per_board // small.num_blocks
    rid = 0
    live = []
    for _ in range(NUM_BOARDS * per_board):
        d = controller.try_deploy(small, rid, 0.0)
        if d is None:
            break
        live.append(d)
        rid += 1
    # release two tenants per board -> 6 free blocks each
    by_board: dict[int, list] = {}
    for d in live:
        by_board.setdefault(d.placement.boards[0], []).append(d)
    for board, tenants in sorted(by_board.items()):
        for d in tenants[:2]:
            release(d)


def test_defrag_recovers_rejected_capacity(benchmark, apps, emit):
    small, large = apps[SMALL], apps[LARGE]

    def run_defrag():
        cluster = make_cluster(num_boards=NUM_BOARDS)
        controller = DefragmentingController(
            cluster, policy=CommunicationAwarePolicy(max_boards=1))
        _fragment(controller, small,
                  lambda d: controller.release(d))
        return controller, controller.try_deploy(large, 9000, 0.0)

    controller, admitted = benchmark(run_defrag)

    # -- per-device: one tenant occupies a whole FPGA, so the same
    # small-tenant load fills the cluster at 64 tenants (ViTAL hosts
    # 5x that) and there is no sub-board space to fragment or reclaim
    per_device = PerDeviceManager(make_cluster(num_boards=NUM_BOARDS))
    rid = 0
    while per_device.try_deploy(small, rid, 0.0) is not None:
        rid += 1
    pd_deploy = per_device.try_deploy(large, 9000, 0.0)

    # -- stock ViTAL under the same span cap: static allocation rejects
    from repro.runtime.controller import SystemController
    stock = SystemController(
        make_cluster(num_boards=NUM_BOARDS),
        policy=CommunicationAwarePolicy(max_boards=1))
    _fragment(stock, small, lambda d: stock.release(d))
    free = stock.resource_db.free_by_board()
    total_free = sum(len(v) for v in free.values())
    stock_deploy = stock.try_deploy(large, 9000, 0.0)

    # the setup is the interesting one: aggregate space is plentiful,
    # no single board can host the request
    assert total_free >= large.num_blocks
    assert all(len(v) < large.num_blocks for v in free.values())

    assert pd_deploy is None
    assert stock_deploy is None
    assert admitted is not None and not admitted.spans_boards
    assert controller.migrations_performed > 0
    assert controller.migration_pause_s > 0
    verify_isolation(controller)

    rows = [
        ("per-device (full at 64 tenants)", "reject", 0, 0.0),
        ("vital, span cap 1 (static)", "reject", 0, 0.0),
        ("vital + defragmentation", "admit",
         controller.migrations_performed,
         controller.migration_pause_s),
    ]
    width = max(len(r[0]) for r in rows)
    lines = [
        "Rejected-request recovery on a fragmented 64-board cluster",
        f"(free blocks total={total_free}, largest single-board pool="
        f"{max(len(v) for v in free.values())}, request needs "
        f"{large.num_blocks})",
        "",
        f"{'controller':<{width}}  {'verdict':<8} "
        f"{'migrations':>10} {'pause (ms)':>11}",
    ]
    for label, verdict, moves, pause in rows:
        lines.append(f"{label:<{width}}  {verdict:<8} "
                     f"{moves:>10} {pause * 1e3:>11.2f}")
    emit("defrag_recovery", "\n".join(lines) + "\n")
