"""Robustness: degraded-mode control vs recovery-only under chaos.

Not a paper figure: the paper's evaluation assumes a healthy cluster.
This bench drives the PR 6 chaos harness and records the two numbers
the acceptance criteria name:

- **the guard win** -- on the correlated rack-flap scenario (one rack
  fail-stops three times inside a breaker window) the degraded-mode
  control plane must beat PR 1 recovery-only on goodput *and* eviction
  count, because the breaker stops re-placement onto the flapping rack;
- **the guard is free when idle** -- a fault-free run with the guard
  attached must stay within a 10% wall-clock budget of the unguarded
  run (the hot path pays one ``None``-check).

Results land in ``benchmarks/results/robustness.txt`` and the
``BENCH_robustness.json`` perf-trajectory file at the repo root (the
first entry of the roadmap's perf history; later PRs append).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.runtime.controller import SystemController
from repro.runtime.guard import DegradedModeGuard, GuardConfig
from repro.sim.chaos import run_scenario, standard_scenarios
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent \
    / "BENCH_robustness.json"

#: wall-clock budget for the guard's fault-free overhead (CI noise
#: makes tighter budgets flaky; the guard's real cost is one attribute
#: check per deploy attempt)
OVERHEAD_BUDGET = 1.10


def _scenario(name: str):
    for scenario in standard_scenarios():
        if scenario.name == name:
            return scenario
    raise LookupError(name)


def _chaos_cluster():
    from repro.cluster.cluster import make_cluster
    return make_cluster(num_boards=8)


def test_guard_beats_recovery_only_on_rack_flap(benchmark, emit,
                                                compiled_apps):
    cluster = _chaos_cluster()
    scenario = _scenario("rack-flap")

    t0 = time.perf_counter()
    guarded = run_scenario(scenario, with_guard=True,
                           apps=compiled_apps, cluster=cluster)
    baseline = run_scenario(scenario, with_guard=False,
                            apps=compiled_apps, cluster=cluster)
    campaign_wall_s = time.perf_counter() - t0

    benchmark(lambda: run_scenario(scenario, with_guard=True,
                                   apps=compiled_apps,
                                   cluster=cluster))

    rows = []
    for label, result in (("degraded-mode guard", guarded),
                          ("recovery-only (PR 1)", baseline)):
        s = result.summary
        rows.append([label, f"{s.goodput_fraction:.3f}",
                     f"{s.interruptions:g}", f"{s.shed_requests:g}",
                     f"{result.quarantines}",
                     f"{s.degraded_s:.0f}"])
    text = format_table(
        ["control plane", "goodput", "evictions", "shed",
         "quarantines", "degraded (s)"], rows,
        title="Correlated rack-flap scenario (one rack fails 3x in a "
              "breaker window):\nbreaker + shedding vs PR 1 recovery "
              "alone, same seed, same schedule")
    emit("robustness", text)

    # the acceptance criterion: better goodput AND fewer evictions
    assert guarded.summary.goodput_fraction \
        > baseline.summary.goodput_fraction
    assert guarded.summary.interruptions \
        < baseline.summary.interruptions
    assert guarded.quarantines > 0

    _record_trajectory(
        rack_flap={
            "guarded": {
                "goodput": guarded.summary.goodput_fraction,
                "evictions": guarded.summary.interruptions,
                "shed": guarded.shed,
                "quarantines": guarded.quarantines,
            },
            "recovery_only": {
                "goodput": baseline.summary.goodput_fraction,
                "evictions": baseline.summary.interruptions,
            },
        },
        rack_flap_pair_wall_s=round(campaign_wall_s, 3))


def test_guard_is_free_when_fault_free(cluster, compiled_apps):
    """Attached-but-idle guard stays inside the 10% wall budget."""
    requests = WorkloadGenerator(seed=11).generate(
        7, num_requests=120, mean_interarrival_s=1.5)

    def run(guard):
        run_experiment(SystemController(cluster), requests,
                       compiled_apps, guard=guard)

    def best_of(n, guard_factory):
        walls = []
        for _ in range(n):
            t0 = time.perf_counter()
            run(guard_factory())
            walls.append(time.perf_counter() - t0)
        return min(walls)

    best_of(1, lambda: None)  # warm caches before timing
    plain = best_of(3, lambda: None)
    guarded = best_of(3, lambda: DegradedModeGuard(GuardConfig()))
    ratio = guarded / plain
    print(f"\nfault-free wall: plain {plain:.4f}s, guarded "
          f"{guarded:.4f}s, ratio {ratio:.3f}")
    assert ratio < OVERHEAD_BUDGET
    _record_trajectory(
        faultfree_overhead_ratio=round(ratio, 4),
        faultfree_plain_wall_s=round(plain, 4),
        faultfree_guarded_wall_s=round(guarded, 4))


def test_chaos_campaign_wall_time(emit):
    """The whole eight-scenario campaign in one number for the
    trajectory file (and a sanity ceiling so CI notices blowups)."""
    from repro.sim.chaos import run_campaign
    t0 = time.perf_counter()
    campaign = run_campaign()
    wall = time.perf_counter() - t0
    assert len(campaign.results) == 8
    print(f"\nchaos campaign: {wall:.2f}s wall, "
          f"{sum(r.invariant_checks for r in campaign.results)} "
          "invariant checks")
    assert wall < 300.0
    _record_trajectory(campaign_wall_s=round(wall, 2),
                       campaign_scenarios=len(campaign.results))


def _record_trajectory(**fields) -> None:
    """Merge ``fields`` into this PR's entry of the trajectory file.

    The file keeps one entry per anchor; re-running a bench overwrites
    that entry's metrics, never history.
    """
    from repro.analysis.bench import merge_metrics
    merge_metrics(BENCH_FILE, "pr6-degraded-mode", fields)
