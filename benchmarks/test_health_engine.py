"""Cluster health engine: SLO behaviour on the demo outage + overhead.

Two contracts gate this layer:

1. **The demo outage is detected and closed** -- a seeded 4-board run
   with ``FaultSchedule.demo`` must emit at least one ``slo.violation``
   during the outage window and recover every violated rule after the
   repair, with byte-stable timeline output across runs.
2. **Bounded overhead** -- on the 64-board saturated configuration of
   the scalability bench, the health-monitored event loop (timeline +
   SLO rules over a non-retaining tracer) must stay within 10% of the
   bare one.  Per-event work is O(1) amortized; per-bucket work is
   O(num_boards) and bounded by horizon / interval.  As in
   ``test_observability.py``, the bound is checked on the best of five
   interleaved monitored/bare paired ratios so shared-runner noise must
   be consistently one-sided to produce a spurious failure.
"""

from __future__ import annotations

import gc
import time

from repro.cluster.cluster import make_cluster
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionPlanner
from repro.faults import FaultSchedule
from repro.obs import SLOEngine, TimelineAggregator, Tracer
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator

#: the 64-board saturated configuration of test_scalability.py
WORKLOAD_SET = 10
BOARDS = 64
NUM_REQUESTS = 2000
INTERARRIVAL_S = 0.2
MAX_OVERHEAD = 0.10
ROUNDS = 5


def _fixture(apps, boards: int, num_requests: int, interarrival: float):
    partition = PartitionPlanner(make_xcvu37p()).plan()
    cluster = make_cluster(boards, partition=partition)
    requests = WorkloadGenerator(seed=2020).generate(
        WORKLOAD_SET, num_requests=num_requests,
        mean_interarrival_s=interarrival)
    return cluster, apps, requests


def _timed_run(cluster, apps, requests, health: bool, **kwargs):
    monitors = {}
    if health:
        monitors = {"timeline": TimelineAggregator(),
                    "slo": SLOEngine()}
    t0 = time.perf_counter()
    result = run_experiment(SystemController(cluster), requests, apps,
                            **monitors, **kwargs)
    return time.perf_counter() - t0, result, monitors


def test_health_slo_demo_outage(emit, compiled_apps):
    """The canonical outage trips an SLO, recovery closes it, and the
    timeline export is byte-stable across seeded runs."""
    cluster, apps, requests = _fixture(compiled_apps, 4, 120, 2.0)
    runs = []
    for _ in range(2):
        timeline = TimelineAggregator()
        slo = SLOEngine()
        tracer = Tracer()
        run_experiment(SystemController(cluster), requests, apps,
                       faults=FaultSchedule.demo(4),
                       recovery="migrate", tracer=tracer,
                       timeline=timeline, slo=slo)
        runs.append((timeline, slo, tracer))
    (timeline, slo, tracer), (timeline2, _, tracer2) = runs
    assert timeline.to_json() == timeline2.to_json(), (
        "seeded timeline export is not byte-stable")
    assert tracer.to_jsonl() == tracer2.to_jsonl()
    violations = [e for e in tracer.entries()
                  if e["name"] == "slo.violation"]
    assert violations, "demo outage tripped no SLO rule"
    assert slo.all_recovered(), (
        "a rule is still violated after the board repair")
    outage = [b for b in timeline.buckets if b["failed_boards"]]
    assert outage and timeline.buckets[-1]["failed_boards"] == 0
    rows = ["SLO rules on the demo outage "
            "(4 boards, 120 requests, board 1 down 40s-100s)",
            f"{'rule':<24} {'violations':>11} {'recovered':>10} "
            f"{'violated_s':>11}"]
    for state in slo.report():
        rows.append(f"{state['rule']:<24} {state['violations']:>11} "
                    f"{state['recovered']:>10} "
                    f"{state['violated_s']:>11.0f}")
    rows.append(f"timeline buckets: {len(timeline.buckets)} "
                f"(byte-stable across runs: yes)")
    emit("health_slo", "\n".join(rows))


def test_health_engine_overhead(emit, compiled_apps):
    """Health-monitored event loop within MAX_OVERHEAD of bare, best of
    ROUNDS interleaved paired ratios."""
    cluster, apps, requests = _fixture(compiled_apps, BOARDS,
                                       NUM_REQUESTS, INTERARRIVAL_S)
    # warmup pair: first runs pay cache/branch-predictor warmup
    _timed_run(cluster, apps, requests, health=False)
    _timed_run(cluster, apps, requests, health=True)
    on_walls, off_walls = [], []
    buckets = 0
    # the monitors allocate per-bucket samples; freeze the surrounding
    # heap (fixtures, pytest state) out of the collector's scans so the
    # measurement charges the health engine for its own allocations
    gc.collect()
    gc.freeze()
    try:
        # interleave so clock drift / machine noise hits both sides
        # alike
        for _ in range(ROUNDS):
            wall, _, _ = _timed_run(cluster, apps, requests,
                                    health=False)
            off_walls.append(wall)
            wall, _, monitors = _timed_run(cluster, apps, requests,
                                           health=True)
            on_walls.append(wall)
            buckets = len(monitors["timeline"].buckets)
    finally:
        gc.unfreeze()
    ratios = [on / off for on, off in zip(on_walls, off_walls)]
    best = min(range(ROUNDS), key=lambda i: ratios[i])
    monitored, bare = on_walls[best], off_walls[best]
    overhead = ratios[best] - 1.0
    emit("health_overhead", "\n".join([
        "Health engine overhead on the 64-board scalability "
        "configuration (timeline + 3 SLO rules, 10s buckets)",
        f"{'boards':>6} {'requests':>9} {'interarr_s':>12} "
        f"{'off_s':>8} {'on_s':>8} {'overhead':>9} {'buckets':>8}",
        f"{BOARDS:>6} {NUM_REQUESTS:>9} {INTERARRIVAL_S:>12.2f} "
        f"{bare:>8.3f} {monitored:>8.3f} {overhead:>8.1%} "
        f"{buckets:>8}"]))
    assert buckets > 0  # the timeline actually aggregated
    assert overhead <= MAX_OVERHEAD, (
        f"health engine overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} (monitored {monitored:.3f}s vs "
        f"bare {bare:.3f}s)")
