"""Observability layer: determinism and overhead of the tracer.

Two properties make the tracer safe to leave on in experiments:

1. **Determinism** -- a seeded run traced twice writes byte-identical
   JSONL (timestamps are simulation times, never wall clocks), and the
   summary with tracing enabled is bit-identical to tracing disabled
   (the tracer only observes).
2. **Bounded overhead** -- on the 64-board saturated configuration of
   the scalability bench, the traced event loop must stay within 10%
   of the untraced one (recording is a tuple append, JSON formatting
   happens only at export).  Wall-clock noise on shared runners is of
   the same order as the effect, so the bound is checked on the *best*
   of five interleaved traced/untraced ratios: machine noise within a
   round hits both sides, and a spurious failure would need every
   round to be unlucky in the same direction.
"""

from __future__ import annotations

import gc
import time

from repro.cluster.cluster import make_cluster
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionPlanner
from repro.obs import Tracer
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator

#: the 64-board saturated configuration of test_scalability.py
WORKLOAD_SET = 10
BOARDS = 64
NUM_REQUESTS = 2000
INTERARRIVAL_S = 0.2
MAX_OVERHEAD = 0.10
ROUNDS = 5


def _fixture(apps, boards: int, num_requests: int, interarrival: float):
    partition = PartitionPlanner(make_xcvu37p()).plan()
    cluster = make_cluster(boards, partition=partition)
    requests = WorkloadGenerator(seed=2020).generate(
        WORKLOAD_SET, num_requests=num_requests,
        mean_interarrival_s=interarrival)
    return cluster, apps, requests


def _timed_run(cluster, apps, requests, tracer):
    t0 = time.perf_counter()
    result = run_experiment(SystemController(cluster), requests, apps,
                            tracer=tracer)
    return time.perf_counter() - t0, result.summary


def test_trace_determinism(emit, compiled_apps):
    """Same seed, two runs: identical trace bytes, identical summary
    with tracing on, off, or absent."""
    cluster, apps, requests = _fixture(compiled_apps, 4, 120, 2.0)
    tracers = [Tracer(), Tracer()]
    summaries = []
    for tracer in tracers:
        _, summary = _timed_run(cluster, apps, requests, tracer)
        summaries.append(summary)
    first, second = (t.to_jsonl() for t in tracers)
    assert first == second, "seeded trace output is not byte-stable"
    _, untraced = _timed_run(cluster, apps, requests, None)
    assert summaries[0] == summaries[1] == untraced, (
        "tracing changed the simulation results")
    emit("observability_determinism",
         "Tracing determinism (4 boards, 120 requests, seed 2020)\n"
         f"trace entries per run: {len(tracers[0])}\n"
         f"byte-identical across runs: yes\n"
         f"summary identical to tracing-off: yes")


def test_tracer_overhead(emit, compiled_apps):
    """Traced event loop within MAX_OVERHEAD of untraced, best of
    ROUNDS interleaved paired ratios."""
    cluster, apps, requests = _fixture(compiled_apps, BOARDS,
                                       NUM_REQUESTS, INTERARRIVAL_S)
    # warmup pair: first runs pay cache/branch-predictor warmup
    _timed_run(cluster, apps, requests, None)
    _timed_run(cluster, apps, requests, Tracer())
    traced_walls, untraced_walls = [], []
    entries = 0
    # the traced run retains ~15k entries, which trips full GC passes
    # whose cost scales with everything else alive in the process
    # (fixtures, pytest state) -- freeze that heap out of the
    # collector's scans so the measurement charges the tracer for its
    # own allocations, not for the size of the surrounding test run
    gc.collect()
    gc.freeze()
    try:
        # interleave so clock drift / machine noise hits both sides
        # alike
        for _ in range(ROUNDS):
            wall, _ = _timed_run(cluster, apps, requests, None)
            untraced_walls.append(wall)
            tracer = Tracer()
            wall, _ = _timed_run(cluster, apps, requests, tracer)
            traced_walls.append(wall)
            entries = len(tracer)
    finally:
        gc.unfreeze()
    # per-round ratios pair measurements taken back to back; the
    # cleanest round bounds the true overhead far more tightly than
    # any single-side statistic on a noisy shared runner
    ratios = [t / u for t, u in zip(traced_walls, untraced_walls)]
    best = min(range(ROUNDS), key=lambda i: ratios[i])
    traced, untraced = traced_walls[best], untraced_walls[best]
    overhead = ratios[best] - 1.0
    emit("observability", "\n".join([
        "Tracer overhead on the 64-board scalability configuration",
        f"{'boards':>6} {'requests':>9} {'interarr_s':>12} "
        f"{'off_s':>8} {'on_s':>8} {'overhead':>9} {'entries':>8}",
        f"{BOARDS:>6} {NUM_REQUESTS:>9} {INTERARRIVAL_S:>12.2f} "
        f"{untraced:>8.3f} {traced:>8.3f} {overhead:>8.1%} "
        f"{entries:>8}"]))
    assert entries > NUM_REQUESTS  # the trace actually recorded
    assert overhead <= MAX_OVERHEAD, (
        f"tracer overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} (traced {traced:.3f}s vs "
        f"untraced {untraced:.3f}s)")
