"""Fig. 8 / Section 5.4 -- the compilation-layer evaluation.

Regenerates three results over the full 21-design benchmark set:

- the compile-time breakdown (paper: P&R 83.9% of total, ViTAL's custom
  tools 1.6%);
- the partition quality: required inter-block bandwidth versus an
  unoptimized (random) partition (paper: 2.1x reduction on average);
- the combination blow-up AmorphOS's coupled compilation would need for
  the same benchmark set ("hundreds of combinations"), versus ViTAL's
  one compile per design.
"""

import math

from repro.analysis.report import format_table
from repro.compiler.partitioner import (
    NetlistPartitioner,
    blocks_for,
    random_partition,
)
from repro.compiler.timing import CompileTimeBreakdown
from repro.hls.frontend import synthesize
from repro.hls.kernels import all_benchmarks


def test_fig8_compile_time_breakdown(benchmark, cluster, apps, emit):
    breakdowns = [app.breakdown for app in apps.values()]
    total = CompileTimeBreakdown.aggregate(breakdowns)

    def aggregate():
        return CompileTimeBreakdown.aggregate(breakdowns)

    benchmark(aggregate)

    rows = [[step, f"{seconds / 3600:.2f} h",
             f"{seconds / total.total_s:.1%}"]
            for step, seconds in total.as_dict().items()]
    text = format_table(
        ["step", "time (21 designs)", "share"], rows,
        title="Fig. 8 -- compilation time breakdown "
              "(paper: P&R 83.9%, custom tools 1.6%)")
    per_design = [[name,
                   f"{app.breakdown.total_s / 60:.0f} min",
                   f"{app.breakdown.pnr_fraction:.1%}",
                   f"{app.breakdown.custom_fraction:.1%}"]
                  for name, app in sorted(apps.items())]
    text += "\n\n" + format_table(
        ["design", "total", "P&R share", "custom share"], per_design,
        title="per-design breakdown")
    text += (f"\n\nvendor P&R share: {total.pnr_fraction:.1%}   "
             f"custom-tool share: {total.custom_fraction:.1%}   "
             f"measured wall time of our custom tools: "
             f"{total.measured_custom_s:.1f} s")
    emit("fig8", text)

    assert 0.80 < total.pnr_fraction < 0.88
    assert 0.005 < total.custom_fraction < 0.03


def test_fig8_partition_quality(benchmark, cluster, emit):
    """Section 5.4: partition cuts required inter-block bandwidth ~2.1x."""
    capacity = cluster.partition.block_capacity
    multi = [s for s in all_benchmarks()
             if blocks_for(s.resources, capacity) >= 2]

    def measure_one(spec):
        netlist = synthesize(spec)
        n = blocks_for(spec.resources, capacity)
        ours = NetlistPartitioner(capacity).partition(netlist,
                                                      num_blocks=n)
        rand = random_partition(netlist, n, capacity)
        return (rand.cut_bandwidth_bits
                / max(1.0, ours.cut_bandwidth_bits))

    benchmark(measure_one, multi[0])

    ratios = {spec.name: measure_one(spec) for spec in multi}
    geomean = math.exp(sum(math.log(r) for r in ratios.values())
                       / len(ratios))
    emit("fig8_partition_quality", format_table(
        ["design", "bandwidth reduction vs unoptimized"],
        [[name, f"{ratio:.2f}x"] for name, ratio in ratios.items()]
        + [["geomean", f"{geomean:.2f}x"]],
        title="Section 5.4 -- partition quality (paper: 2.1x average)"))
    assert geomean > 1.8
    assert all(r > 1.0 for r in ratios.values())


def test_fig8_amorphos_combination_blowup(benchmark, emit):
    """ViTAL compiles each design once; AmorphOS's high-throughput mode
    must offline compile every co-residence combination."""
    n_designs = len(all_benchmarks())

    def count_combinations(k_max=3):
        total = 0
        for k in range(2, k_max + 1):
            total += math.comb(n_designs, k)
        return total

    combos = benchmark(count_combinations)
    emit("fig8_combinations", format_table(
        ["approach", "offline compilations for the benchmark set"],
        [["ViTAL", n_designs],
         ["AmorphOS-HT (pairs)", math.comb(n_designs, 2)],
         ["AmorphOS-HT (pairs+triples)", combos]],
        title="Section 5.4 -- compilation coupling cost"))
    assert math.comb(n_designs, 2) > 100  # "hundreds of combinations"
    assert combos > 10 * n_designs
