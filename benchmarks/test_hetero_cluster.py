"""Section 7 extension -- virtualizing a heterogeneous cluster.

Replays a full Table 3 workload set on a mixed 2x XCVU37P + 2x VU13P
cluster through the heterogeneous controller: every request completes,
both footprint groups carry load, and QoS stays in the same class as the
homogeneous platform's (the VU13P group's bigger blocks absorb large
apps with fewer inter-block channels).
"""

import statistics

from repro.analysis.report import format_table
from repro.cluster.cluster import make_heterogeneous_cluster
from repro.runtime.controller import SystemController
from repro.runtime.hetero import HeterogeneousManagerAdapter
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator


def replay(manager_factory, cluster, apps, replicas=2):
    generator = WorkloadGenerator(seed=23)
    summaries = []
    for replica in range(replicas):
        requests = generator.generate(7, num_requests=90,
                                      replica=replica)
        summaries.append(run_experiment(manager_factory(cluster),
                                        requests, apps).summary)
    return summaries


def test_heterogeneous_cluster_serves_workloads(benchmark, cluster,
                                                apps, emit):
    mixed = make_heterogeneous_cluster(
        ["XCVU37P", "XCVU37P", "VU13P", "VU13P"])
    homogeneous = replay(SystemController, cluster, apps)
    mixed_summaries = benchmark.pedantic(
        replay, args=(HeterogeneousManagerAdapter, mixed, apps),
        rounds=1, iterations=1)

    mean = lambda ss, attr: statistics.mean(getattr(s, attr)
                                            for s in ss)
    rows = [
        ["4x XCVU37P (paper platform)",
         f"{mean(homogeneous, 'mean_response_s'):.1f}",
         f"{mean(homogeneous, 'block_utilization'):.0%}",
         f"{mean(homogeneous, 'multi_fpga_fraction'):.0%}"],
        ["2x XCVU37P + 2x VU13P (mixed)",
         f"{mean(mixed_summaries, 'mean_response_s'):.1f}",
         f"{mean(mixed_summaries, 'block_utilization'):.0%}",
         f"{mean(mixed_summaries, 'multi_fpga_fraction'):.0%}"],
    ]
    emit("hetero_cluster", format_table(
        ["platform", "mean response (s)", "block util",
         "multi-FPGA"], rows,
        title="Section 7 -- heterogeneous cluster (workload set #7)"))

    # every request completed (run_experiment raises otherwise); QoS in
    # the same class as the homogeneous platform despite half the
    # boards being a different device entirely
    assert mean(mixed_summaries, "mean_response_s") \
        < 2.0 * mean(homogeneous, "mean_response_s")
    assert all(s.num_requests == 90 for s in mixed_summaries)
