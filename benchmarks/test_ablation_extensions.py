"""Ablations for the paper's optional / future-work features.

- same-function block sharing (Section 3.4's unexercised mode);
- defragmentation through runtime relocation (Section 3.4 future work);
- hardened system regions (Section 3.5.2 future work);
- DRAM-contention-aware service model (service-region realism).
"""

import statistics

from repro.analysis.report import format_table
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionConstraints, PartitionPlanner
from repro.runtime.controller import SystemController
from repro.runtime.defrag import DefragmentingController
from repro.runtime.sharing import FunctionSharingController
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator


def replay(cluster, apps, factory, set_index, interarrival,
           replicas=3, requests=100):
    generator = WorkloadGenerator(seed=31)
    out = []
    for replica in range(replicas):
        reqs = generator.generate(set_index, num_requests=requests,
                                  mean_interarrival_s=interarrival,
                                  replica=replica)
        out.append(run_experiment(factory(cluster), reqs, apps).summary)
    return out


def mean(summaries, attr):
    return statistics.mean(getattr(s, attr) for s in summaries)


def test_ablation_function_sharing(benchmark, cluster, apps, emit):
    """Sharing admits more tenants under pressure at reduced per-tenant
    throughput -- exactly the trade Section 3.4 describes."""
    exclusive = replay(cluster, apps, SystemController, 3, 2.0)
    sharing = benchmark.pedantic(
        replay, args=(cluster, apps, FunctionSharingController, 3, 2.0),
        rounds=1, iterations=1)

    emit("ablation_sharing", format_table(
        ["controller", "mean response (s)", "mean wait (s)",
         "mean service (s)", "concurrency"],
        [["exclusive (paper's choice)",
          f"{mean(exclusive, 'mean_response_s'):.1f}",
          f"{mean(exclusive, 'mean_wait_s'):.1f}",
          f"{mean(exclusive, 'mean_service_s'):.1f}",
          f"{mean(exclusive, 'mean_concurrency'):.1f}"],
         ["function sharing (max 2)",
          f"{mean(sharing, 'mean_response_s'):.1f}",
          f"{mean(sharing, 'mean_wait_s'):.1f}",
          f"{mean(sharing, 'mean_service_s'):.1f}",
          f"{mean(sharing, 'mean_concurrency'):.1f}"]],
        title="ablation -- same-function block sharing "
              "(all-Large set under heavy load)"))

    # sharing admits more tenants at once...
    assert mean(sharing, "mean_concurrency") \
        > mean(exclusive, "mean_concurrency")
    # ...but multiplexing halves each sharer's throughput, so per-job
    # service stretches and mean response does NOT improve -- which is
    # precisely why Section 3.4 leaves the mode disabled
    assert mean(sharing, "mean_service_s") \
        > mean(exclusive, "mean_service_s")
    assert mean(sharing, "mean_response_s") \
        > mean(exclusive, "mean_response_s") * 0.95


def test_ablation_defragmentation(benchmark, cluster, apps, emit):
    """Consolidation halves board-spanning without hurting response."""
    base = replay(cluster, apps, SystemController, 8, 4.0)
    defrag = benchmark.pedantic(
        replay, args=(cluster, apps, DefragmentingController, 8, 4.0),
        rounds=1, iterations=1)

    emit("ablation_defrag", format_table(
        ["controller", "mean response (s)", "multi-FPGA deployments"],
        [["base (span when fragmented)",
          f"{mean(base, 'mean_response_s'):.1f}",
          f"{mean(base, 'multi_fpga_fraction'):.0%}"],
         ["defragmenting (migrate first)",
          f"{mean(defrag, 'mean_response_s'):.1f}",
          f"{mean(defrag, 'multi_fpga_fraction'):.0%}"]],
        title="ablation -- defragmentation via runtime relocation "
              "(L-heavy set)"))

    assert mean(defrag, "multi_fpga_fraction") \
        < mean(base, "multi_fpga_fraction")
    assert mean(defrag, "mean_response_s") \
        < mean(base, "mean_response_s") * 1.10


def test_ablation_hardened_regions(benchmark, emit):
    """Section 3.5.2: hard-IP system regions free more fabric."""
    def plan(hardened):
        cons = PartitionConstraints(hardened_system_regions=hardened)
        return PartitionPlanner(make_xcvu37p(), cons).plan()

    soft = plan(False)
    hard = benchmark(plan, True)
    emit("ablation_hardened", format_table(
        ["system regions", "reserved", "user fraction",
         "block BRAM (Mb)"],
        [["in fabric (deployed system)",
          f"{soft.reserved_fraction():.1%}",
          f"{soft.user_fraction():.1%}",
          f"{soft.block_capacity.bram_mb:.2f}"],
         ["hard IP (future work)",
          f"{hard.reserved_fraction():.1%}",
          f"{hard.user_fraction():.1%}",
          f"{hard.block_capacity.bram_mb:.2f}"]],
        title="ablation -- hardened system regions (Section 3.5.2)"))
    assert hard.reserved_fraction() < soft.reserved_fraction()
    assert hard.user_fraction() >= soft.user_fraction()


def test_ablation_dram_contention(benchmark, cluster, apps, emit):
    """The memory-aware service model mildly penalizes packed boards."""
    plain = replay(cluster, apps, SystemController, 9, 4.0,
                   replicas=2)
    contended = benchmark.pedantic(
        replay,
        args=(cluster, apps,
              lambda c: SystemController(c, model_dram_contention=True),
              9, 4.0),
        kwargs={"replicas": 2}, rounds=1, iterations=1)

    emit("ablation_dram", format_table(
        ["service model", "mean service (s)", "mean response (s)"],
        [["bandwidth-unaware",
          f"{mean(plain, 'mean_service_s'):.1f}",
          f"{mean(plain, 'mean_response_s'):.1f}"],
         ["DRAM-contention-aware",
          f"{mean(contended, 'mean_service_s'):.1f}",
          f"{mean(contended, 'mean_response_s'):.1f}"]],
        title="ablation -- DRAM bandwidth contention model (set #9)"))
    # contention can only lengthen service, and only mildly (the blocks'
    # aggregate demand roughly matches the DIMM bandwidth by design)
    assert mean(contended, "mean_service_s") \
        >= mean(plain, "mean_service_s")
    assert mean(contended, "mean_service_s") \
        < mean(plain, "mean_service_s") * 1.5
