"""Section 4 / 5.4 -- the partition algorithm's runtime complexity.

The paper argues the custom tools stay cheap because the partition step
"has a small search space" and minimizes its objectives "by simply
solving a linear equation system (low runtime complexity)".  This bench
measures the actual wall time of our implementation against netlist size
(varying the macro granularity so the same design yields 4x-scaled node
counts): growth should stay near-linear -- far from the vendor P&R's
behavior -- keeping custom-tool time negligible at any realistic size.
"""

import time

from repro.analysis.report import format_table
from repro.compiler.partitioner import NetlistPartitioner, blocks_for
from repro.hls.frontend import HLSFrontend
from repro.hls.kernels import benchmark as bench_spec


def measure(cluster, macro_lut):
    spec = bench_spec("lenet5", "L")
    netlist = HLSFrontend(macro_lut=macro_lut).synthesize(spec)
    n = blocks_for(spec.resources, cluster.partition.block_capacity)
    start = time.perf_counter()
    NetlistPartitioner(cluster.partition.block_capacity).partition(
        netlist, num_blocks=n)
    return netlist.num_primitives, time.perf_counter() - start


def test_partition_runtime_scaling(benchmark, cluster, emit):
    granularities = [2048, 1024, 512, 256]
    points = [measure(cluster, g) for g in granularities]
    benchmark(measure, cluster, 1024)

    rows = [[f"{g}", nodes, f"{seconds:.2f}s",
             f"{seconds / nodes * 1e3:.2f} ms/node"]
            for g, (nodes, seconds) in zip(granularities, points)]
    emit("partition_scaling", format_table(
        ["macro granularity (LUTs)", "netlist nodes", "partition time",
         "per node"], rows,
        title="Section 4 -- partition runtime vs netlist size "
              "(lenet5-L)"))

    # near-linear: 4x the nodes costs well under 16x the time
    nodes_small, t_small = points[0]
    nodes_big, t_big = points[-1]
    growth = (t_big / t_small) / (nodes_big / nodes_small)
    assert growth < 4.0
    # absolute time stays negligible next to hours of vendor P&R
    assert t_big < 30.0
