"""Ablation -- physical-block granularity.

ViTAL's DSE picks 15 blocks per FPGA (one clock-region row per block).
This ablation builds the coarser legal alternative -- two clock-region
rows per block, i.e. 4 usable blocks per FPGA -- recompiles the workload
against it, and replays the same workload set: coarse blocks waste
capacity to internal fragmentation and quantization, which shows up as
longer response times.
"""

import statistics

from repro.analysis.report import format_table
from repro.cluster.cluster import make_cluster
from repro.compiler.flow import CompilationFlow
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionConstraints, PartitionPlanner
from repro.hls.kernels import all_benchmarks
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator


def coarse_cluster():
    """A cluster whose partitions use 2-clock-region-row blocks."""
    device = make_xcvu37p()
    constraints = PartitionConstraints(block_height_choices=(2,),
                                       min_blocks_per_device=4)
    partition = PartitionPlanner(device, constraints).plan()
    return make_cluster(num_boards=4, partition=partition)


def replay(cluster, apps):
    generator = WorkloadGenerator(seed=55)
    summaries = []
    for replica in range(2):
        requests = generator.generate(9, num_requests=80,
                                      replica=replica)
        summaries.append(run_experiment(
            SystemController(cluster), requests, apps).summary)
    return summaries


def test_ablation_block_granularity(benchmark, cluster, apps, emit):
    coarse = coarse_cluster()
    coarse_flow = CompilationFlow(fabric=coarse.partition)
    coarse_apps = {spec.name: coarse_flow.compile(spec)
                   for spec in all_benchmarks()}

    fine_summaries = replay(cluster, apps)
    coarse_summaries = benchmark.pedantic(
        replay, args=(coarse, coarse_apps), rounds=1, iterations=1)

    mean = lambda ss, attr: statistics.mean(getattr(s, attr)
                                            for s in ss)
    rows = [
        [f"{cluster.blocks_per_board} blocks/FPGA (chosen)",
         f"{cluster.partition.block_capacity.bram_mb:.2f}Mb",
         f"{mean(fine_summaries, 'mean_response_s'):.1f}",
         f"{mean(fine_summaries, 'mean_wait_s'):.1f}"],
        [f"{coarse.blocks_per_board} blocks/FPGA (coarse)",
         f"{coarse.partition.block_capacity.bram_mb:.2f}Mb",
         f"{mean(coarse_summaries, 'mean_response_s'):.1f}",
         f"{mean(coarse_summaries, 'mean_wait_s'):.1f}"],
    ]
    emit("ablation_granularity", format_table(
        ["partition", "block BRAM", "mean response (s)",
         "mean wait (s)"], rows,
        title="ablation -- physical-block granularity "
              "(workload set #9)"))

    assert coarse.blocks_per_board < cluster.blocks_per_board
    # finer blocks => less internal fragmentation => better QoS
    assert mean(fine_summaries, "mean_response_s") \
        < mean(coarse_summaries, "mean_response_s")
