"""Table 2 -- the DNN accelerator designs and their block counts.

Regenerates the table: the resource footprint of each of the 21 designs
(7 families x small/medium/large) and the number of virtual blocks our
partition assigns, side by side with the paper's published #Block.
"""

from repro.analysis.report import format_table
from repro.compiler.partitioner import blocks_for
from repro.hls.kernels import all_benchmarks


def build_rows(block_capacity):
    rows = []
    for spec in all_benchmarks():
        r = spec.resources
        ours = blocks_for(r, block_capacity)
        rows.append([spec.name, f"{r.lut / 1e3:.1f}k",
                     f"{r.dff / 1e3:.1f}k", f"{r.dsp:.0f}",
                     f"{r.bram_mb:.1f}Mb", ours, spec.paper_blocks])
    return rows


def test_table2_accelerator_designs(benchmark, cluster, emit):
    capacity = cluster.partition.block_capacity
    rows = benchmark(build_rows, capacity)
    emit("table2", format_table(
        ["design", "LUT", "DFF", "DSP", "BRAM", "#Block (ours)",
         "#Block (paper)"],
        rows, title="Table 2 -- accelerator designs"))

    diffs = [abs(r[5] - r[6]) for r in rows]
    assert max(diffs) <= 1            # every design within one block
    assert sum(1 for d in diffs if d == 0) >= 17  # most exact (19/21)
    # the #Block column spans the paper's 1..10 range
    ours = [r[5] for r in rows]
    assert min(ours) == 1 and max(ours) >= 10
