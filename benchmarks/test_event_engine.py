"""Flat event-engine benchmark: 4096 boards, one million requests.

Not a paper figure: the paper evaluates on a handful of boards.  This
bench is PR 10's acceptance gate for the batched event engine -- the
struct-of-arrays :class:`~repro.sim.events.ArrayEventQueue`, the
arrival-cohort admission path, and the deploy-path rework that rides
along (round-1 placement built straight off the free-count vector,
memoized relocation validation, bulk resource-DB mutation, and a
GC pause across the event loop):

- **2x throughput** -- at PR 7's exact anchor geometry (1024 boards,
  100k requests, mean interarrival 20 ms, set 7, seed 42) the engine
  must clear twice the requests/s recorded by the ``pr7-array-kernel``
  anchor; best-of-three walls, since a shared box easily swings a
  single run by 30%;
- **mega scale** -- a 4096-board cluster absorbs a 1M-request workload
  inside a fixed wall budget, the headline capacity claim;
- **reduced regression** -- a 256-board/20k-request configuration is
  timed against the committed ``BENCH_perf.json`` baseline with a wide
  tolerance band (the ``perf-regression`` CI job runs only this and
  the admit-share check, keeping the gate minutes-cheap);
- **admit share** -- under saturation the cohort path must spend a
  smaller fraction of its wall in ``sim.admit`` than the heapq oracle
  (shares, unlike raw walls, survive machine speed differences), with
  byte-identical results.

Results land in ``benchmarks/results/event_engine.txt`` and the
``BENCH_perf.json`` trajectory file at the repo root.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.cluster.cluster import make_cluster
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionPlanner
from repro.obs.profile import PhaseProfiler
from repro.runtime.controller import SystemController
from repro.sim.experiment import compile_benchmarks, run_experiment
from repro.sim.workload import WorkloadGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
ANCHOR = "pr10-event-engine"
#: the anchor this PR must double (PR 7's 1024-board geometry)
PR7_ANCHOR = "pr7-array-kernel"

#: wall-clock ceiling of the 1024-board/100k-request experiment loop
#: (PR 7's budget was 60 s; the event engine must be comfortably under)
FULL_SCALE_BUDGET_S = 45.0
#: wall-clock ceiling of the 4096-board/1M-request run
MEGA_BUDGET_S = 420.0
#: regression band for the reduced CI configuration (see
#: test_kernel_scale.py: shared runners are easily 2-3x slower than
#: the machine that seeded the baseline)
REDUCED_TOLERANCE = 4.0


def _big_cluster(num_boards: int):
    """Plan the fabric partition once and clone it across boards."""
    partition = PartitionPlanner(make_xcvu37p()).plan()
    return make_cluster(num_boards=num_boards, partition=partition)


def _drive(num_boards: int, num_requests: int,
           mean_interarrival_s: float, engine: str = "array",
           profile=None, apps=None, cluster=None, partition=None):
    """One experiment at scale; returns (result, controller, wall_s)
    where wall_s times the event loop only."""
    if cluster is None:
        partition = partition if partition is not None \
            else PartitionPlanner(make_xcvu37p()).plan()
        cluster = make_cluster(num_boards=num_boards,
                               partition=partition)
    apps = apps if apps is not None else compile_benchmarks(cluster)
    controller = SystemController(cluster)
    requests = WorkloadGenerator(seed=42).generate(
        7, num_requests=num_requests,
        mean_interarrival_s=mean_interarrival_s)
    t0 = time.perf_counter()
    result = run_experiment(controller, requests, apps,
                            engine=engine, profile=profile)
    wall = time.perf_counter() - t0
    return result, controller, wall


def _record_trajectory(**fields) -> None:
    """Merge ``fields`` into this PR's entry of the trajectory file."""
    from repro.analysis.bench import merge_metrics
    merge_metrics(BENCH_FILE, ANCHOR, fields)


def _anchor_metric(anchor: str, name: str):
    """Read one committed metric of an anchor (None if unset)."""
    from repro.analysis.bench import BenchSchemaError, load_bench
    if not BENCH_FILE.exists():
        return None
    try:
        doc = load_bench(BENCH_FILE)
    except BenchSchemaError:
        return None
    for entry in doc["entries"]:
        if entry["anchor"] == anchor:
            return entry["metrics"].get(name)
    return None


def test_full_scale_2x_throughput(emit):
    """PR 7's exact geometry, twice the recorded requests/s.

    Best-of-three: single runs on a shared box swing by 30%, and the
    claim is about the engine, not the neighbors."""
    partition = PartitionPlanner(make_xcvu37p()).plan()
    # artifacts depend on the partition geometry only, so compile once
    # against a small cluster; each repetition then gets its own fresh
    # 1024-board substrate (a reused one would carry DRAM/ring state)
    apps = compile_benchmarks(make_cluster(num_boards=4,
                                           partition=partition))
    best_wall, summary = None, None
    for _ in range(3):
        result, controller, wall = _drive(
            1024, 100_000, 0.02,
            partition=partition, apps=apps)
        assert controller.deployments == {}  # everything drained
        if best_wall is None or wall < best_wall:
            best_wall, summary = wall, result.summary
    assert summary.num_requests == 100_000
    assert summary.goodput_fraction == 1.0  # never saturates at 1024
    rate = summary.num_requests / best_wall
    pr7_rate = _anchor_metric(PR7_ANCHOR, "requests_per_s")
    speedup = rate / pr7_rate if pr7_rate else None
    emit("event_engine", "\n".join([
        "Flat event engine at scale (PR 10)",
        "  boards                  1024",
        "  requests                100000",
        f"  experiment wall         {best_wall:.2f} s"
        f"  (best of 3, budget {FULL_SCALE_BUDGET_S:.0f} s)",
        f"  throughput              {rate:.0f} requests/s",
        f"  pr7 anchor              {pr7_rate or float('nan'):.0f}"
        " requests/s",
        f"  speedup vs pr7          "
        f"{speedup:.2f}x" if speedup else "  speedup vs pr7          n/a",
    ]))
    _record_trajectory(
        boards=1024, requests=100_000,
        full_wall_s=round(best_wall, 2),
        requests_per_s=round(rate, 1),
        **({"speedup_vs_pr7": round(speedup, 2)} if speedup else {}))
    assert best_wall < FULL_SCALE_BUDGET_S
    if pr7_rate is not None:
        assert rate >= 2.0 * pr7_rate, (
            f"{rate:.0f} requests/s is below 2x the pr7 anchor "
            f"({pr7_rate:.0f}); the event engine missed its bar")


def test_mega_scale_4096_boards_1m_requests(emit):
    """The capacity headline: 4096 boards x 1M requests in budget."""
    result, controller, wall = _drive(
        4096, 1_000_000, 0.005)
    summary = result.summary
    assert summary.num_requests == 1_000_000
    assert controller.deployments == {}
    rate = summary.num_requests / wall
    emit("event_engine_mega", "\n".join([
        "Flat event engine, mega scale (PR 10)",
        "  boards                  4096",
        "  requests                1000000",
        f"  experiment wall         {wall:.1f} s"
        f"  (budget {MEGA_BUDGET_S:.0f} s)",
        f"  throughput              {rate:.0f} requests/s",
        f"  goodput                 {summary.goodput_fraction:.3f}",
    ]))
    _record_trajectory(
        mega_boards=4096, mega_requests=1_000_000,
        mega_wall_s=round(wall, 1),
        mega_requests_per_s=round(rate, 1))
    assert wall < MEGA_BUDGET_S


def test_reduced_scale_regression():
    """The CI gate: 256 boards x 20k requests vs the committed
    baseline.  Seeds the baseline field if absent (first run on a new
    trajectory file); never overwrites a committed one."""
    _, _, wall = _drive(256, 20_000, 0.05)
    baseline = _anchor_metric(ANCHOR, "reduced_wall_baseline_s")
    if baseline is None:
        _record_trajectory(reduced_wall_baseline_s=round(wall, 2))
        pytest.skip(f"seeded reduced-scale baseline: {wall:.2f}s")
    assert wall < baseline * REDUCED_TOLERANCE, (
        f"reduced-scale run took {wall:.2f}s against a "
        f"{baseline:.2f}s baseline (tolerance x{REDUCED_TOLERANCE}); "
        "the event engine regressed")


def test_admit_share_cohort_fastpath(emit):
    """Saturated admission: the cohort path must shrink ``sim.admit``.

    A 16-board cluster under a 1 ms interarrival flood keeps the queue
    head blocked, so the heapq oracle re-runs a futile drain per
    arrival while the array engine enqueues whole arrival cohorts.
    Shares of total wall (not raw seconds) make the comparison robust
    across machines; the two engines must also agree byte-for-byte on
    the simulation itself and pop the same number of events."""
    apps = compile_benchmarks(_big_cluster(16))

    profiles: dict[str, PhaseProfiler] = {}
    summaries = {}
    for engine in ("array", "heapq"):
        profile = PhaseProfiler()
        result, _, _ = _drive(
            16, 4_000, 0.001, engine=engine, profile=profile,
            apps=apps)
        profiles[engine] = profile
        summaries[engine] = result.summary

    assert summaries["array"] == summaries["heapq"]
    counters = {name: prof.counters()
                for name, prof in profiles.items()}
    assert counters["array"]["events_popped"] \
        == counters["heapq"]["events_popped"]
    assert counters["array"].get("arrival_cohorts", 0) > 0, (
        "the cohort fast path never engaged under saturation")
    shares = {name: prof.phase_share("sim.admit")
              for name, prof in profiles.items()}
    emit("event_engine_admit", "\n".join([
        "Admission share under saturation (PR 10)",
        "  boards                  16",
        "  requests                4000 (1 ms interarrival)",
        f"  admit share (array)     {shares['array']:.3f}",
        f"  admit share (heapq)     {shares['heapq']:.3f}",
        f"  arrival cohorts         "
        f"{counters['array']['arrival_cohorts']}",
    ]))
    _record_trajectory(
        admit_share_array=round(shares["array"], 4),
        admit_share_heapq=round(shares["heapq"], 4))
    assert shares["array"] <= shares["heapq"], (
        f"cohort admission spent a larger share of wall "
        f"({shares['array']:.3f}) than the per-arrival oracle "
        f"({shares['heapq']:.3f})")
