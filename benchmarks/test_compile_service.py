"""Compile-once economics: cache and parallel-service speedups.

The paper's offline story (compile each app once against the
abstraction, reuse the artifact forever) turns the harness's dominant
fixed cost -- recompiling all 21 Table 2 designs on every invocation --
into a lookup.  This bench pins the two headline numbers:

1. **Warm cache >= 10x cold** on the full 21-app set (it is orders of
   magnitude in practice; the bound is deliberately loose for slow CI
   hosts).
2. **Cold ``jobs=4`` >= 2x ``jobs=1``** -- asserted where at least four
   CPUs are usable (CI runners); with fewer cores the parallel path is
   still exercised and measured, and the bound scales down (there is no
   speedup to be had on one core, only process-pool overhead).

Both paths must stay *bit-identical* to the sequential cold compile --
speed never buys a different artifact.
"""

from __future__ import annotations

import os
import time

from repro.compiler.cache import CompileCache
from repro.compiler.service import CompileService
from repro.hls.kernels import all_benchmarks

MIN_WARM_SPEEDUP = 10.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_cache_cold_vs_warm(emit, cluster, compiled_apps):
    """Warm-cache compile_benchmarks >= 10x faster than cold, with
    byte-identical artifacts."""
    specs = all_benchmarks()
    cache = CompileCache()
    service = CompileService(fabric=cluster.partition, cache=cache)

    t0 = time.perf_counter()
    cold = service.compile_many(specs)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = service.compile_many(specs)
    warm_s = time.perf_counter() - t0

    for spec in specs:
        # cached artifacts match the uncached reference compile of the
        # shared fixture byte for byte
        assert warm[spec.name].to_json() \
            == compiled_apps[spec.name].to_json()
    stats = cache.stats()
    assert stats["misses"] == len(specs)
    assert stats["hits"] == len(specs)

    speedup = cold_s / warm_s
    emit("compile_cache", "\n".join([
        "Content-addressed compile cache on the 21-app Table 2 set",
        f"{'apps':>6} {'cold_s':>8} {'warm_s':>9} {'speedup':>9} "
        f"{'hits':>5} {'misses':>7}",
        f"{len(specs):>6} {cold_s:>8.2f} {warm_s:>9.4f} "
        f"{speedup:>8.0f}x {stats['hits']:>5} {stats['misses']:>7}"]))
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache only {speedup:.1f}x over cold "
        f"({warm_s:.3f}s vs {cold_s:.2f}s)")


def test_parallel_cold_speedup(emit, cluster, compiled_apps):
    """Cold ``jobs=4`` vs ``jobs=1``: bit-identical always; >= 2x
    faster where four CPUs are usable (the CI configuration)."""
    specs = all_benchmarks()
    cpus = _usable_cpus()
    fabric = cluster.partition

    t0 = time.perf_counter()
    sequential = CompileService(fabric=fabric).compile_many(specs,
                                                            jobs=1)
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = CompileService(fabric=fabric).compile_many(specs,
                                                          jobs=4)
    par_s = time.perf_counter() - t0

    for spec in specs:
        assert parallel[spec.name].to_json() \
            == sequential[spec.name].to_json()
        assert parallel[spec.name].to_json() \
            == compiled_apps[spec.name].to_json()

    speedup = seq_s / par_s
    # the bound scales with the silicon actually available: 4 workers
    # on >= 4 cores must halve the wall clock; on 2-3 cores some
    # speedup must survive pool overhead; on 1 core there is nothing
    # to win and the run only proves correctness
    required = 2.0 if cpus >= 4 else (1.2 if cpus >= 2 else None)
    emit("compile_parallel", "\n".join([
        "Parallel offline compilation (cold, 21 apps, 4 workers)",
        f"{'apps':>6} {'cpus':>5} {'jobs1_s':>9} {'jobs4_s':>9} "
        f"{'speedup':>9} {'bound':>7}",
        f"{len(specs):>6} {cpus:>5} {seq_s:>9.2f} {par_s:>9.2f} "
        f"{speedup:>8.2f}x "
        f"{('>=' + format(required, '.1f')) if required else 'n/a':>7}"]))
    if required is not None:
        assert speedup >= required, (
            f"jobs=4 only {speedup:.2f}x over jobs=1 on {cpus} CPUs "
            f"({par_s:.2f}s vs {seq_s:.2f}s)")
