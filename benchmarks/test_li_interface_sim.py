"""Section 3.2/5.5 -- the latency-insensitive interface, executed.

Cycle-level validation of the claims the fleet-level simulator only
models: the *same* compiled interface drives a single-FPGA mapping and a
multi-FPGA mapping with no functional change and near-identical
steady-state throughput; progress never deadlocks; the slowdown of the
spanning mapping is pipeline fill, not sustained-rate loss.
"""

import pytest

from repro.analysis.report import format_table
from repro.interconnect.appsim import simulate_deployment
from repro.interconnect.links import LinkClass
from repro.runtime.types import Placement


def single_board(app):
    return Placement(mapping={vb: (0, vb)
                              for vb in range(app.num_blocks)})


def two_board(app):
    half = app.num_blocks // 2
    return Placement(mapping={
        vb: (0, vb) if vb < half else (1, vb - half)
        for vb in range(app.num_blocks)})


def test_li_interface_mapping_insensitivity(benchmark, cluster, apps,
                                            emit):
    app = apps["svhn-L"]
    cycles = 20000
    single = simulate_deployment(app, single_board(app), cluster,
                                 cycles=cycles)
    spanning = benchmark.pedantic(
        simulate_deployment,
        args=(app, two_board(app), cluster),
        kwargs={"cycles": cycles}, rounds=1, iterations=1)

    from collections import Counter
    link_mix = Counter(spanning.channel_links.values())
    ratio = spanning.total_firings / max(1, single.total_firings)
    text = format_table(
        ["mapping", "firings", "deadlocked", "min block util"],
        [["single FPGA", single.total_firings,
          single.deadlocked, f"{single.min_block_utilization:.3f}"],
         ["two FPGAs", spanning.total_firings,
          spanning.deadlocked, f"{spanning.min_block_utilization:.3f}"]],
        title=f"LI interface under both mappings ({app.name}, "
              f"{cycles} cycles)")
    text += (f"\n\nchannel link mix when spanning: "
             f"{dict((str(k), v) for k, v in link_mix.items())}"
             f"\nspanning/single throughput ratio: {ratio:.3f} "
             "(paper: overhead <0.03% at job scale)")
    emit("li_interface", text)

    assert not single.deadlocked and not spanning.deadlocked
    assert LinkClass.INTER_FPGA in spanning.channel_links.values()
    # steady-state throughput survives the ring: the only loss is the
    # (250-cycle) pipeline fill amortized over the run
    assert ratio > 0.90


@pytest.mark.parametrize("app_name", ["cifar10-M", "svhn-L"])
def test_li_interface_never_deadlocks(benchmark, cluster, apps,
                                      app_name):
    app = apps[app_name]
    result = benchmark.pedantic(
        simulate_deployment, args=(app, single_board(app), cluster),
        kwargs={"cycles": 4000}, rounds=1, iterations=1)
    assert not result.deadlocked
