"""Availability under board failures (System-Layer robustness).

Not a paper figure: the paper's evaluation assumes a healthy cluster.
This bench subjects the Fig. 9 workload sets to one deterministic
board-failure schedule and compares recovery strategies:

- ViTAL + migrate-on-failure: the homogeneous abstraction re-places an
  evicted application's images on surviving blocks without recompiling;
  progress survives every migration that finds capacity, and recovery
  is fast (a partial reconfiguration, not a full-device restart);
- ViTAL + fail-requeue: evicted requests restart from the queue, losing
  whatever progress they had made;
- per-device + fail-requeue: the baseline cannot relocate at all and
  pays a whole-device reconfiguration per recovery, so its mean time to
  recovery is the worst.  (Its *goodput* can look deceptively good: the
  same queueing that wrecks its response time keeps most work parked in
  the queue where failures cannot touch it.)

The availability summary lands in ``benchmarks/results/`` next to the
paper figures.
"""

import statistics

from repro.analysis.report import format_availability
from repro.baselines.per_device import PerDeviceManager
from repro.faults import FaultSchedule
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import COMPOSITIONS, WorkloadGenerator

#: one renewal-process failure schedule, reused for every (manager,
#: policy, set) combination so the comparison is apples-to-apples
SCHEDULE_KWARGS = dict(seed=2020, horizon_s=600.0, num_boards=4,
                       board_mtbf_s=250.0, board_mttr_s=60.0)

CONFIGS = [
    ("vital + migrate-on-failure", SystemController,
     "migrate-on-failure"),
    ("vital + fail-requeue", SystemController, "fail-requeue"),
    ("per-device + fail-requeue", PerDeviceManager, "fail-requeue"),
]


def test_availability_under_board_failures(benchmark, cluster, apps,
                                           emit):
    generator = WorkloadGenerator(seed=2020)
    sets = {index: generator.generate(index, num_requests=60)
            for index in sorted(COMPOSITIONS)}

    def one_run():
        return run_experiment(
            SystemController(cluster), sets[7], apps,
            faults=FaultSchedule.exponential(**SCHEDULE_KWARGS),
            recovery="migrate-on-failure")

    benchmark(one_run)

    summaries: dict[str, list] = {label: [] for label, _, _ in CONFIGS}
    for label, manager_cls, policy in CONFIGS:
        for index, requests in sets.items():
            result = run_experiment(
                manager_cls(cluster), requests, apps,
                faults=FaultSchedule.exponential(**SCHEDULE_KWARGS),
                recovery=policy)
            summaries[label].append(result.summary)

    def agg(label: str) -> dict:
        rows = summaries[label]
        return {
            "interruptions": statistics.mean(
                s.interruptions for s in rows),
            "recoveries": statistics.mean(s.recoveries for s in rows),
            "permanently_failed": statistics.mean(
                s.permanently_failed for s in rows),
            "mean_time_to_recovery_s": statistics.mean(
                s.mean_time_to_recovery_s for s in rows),
            "goodput_fraction": statistics.mean(
                s.goodput_fraction for s in rows),
        }

    aggregated = {label: agg(label) for label, _, _ in CONFIGS}
    text = format_availability(
        [(label, aggregated[label]) for label, _, _ in CONFIGS],
        title="Availability over the ten Table 3 workload sets, one "
              "board-failure schedule\n(MTBF 250 s, MTTR 60 s, means "
              "across sets; goodput = useful / (useful + lost) work)")
    emit("fault_tolerance", text)

    migrate = aggregated["vital + migrate-on-failure"]
    requeue = aggregated["vital + fail-requeue"]
    per_device = aggregated["per-device + fail-requeue"]

    # the schedule actually bit: every configuration saw evictions
    assert all(a["interruptions"] > 0 for a in aggregated.values())
    # migration preserves progress: strictly more goodput than
    # re-queueing, which demonstrably threw work away
    assert migrate["goodput_fraction"] > requeue["goodput_fraction"]
    assert requeue["goodput_fraction"] < 1.0
    assert migrate["recoveries"] > 0
    # ViTAL with its recovery story loses less work than the baseline
    assert migrate["goodput_fraction"] > per_device["goodput_fraction"]
    # ...and heals faster: relocation is a partial reconfiguration,
    # per-device recovery waits for a whole free board and reprograms
    # the full device
    assert (migrate["mean_time_to_recovery_s"]
            < per_device["mean_time_to_recovery_s"])
    # per-device cannot migrate at all
    assert per_device["recoveries"] == 0
