"""Array-kernel scale benchmark: 1024 boards, 100k requests.

Not a paper figure: the paper evaluates on a handful of boards.  This
bench is PR 7's acceptance gate for the array runtime kernel -- the
flat-numpy rewrite of the policy subset search, resource-DB fit tests,
and ring span/contention math:

- **full scale** -- a 1024-board cluster absorbs a 100k-request
  workload in under 60 s of wall clock (the experiment loop alone,
  setup excluded), which the per-request dict walks of the scalar
  kernel could not approach;
- **differential** -- at 64 boards the array kernel and the scalar
  oracle produce byte-identical traces and summaries (the counters are
  equal by construction, so "modulo perf counters" is vacuous here);
- **reduced regression** -- a 256-board/20k-request configuration is
  timed against the committed ``BENCH_perf.json`` baseline with a wide
  tolerance band; the ``perf-regression`` CI job runs only this and
  the differential, keeping the gate minutes-cheap.

Results land in ``benchmarks/results/kernel_scale.txt`` and the
``BENCH_perf.json`` trajectory file at the repo root.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.cluster.cluster import make_cluster
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionPlanner
from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.runtime.policy import CommunicationAwarePolicy
from repro.sim.experiment import compile_benchmarks, run_experiment
from repro.sim.workload import WorkloadGenerator

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
ANCHOR = "pr7-array-kernel"

#: wall-clock ceiling of the 1024-board/100k-request experiment loop
FULL_SCALE_BUDGET_S = 60.0
#: regression band for the reduced CI configuration: shared runners
#: are easily 2-3x slower than the machine that seeded the baseline,
#: so the gate only catches order-of-magnitude blowups (a scalar-path
#: regression at 256 boards is >10x)
REDUCED_TOLERANCE = 4.0


def _big_cluster(num_boards: int):
    """Plan the fabric partition once and clone it across boards --
    per-board planning is the dominant setup cost at this scale."""
    partition = PartitionPlanner(make_xcvu37p()).plan()
    return make_cluster(num_boards=num_boards, partition=partition)


def _drive(num_boards: int, num_requests: int,
           mean_interarrival_s: float, policy=None,
           tracer=None, apps=None, cluster=None):
    """One experiment at scale; returns (result, controller, wall_s)
    where wall_s times the event loop only."""
    cluster = cluster if cluster is not None \
        else _big_cluster(num_boards)
    apps = apps if apps is not None else compile_benchmarks(cluster)
    controller = SystemController(cluster, policy=policy)
    requests = WorkloadGenerator(seed=42).generate(
        7, num_requests=num_requests,
        mean_interarrival_s=mean_interarrival_s)
    t0 = time.perf_counter()
    result = run_experiment(controller, requests, apps, tracer=tracer)
    wall = time.perf_counter() - t0
    return result, controller, wall


def _record_trajectory(**fields) -> None:
    """Merge ``fields`` into this PR's entry of the trajectory file."""
    from repro.analysis.bench import merge_metrics
    merge_metrics(BENCH_FILE, ANCHOR, fields)


def _baseline_metric(name: str):
    """Read one committed metric of this PR's anchor (None if unset)."""
    from repro.analysis.bench import BenchSchemaError, load_bench
    if not BENCH_FILE.exists():
        return None
    try:
        doc = load_bench(BENCH_FILE)
    except BenchSchemaError:
        return None
    for entry in doc["entries"]:
        if entry["anchor"] == ANCHOR:
            return entry["metrics"].get(name)
    return None


def test_full_scale_1024_boards(emit):
    """The headline number: 1024 boards x 100k requests under 60 s."""
    result, controller, wall = _drive(
        num_boards=1024, num_requests=100_000,
        mean_interarrival_s=0.02)
    summary = result.summary
    assert summary.num_requests == 100_000
    assert summary.goodput_fraction == 1.0  # never saturates at 1024
    assert controller.deployments == {}     # everything drained
    rate = summary.num_requests / wall
    emit("kernel_scale", "\n".join([
        "Array runtime kernel at scale (PR 7)",
        f"  boards                  1024",
        f"  requests                100000",
        f"  experiment wall         {wall:.2f} s"
        f"  (budget {FULL_SCALE_BUDGET_S:.0f} s)",
        f"  throughput              {rate:.0f} requests/s",
        f"  goodput                 {summary.goodput_fraction:.3f}",
    ]))
    _record_trajectory(
        boards=1024, requests=100_000,
        full_wall_s=round(wall, 2),
        requests_per_s=round(rate, 1))
    assert wall < FULL_SCALE_BUDGET_S


def test_reduced_scale_regression():
    """The CI gate: 256 boards x 20k requests vs the committed
    baseline.  Seeds the baseline field if absent (first run on a new
    trajectory file); never overwrites a committed one."""
    _, _, wall = _drive(num_boards=256, num_requests=20_000,
                        mean_interarrival_s=0.05)
    baseline = _baseline_metric("reduced_wall_baseline_s")
    if baseline is None:
        _record_trajectory(reduced_wall_baseline_s=round(wall, 2))
        pytest.skip(f"seeded reduced-scale baseline: {wall:.2f}s")
    assert wall < baseline * REDUCED_TOLERANCE, (
        f"reduced-scale run took {wall:.2f}s against a "
        f"{baseline:.2f}s baseline (tolerance x{REDUCED_TOLERANCE}); "
        "the array kernel regressed")


def test_64_board_differential():
    """Array kernel vs scalar oracle, end to end at 64 boards.

    Exhaustive enumeration is infeasible at this size; the scalar
    branch-and-bound is the oracle.  Both kernels must produce
    byte-identical traces (search counters included -- the array scan
    takes the same prune decisions by construction) and equal
    summaries; the untraced run (which engages the controller's
    ``allocate_fast`` path) must match them too."""
    cluster = _big_cluster(64)
    apps = compile_benchmarks(cluster)

    def traced(kernel: str):
        tracer = Tracer()
        result, _, _ = _drive(
            64, 2_000, 0.2,
            policy=CommunicationAwarePolicy(kernel=kernel),
            tracer=tracer, apps=apps, cluster=cluster)
        return tracer.to_jsonl(), result.summary

    array_trace, array_summary = traced("array")
    scalar_trace, scalar_summary = traced("scalar")
    assert array_trace == scalar_trace
    assert array_summary == scalar_summary

    fast_result, _, _ = _drive(64, 2_000, 0.2, apps=apps,
                               cluster=cluster)
    assert fast_result.summary == array_summary
