"""Sensitivity studies around the Fig. 9 conclusion.

The paper evaluates at one (unreported) load point; these benches sweep
what the conclusion could be sensitive to:

- **offered load**: ViTAL's advantage should grow as the baseline
  saturates (its four-apps-at-a-time ceiling binds) and persist at light
  load;
- **arrival shape**: bursty and diurnal arrival streams with the same
  mean rate must not flip the ranking;
- **fairness**: fine-grained sharing should spread delay more evenly
  over tenants (small apps stop queueing behind whole-device waits).
"""

import statistics

from repro.analysis.report import format_table
from repro.baselines.per_device import PerDeviceManager
from repro.runtime.controller import SystemController
from repro.sim.arrivals import BurstyArrivals, DiurnalArrivals, \
    PoissonArrivals
from repro.sim.experiment import run_experiment
from repro.sim.metrics import jain_fairness, per_size_response
from repro.sim.workload import WorkloadGenerator


def one_run(cluster, apps, factory, set_index=7, replicas=2,
            requests=90, interarrival=4.0, arrival_process=None):
    generator = WorkloadGenerator(seed=17)
    results = []
    for replica in range(replicas):
        reqs = generator.generate(
            set_index, num_requests=requests,
            mean_interarrival_s=interarrival, replica=replica,
            arrival_process=arrival_process)
        results.append(run_experiment(factory(cluster), reqs, apps))
    return results


def mean_response(results):
    return statistics.mean(r.summary.mean_response_s for r in results)


def test_sensitivity_offered_load(benchmark, cluster, apps, emit):
    """Normalized response vs load: the gap opens as the baseline
    saturates and never inverts."""
    loads = [12.0, 8.0, 6.0, 4.0, 3.0]
    rows = []
    normalized = []
    for interarrival in loads:
        base = mean_response(one_run(cluster, apps, PerDeviceManager,
                                     interarrival=interarrival))
        vital = mean_response(one_run(cluster, apps, SystemController,
                                      interarrival=interarrival))
        normalized.append(vital / base)
        rows.append([f"{interarrival:.0f}", f"{base:.1f}",
                     f"{vital:.1f}", f"{vital / base:.2f}"])
    benchmark(lambda: one_run(cluster, apps, SystemController,
                              replicas=1))
    emit("sensitivity_load", format_table(
        ["mean interarrival (s)", "per-device (s)", "vital (s)",
         "normalized"], rows,
        title="sensitivity -- offered load (workload set #7)"))
    # ViTAL wins at every load point...
    assert all(n < 1.0 for n in normalized)
    # ...and the advantage grows toward saturation
    assert normalized[-1] < normalized[0]


def test_sensitivity_arrival_shape(benchmark, cluster, apps, emit):
    """Same mean rate, different burstiness: the ranking is robust."""
    shapes = {
        "poisson": PoissonArrivals(4.0),
        "bursty (x6)": BurstyArrivals(4.0, burst_size=6),
        "diurnal": DiurnalArrivals(4.0, period_s=300, amplitude=0.8),
    }
    rows = []
    ratios = []
    for name, process in shapes.items():
        base = mean_response(one_run(cluster, apps, PerDeviceManager,
                                     arrival_process=process))
        vital = mean_response(one_run(cluster, apps, SystemController,
                                      arrival_process=process))
        ratios.append(vital / base)
        rows.append([name, f"{base:.1f}", f"{vital:.1f}",
                     f"{vital / base:.2f}"])
    benchmark(lambda: None)
    emit("sensitivity_arrivals", format_table(
        ["arrival process", "per-device (s)", "vital (s)",
         "normalized"], rows,
        title="sensitivity -- arrival shape (set #7, same mean rate)"))
    assert all(r < 0.6 for r in ratios)


def test_sensitivity_fairness(benchmark, cluster, apps, emit):
    """Per-size QoS and Jain fairness (set #10, small-heavy)."""
    base_runs = one_run(cluster, apps, PerDeviceManager, set_index=10)
    vital_runs = benchmark.pedantic(
        one_run, args=(cluster, apps, SystemController),
        kwargs={"set_index": 10}, rounds=1, iterations=1)

    def merged(results):
        return [r for run in results for r in run.records]

    base_sizes = per_size_response(merged(base_runs))
    vital_sizes = per_size_response(merged(vital_runs))
    base_fair = jain_fairness(merged(base_runs))
    vital_fair = jain_fairness(merged(vital_runs))

    rows = [[size,
             f"{base_sizes.get(size, float('nan')):.1f}",
             f"{vital_sizes.get(size, float('nan')):.1f}"]
            for size in ("S", "M", "L") if size in base_sizes]
    text = format_table(
        ["size class", "per-device response (s)", "vital (s)"], rows,
        title="sensitivity -- per-size QoS (set #10)")
    text += (f"\n\nJain fairness over slowdown: per-device "
             f"{base_fair:.3f} vs vital {vital_fair:.3f}")
    emit("sensitivity_fairness", text)

    # every size class improves, small ones the most in absolute terms
    for size, base_value in base_sizes.items():
        assert vital_sizes[size] < base_value
    assert vital_fair > base_fair
