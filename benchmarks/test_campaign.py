"""Campaign service economics: warm cache and parallel sweep speedups.

Not a paper figure: this bench is PR 9's acceptance gate for the
content-addressed scenario-campaign service, mirroring the compile
service's economics one layer up (whole simulated experiments instead
of artifacts):

1. **warm grid < 10% of cold** -- re-running the full 24-config
   standard grid against a warm cache must cost less than a tenth of
   the cold wall (it is hits-only: no cluster is even built);
2. **cold ``jobs=4`` >= 2x ``jobs=1``** -- asserted where at least
   four CPUs are usable; on smaller hosts the pool path is still
   exercised and must stay byte-identical;
3. **byte identity** -- sequential, parallel and warm sweeps serialize
   to the same canonical JSON (speed never buys different results).

Results land in ``benchmarks/results/campaign_matrix.txt`` and
``benchmarks/results/perf_trajectory.txt``, and the measured numbers
re-anchor the ``pr9-campaign`` entry of ``BENCH_perf.json``.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

import pytest

from repro.analysis.bench import (format_trajectory, load_bench,
                                  merge_metrics)
from repro.analysis.report import format_table
from repro.sim.campaign import (CampaignCache, CampaignRunner,
                                canonical_json, standard_grid)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_perf.json"
ANCHOR = "pr9-campaign"

#: warm re-run of the full grid must cost under this fraction of cold
MAX_WARM_FRACTION = 0.10
#: requests per scenario: small enough for CI, large enough that the
#: sweep dominates the pool/cache overhead being measured
GRID_REQUESTS = 12


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def grid():
    return standard_grid(num_requests=GRID_REQUESTS)


@pytest.fixture(scope="module")
def campaign_apps():
    from repro.cluster.cluster import make_cluster
    from repro.sim.experiment import compile_benchmarks
    return compile_benchmarks(make_cluster(num_boards=1))


def test_warm_grid_under_ten_percent_of_cold(emit, grid,
                                             campaign_apps):
    """Cold 24-config sweep, then hits-only re-run, byte-identical."""
    assert len(grid) >= 24
    runner = CampaignRunner(cache=CampaignCache(), apps=campaign_apps)

    t0 = time.perf_counter()
    cold = runner.run_many(grid)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = runner.run_many(grid)
    warm_s = time.perf_counter() - t0

    assert canonical_json(cold) == canonical_json(warm)
    stats = runner.cache.stats()
    assert stats["misses"] == len(grid)
    assert stats["hits"] == len(grid)
    grid_fp = hashlib.sha256(canonical_json(
        [r["fingerprint"] for r in cold]).encode()).hexdigest()

    fraction = warm_s / cold_s
    rows = [[r["name"], r["manager"],
             f"{r['summary']['goodput_fraction']:.1%}",
             f"{r['summary']['p95_response_s']:.1f}",
             f"{r['summary']['migrations']:g}",
             f"{r['fingerprint'][:12]}"] for r in cold]
    emit("campaign_matrix", "\n".join([
        format_table(
            ["scenario", "manager", "goodput", "p95 resp (s)",
             "migrations", "fingerprint"], rows,
            title=f"standard campaign grid ({len(grid)} configs, "
                  f"{GRID_REQUESTS} requests each)"),
        "",
        f"cold {cold_s:.2f} s, warm {warm_s:.4f} s "
        f"({fraction:.1%} of cold; bound "
        f"<{MAX_WARM_FRACTION:.0%}); grid {grid_fp[:12]}"]))
    merge_metrics(BENCH_FILE, ANCHOR, {
        "grid_configs": len(grid),
        "grid_cold_wall_s": round(cold_s, 2),
        "grid_warm_wall_s": round(warm_s, 4),
        "grid_warm_fraction": round(fraction, 4),
    }, fingerprint=grid_fp)
    assert fraction < MAX_WARM_FRACTION, (
        f"warm grid took {warm_s:.3f}s = {fraction:.1%} of the "
        f"{cold_s:.2f}s cold sweep")


def test_parallel_cold_sweep(emit, grid, campaign_apps):
    """Cold ``jobs=4`` vs ``jobs=1``: byte-identical always; >= 2x
    faster where four CPUs are usable (the CI configuration)."""
    cpus = _usable_cpus()

    t0 = time.perf_counter()
    sequential = CampaignRunner(cache=CampaignCache(),
                                apps=campaign_apps) \
        .run_many(grid, jobs=1)
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = CampaignRunner(cache=CampaignCache(),
                              apps=campaign_apps) \
        .run_many(grid, jobs=4)
    par_s = time.perf_counter() - t0

    assert canonical_json(sequential) == canonical_json(parallel)

    speedup = seq_s / par_s
    # same bound schedule as the compile service: 4 workers on >= 4
    # cores must halve the wall; on 2-3 cores some speedup must
    # survive pool overhead; on 1 core the run only proves identity
    required = 2.0 if cpus >= 4 else (1.2 if cpus >= 2 else None)
    print(f"\ncampaign jobs=1 {seq_s:.2f}s, jobs=4 {par_s:.2f}s, "
          f"{speedup:.2f}x on {cpus} CPUs "
          f"(bound {required or 'n/a'})")
    merge_metrics(BENCH_FILE, ANCHOR, {
        "sweep_jobs1_wall_s": round(seq_s, 2),
        "sweep_jobs4_wall_s": round(par_s, 2),
        "sweep_jobs4_speedup": round(speedup, 2),
        "sweep_cpus": cpus,
    })
    if required is not None:
        assert speedup >= required, (
            f"jobs=4 only {speedup:.2f}x over jobs=1 on {cpus} CPUs "
            f"({par_s:.2f}s vs {seq_s:.2f}s)")


def test_trajectory_report(emit):
    """Render the consolidated perf trajectory for REPORT.md."""
    docs = [load_bench(REPO_ROOT / name)
            for name in ("BENCH_perf.json", "BENCH_robustness.json")]
    text = format_trajectory(docs)
    assert ANCHOR in text or "pr7-array-kernel" in text
    emit("perf_trajectory", text)
