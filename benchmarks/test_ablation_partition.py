"""Ablation -- what the Section 4 partition algorithm buys at runtime.

The Fig. 8 bench shows the algorithm reduces the *required* inter-block
bandwidth; this ablation traces that through to deployed consequences:
channel payloads the interface must carry and the worst-case serialization
a board-spanning deployment would suffer if the design had been
partitioned naively.
"""

from repro.analysis.report import format_table
from repro.compiler.interface_gen import InterfaceGenerator
from repro.compiler.partitioner import (
    NetlistPartitioner,
    blocks_for,
    random_partition,
)
from repro.hls.frontend import synthesize
from repro.hls.kernels import benchmark as bench_spec
from repro.interconnect.links import LINKS, LinkClass


def build_variants(capacity, spec):
    netlist = synthesize(spec)
    n = blocks_for(spec.resources, capacity)
    ours = NetlistPartitioner(capacity).partition(netlist, num_blocks=n)
    rand = random_partition(netlist, n, capacity)
    return {"placement-based": ours, "random": rand}


def test_ablation_partition_runtime_consequences(benchmark, cluster,
                                                 emit):
    capacity = cluster.partition.block_capacity
    spec = bench_spec("svhn", "L")
    variants = benchmark(build_variants, capacity, spec)

    ring = LINKS[LinkClass.INTER_FPGA]
    rows = []
    stats = {}
    for name, part in variants.items():
        iface = InterfaceGenerator().generate(part)
        worst_payload = max((c.payload_bits for c in iface.channels),
                            default=0.0)
        worst_ser = worst_payload / ring.bits_per_cycle
        buffer_cost = sum((c.buffer_cost() for c in iface.channels),
                          start=iface.resource_cost())
        stats[name] = (len(iface.channels), worst_ser,
                       buffer_cost.bram_mb)
        rows.append([name, f"{part.cut_bandwidth_bits:.0f}",
                     len(iface.channels), f"{worst_ser:.1f}",
                     f"{buffer_cost.bram_mb:.1f}Mb"])
    emit("ablation_partition", format_table(
        ["partition", "cut (bits)", "channels",
         "worst ring serialization (cycles/beat)",
         "interface cost (if fully buffered)"], rows,
        title=f"ablation -- partition algorithm, {spec.name}"))

    ours_ch, ours_ser, ours_cost = stats["placement-based"]
    rand_ch, rand_ser, rand_cost = stats["random"]
    assert ours_ser < rand_ser
    assert ours_ch <= rand_ch
    assert ours_cost <= rand_cost


def test_ablation_partition_vs_fm(benchmark, cluster, emit):
    """The Section 4 algorithm vs classic recursive FM min-cut.

    FM optimizes cut alone; across the benchmark set neither dominates
    on raw cut, but FM's bisection tree sometimes needs extra virtual
    blocks (worse utilization) and carries no placement information for
    the frequency objective -- the paper's reasons for the
    placement-based design.
    """
    import math
    import time

    from repro.compiler.fm import FMPartitioner
    from repro.hls.kernels import all_benchmarks

    capacity = cluster.partition.block_capacity
    specs = [s for s in all_benchmarks()
             if blocks_for(s.resources, capacity) >= 3]

    def measure(spec):
        netlist = synthesize(spec)
        n = blocks_for(spec.resources, capacity)
        t0 = time.perf_counter()
        pl = NetlistPartitioner(capacity).partition(netlist,
                                                    num_blocks=n)
        t_pl = time.perf_counter() - t0
        t0 = time.perf_counter()
        fm = FMPartitioner(capacity).partition(netlist, num_blocks=n)
        t_fm = time.perf_counter() - t0
        return pl, fm, t_pl, t_fm

    benchmark(measure, specs[0])

    rows = []
    cut_ratios = []
    extra_blocks = 0
    for spec in specs:
        pl, fm, t_pl, t_fm = measure(spec)
        cut_ratios.append(fm.cut_bandwidth_bits
                          / max(1.0, pl.cut_bandwidth_bits))
        extra_blocks += fm.num_blocks - pl.num_blocks
        rows.append([spec.name, pl.num_blocks, fm.num_blocks,
                     f"{pl.cut_bandwidth_bits:.0f}",
                     f"{fm.cut_bandwidth_bits:.0f}",
                     f"{t_pl:.2f}s", f"{t_fm:.2f}s"])
    geomean = math.exp(sum(math.log(r) for r in cut_ratios)
                       / len(cut_ratios))
    text = format_table(
        ["design", "blocks (placement)", "blocks (FM)",
         "cut (placement)", "cut (FM)", "t placement", "t FM"], rows,
        title="ablation -- placement-based (Section 4) vs recursive "
              "FM min-cut")
    text += (f"\n\nFM/placement cut geomean: {geomean:.2f}x; "
             f"FM needed {extra_blocks} extra blocks across the set")
    emit("ablation_fm", text)

    # same class on cut; FM never does dramatically better or worse
    assert 0.3 < geomean < 3.0
    # FM's feasibility retries cost blocks somewhere in the set
    assert extra_blocks >= 0
