"""Fig. 10 / Section 5.5 scalars -- utilization, concurrency, spanning.

The paper's secondary System-Layer claims:

- resource utilization improves by 15.9% over AmorphOS-HT;
- 2.3x more applications run concurrently than the baseline;
- 5~40% of applications end up partitioned across multiple FPGAs;
- block utilization stays above 93% under load;
- the latency-insensitive interface overhead is below 0.03%.
"""

import statistics

from repro.analysis.report import format_table
from repro.sim.workload import COMPOSITIONS


def test_fig10_utilization_and_concurrency(benchmark, system_results,
                                           emit):
    benchmark(lambda: {
        mgr: statistics.mean(s.block_utilization
                             for s in per_set.values())
        for mgr, per_set in system_results.items()})

    rows = []
    for mgr, per_set in system_results.items():
        rows.append([
            mgr,
            f"{statistics.mean(s.block_utilization for s in per_set.values()):.1%}",
            f"{statistics.mean(s.mean_concurrency for s in per_set.values()):.1f}",
            f"{statistics.mean(s.multi_fpga_fraction for s in per_set.values()):.1%}",
        ])
    text = format_table(
        ["manager", "avg block util", "avg concurrency",
         "multi-FPGA deployments"], rows,
        title="Fig. 10 / Section 5.5 -- utilization and concurrency")

    vital = system_results["vital"]
    base = system_results["per-device"]
    amorphos = system_results["amorphos-ht"]

    util_gain = (
        statistics.mean(s.block_utilization for s in vital.values())
        / statistics.mean(s.block_utilization
                          for s in amorphos.values()) - 1)
    conc_ratio = (
        statistics.mean(s.mean_concurrency for s in vital.values())
        / statistics.mean(s.mean_concurrency for s in base.values()))
    pressured = [s.block_utilization_pressured for s in vital.values()
                 if s.block_utilization_pressured > 0]
    spans = [s.multi_fpga_fraction for s in vital.values()]
    overhead = max(s.max_latency_overhead for s in vital.values())

    text += (f"\n\nViTAL utilization vs AmorphOS-HT: +{util_gain:.1%} "
             "(paper: +15.9%)"
             f"\nViTAL concurrency vs baseline: {conc_ratio:.1f}x "
             "(paper: 2.3x)"
             f"\nblock utilization under load: "
             f"{statistics.mean(pressured):.1%} (paper: >93%)"
             f"\nmulti-FPGA deployments: {min(spans):.0%}..."
             f"{max(spans):.0%} (paper: 5%~40%)"
             f"\nworst LI-interface latency overhead: {overhead:.2e} "
             "(paper: <0.03%)")
    emit("fig10", text)

    assert util_gain > 0.08
    assert 1.7 < conc_ratio < 3.0
    assert statistics.mean(pressured) > 0.90
    assert max(spans) >= 0.30 and min(spans) >= 0.0
    assert overhead < 3e-4


def test_fig10_relocation_snapshots(benchmark, cluster, apps, emit):
    """Fig. 10 proper: applications relocated into whatever blocks are
    free, rendered as occupancy snapshots from the audit log."""
    from repro.analysis.occupancy import occupancy_timeline
    from repro.runtime.controller import SystemController
    from repro.sim.experiment import run_experiment
    from repro.sim.workload import WorkloadGenerator

    controller = SystemController(cluster)
    requests = WorkloadGenerator(seed=10).generate(
        7, num_requests=40, mean_interarrival_s=5.0)
    benchmark.pedantic(run_experiment,
                       args=(controller, requests, apps),
                       rounds=1, iterations=1)
    timeline = occupancy_timeline(controller.audit, cluster,
                                  max_snapshots=6)
    emit("fig10_snapshots",
         "Fig. 10 -- flexible sharing via relocation "
         "(occupancy snapshots; letters are deployments)\n\n"
         + timeline)
    # multiple concurrent deployments visible in at least one frame
    frames = timeline.split("\n\n")
    assert any(len({c for c in frame if c.isalnum()
                    and not c.isdigit()} - {"b", "o", "a", "r", "d",
                                            "t", "s"}) >= 3
               for frame in frames)


def test_fig10_per_set_spanning(benchmark, system_results, emit):
    """Spanning tracks workload size: Large-heavy sets split more."""
    vital = system_results["vital"]
    benchmark(lambda: [vital[i].multi_fpga_fraction
                       for i in COMPOSITIONS])
    rows = [[f"#{i}", f"{vital[i].multi_fpga_fraction:.0%}",
             f"{vital[i].block_utilization_pressured:.0%}"]
            for i in sorted(COMPOSITIONS)]
    emit("fig10_spanning", format_table(
        ["workload set", "multi-FPGA deployments",
         "block util under load"], rows,
        title="Section 5.5 -- spanning and pressure per workload set"))
    # all-S never needs to span; L-heavy sets span the most
    assert vital[1].multi_fpga_fraction < 0.05
    assert vital[3].multi_fpga_fraction > 0.25
