"""Table 1 -- the qualitative method comparison, measured.

The paper's Table 1 claims each method's capabilities; here each claim is
*measured* against the implementations: does the manager share an FPGA
between applications, can an application span FPGAs, and what does each
cost in per-deployment (runtime) overhead.
"""

import pytest

from repro.analysis.report import format_table
from repro.baselines.amorphos import AmorphOSManager
from repro.baselines.per_device import PerDeviceManager
from repro.baselines.slot_based import SlotBasedManager
from repro.hls.kernels import benchmark as bench_spec
from repro.runtime.controller import SystemController


def probe_manager(factory, cluster, apps):
    """Measure sharing, scale-out and deployment overhead."""
    small = apps["mlp-mnist-S"]
    big = apps["svhn-L"]

    mgr = factory(cluster)
    d1 = mgr.try_deploy(small, 0, 0.0)
    d2 = mgr.try_deploy(small, 1, 0.0)
    shares_fpga = (d2 is not None
                   and d1.placement.boards == d2.placement.boards)
    reconfig = d1.reconfig_time_s
    pauses = bool(d2 and d2.corunner_penalties)

    # scale-out: fill boards except scattered fragments, offer a big app
    mgr2 = factory(cluster)
    medium = apps["cifar10-M"]
    live = []
    while (d := mgr2.try_deploy(medium, 100 + len(live), 0.0)) \
            is not None:
        live.append(d)
    freed_boards = set()
    for d in list(live):
        board = d.placement.boards[0]
        if board not in freed_boards:
            mgr2.release(d, 0.0)
            live.remove(d)
            freed_boards.add(board)
        if len(freed_boards) == cluster.num_boards:
            break
    d_big = mgr2.try_deploy(big, 999, 0.0)
    scale_out = d_big is not None and d_big.spans_boards
    return {
        "shares_fpga": shares_fpga,
        "scale_out": scale_out,
        "reconfig_s": reconfig,
        "pauses_corunners": pauses,
    }


def test_table1_method_matrix(benchmark, cluster, apps, emit):
    factories = {
        "per-device (AWS-style)": PerDeviceManager,
        "slot-based [11][63]": SlotBasedManager,
        "AmorphOS (high-throughput)": AmorphOSManager,
        "ViTAL": SystemController,
    }
    probes = {name: probe_manager(f, cluster, apps)
              for name, f in factories.items()}
    benchmark(lambda: probe_manager(SystemController, cluster, apps))

    rows = []
    for name, p in probes.items():
        rows.append([
            name,
            "yes" if p["shares_fpga"] else "no",
            "yes" if p["scale_out"] else "no",
            f"{p['reconfig_s'] * 1e3:.0f} ms"
            + (" + pauses co-runners" if p["pauses_corunners"] else ""),
        ])
    emit("table1", format_table(
        ["method", "FPGA sharing", "scale-out accel.",
         "deploy overhead"],
        rows, title="Table 1 -- measured capability matrix"))

    assert not probes["per-device (AWS-style)"]["shares_fpga"]
    assert probes["slot-based [11][63]"]["shares_fpga"]
    assert probes["AmorphOS (high-throughput)"]["shares_fpga"]
    assert probes["ViTAL"]["shares_fpga"]
    # only ViTAL supports scale-out acceleration
    for name, p in probes.items():
        assert p["scale_out"] == (name == "ViTAL"), name
    # AmorphOS transitions pause co-runners; ViTAL's PR does not
    assert probes["AmorphOS (high-throughput)"]["pauses_corunners"]
    assert not probes["ViTAL"]["pauses_corunners"]
    # ViTAL's per-deployment reconfiguration is cheaper than a
    # full-device rewrite
    assert probes["ViTAL"]["reconfig_s"] \
        < probes["per-device (AWS-style)"]["reconfig_s"] \
        == pytest.approx(cluster.reconfigurer.full_device_time_s())
