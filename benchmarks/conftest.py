"""Shared fixtures for the benchmark harness.

Each ``test_*`` bench regenerates one table or figure of the paper: it
computes the artifact once (session/module fixtures), prints the same
rows/series the paper reports, writes them to ``benchmarks/results/``,
asserts the paper's qualitative shape, and times a representative kernel
of the experiment through pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cluster.cluster import make_cluster
from repro.sim.experiment import compile_benchmarks

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def cluster():
    return make_cluster(num_boards=4)


@pytest.fixture(scope="session")
def compiled_apps(cluster):
    """All 21 Table 2 designs compiled once, shared by every module.

    The artifacts are a function of the partition geometry only -- not
    of the board count -- so the health, observability and scalability
    benches reuse this set for their 4/8/32/64-board clusters instead
    of recompiling per module (the compile-once story of the paper,
    applied to the harness itself).
    """
    return compile_benchmarks(cluster)


@pytest.fixture(scope="session")
def apps(compiled_apps):
    """Alias kept for the figure/table benches."""
    return compiled_apps


@pytest.fixture(scope="session")
def system_results(cluster, apps):
    """The full System-Layer experiment (Fig. 9 / Fig. 10 input).

    All four managers over the ten Table 3 workload sets, three replicas
    each, summaries averaged per (manager, set).
    """
    from repro.sim.experiment import compare_managers
    from repro.sim.workload import COMPOSITIONS, WorkloadGenerator

    generator = WorkloadGenerator(seed=2020)
    sets = {index: generator.replicas(index, count=3)
            for index in COMPOSITIONS}
    return compare_managers(sets, cluster=cluster, apps=apps)


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def pytest_sessionfinish(session, exitstatus):
    """Stitch all persisted results into one Markdown report."""
    if RESULTS_DIR.exists() and any(RESULTS_DIR.glob("*.txt")):
        from repro.analysis.summary import write_report
        path = write_report(RESULTS_DIR)
        print(f"\nconsolidated report: {path}")
