"""System-Layer allocation hot path at cloud scale (Section 5.5).

The paper's evaluation runs on a 4-FPGA deployment, but Section 6 argues
the design "can be easily scaled to a larger cluster".  This bench backs
that claim: it drives saturated open-loop workloads (workload set #10,
60/20/20 S/M/L) through 32- and 64-board clusters and times the whole
discrete-event run.

Two configurations of the same controller are compared:

- **incremental** (the default): ``ResourceDB`` maintains allocated and
  failed counters, an owner index and per-board free sets on every
  transition, the ring network memoizes distances and span costs, and
  ``CommunicationAwarePolicy`` prunes its subset search with capacity
  and span lower bounds that provably never change the chosen subset;
- **legacy rescan** (``RescanResourceDB`` + ``prune=False``): the
  original full-scan queries and exhaustive ``C(n, k)`` subset
  enumeration, retained as the reference implementation.

At 4 boards both configurations produce bit-identical summaries (the
equivalence tests under ``tests/`` pin that); at 64 boards the legacy
path is combinatorial once the cluster saturates, so it is run in a
subprocess with a timeout and the timeout is treated as a *lower bound*
on its cost.  The speedup asserted here is therefore conservative.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

from repro.cluster.cluster import make_cluster
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionPlanner
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator

#: saturated workloads: interarrival well below the per-request service
#: demand, so the queue is never empty and every blocked deployment
#: exercises the policy's multi-board search
WORKLOAD_SET = 10
#: wall-clock ceiling for the incremental stack on one full run; the
#: measured time is ~0.6 s at 64 boards, so this absorbs slow CI hosts
NEW_BUDGET_S = 60.0
#: subprocess ceiling for the legacy rescan stack (compile time
#: included); hitting it is recorded as ">= timeout", a lower bound
LEGACY_TIMEOUT_S = 90.0
MIN_SPEEDUP = 10.0

_SRC = Path(__file__).resolve().parent.parent / "src"

#: the legacy configuration, timed in a child so a combinatorial blowup
#: cannot hang the bench; prints the wall seconds of the event loop
_LEGACY_SCRIPT = """\
import sys, time
from repro.cluster.cluster import make_cluster
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionPlanner
from repro.runtime.controller import SystemController
from repro.runtime.policy import CommunicationAwarePolicy
from repro.runtime.resource_db import RescanResourceDB
from repro.sim.experiment import compile_benchmarks, run_experiment
from repro.sim.workload import WorkloadGenerator

boards, n, inter = int(sys.argv[1]), int(sys.argv[2]), float(sys.argv[3])
partition = PartitionPlanner(make_xcvu37p()).plan()
cluster = make_cluster(boards, partition=partition)
apps = compile_benchmarks(cluster)
requests = WorkloadGenerator(seed=2020).generate(
    int(sys.argv[4]), num_requests=n, mean_interarrival_s=inter)
controller = SystemController(
    cluster, policy=CommunicationAwarePolicy(prune=False))
controller.resource_db = RescanResourceDB(cluster)
t0 = time.perf_counter()
run_experiment(controller, requests, apps)
print(time.perf_counter() - t0)
"""


def _run_incremental(apps, boards: int, num_requests: int,
                     interarrival: float):
    """One full experiment on the default (incremental) stack."""
    partition = PartitionPlanner(make_xcvu37p()).plan()
    cluster = make_cluster(boards, partition=partition)
    requests = WorkloadGenerator(seed=2020).generate(
        WORKLOAD_SET, num_requests=num_requests,
        mean_interarrival_s=interarrival)
    controller = SystemController(cluster)
    t0 = time.perf_counter()
    result = run_experiment(controller, requests, apps)
    wall = time.perf_counter() - t0
    # the incremental indices must still agree with a full rescan after
    # thousands of allocate/release transitions
    controller.resource_db.verify()
    return wall, result.summary


def _run_legacy(boards: int, num_requests: int,
                interarrival: float) -> tuple[float, bool]:
    """Legacy wall seconds and whether the timeout was hit."""
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _LEGACY_SCRIPT, str(boards),
             str(num_requests), str(interarrival), str(WORKLOAD_SET)],
            capture_output=True, text=True, timeout=LEGACY_TIMEOUT_S,
            env={"PYTHONPATH": str(_SRC)}, check=True)
        return float(proc.stdout.strip()), False
    except subprocess.TimeoutExpired:
        return LEGACY_TIMEOUT_S, True


def _report_row(boards: int, num_requests: int, interarrival: float,
                wall: float, summary, legacy: float,
                timed_out: bool) -> str:
    bound = ">=" if timed_out else "  "
    return (f"{boards:>6} {num_requests:>9} {interarrival:>12.2f} "
            f"{wall:>9.2f} {bound}{legacy:>7.1f} "
            f"{legacy / wall:>7.0f}x {summary.block_utilization:>6.3f} "
            f"{summary.mean_response_s:>9.1f}")


HEADER = (f"{'boards':>6} {'requests':>9} {'interarr_s':>12} "
          f"{'new_s':>9} {'legacy_s':>9} {'speedup':>8} "
          f"{'util':>6} {'resp_s':>9}")


def test_scalability_smoke(emit, compiled_apps):
    """CI-sized run: a small cluster must stay comfortably fast and the
    incremental indices must verify against a full rescan."""
    wall, summary = _run_incremental(
        compiled_apps, boards=8, num_requests=400, interarrival=0.8)
    emit("scalability_smoke",
         "System-Layer scalability smoke (incremental stack)\n"
         f"{'boards':>6} {'requests':>9} {'interarr_s':>12} "
         f"{'new_s':>9} {'util':>6} {'resp_s':>9}\n"
         f"{8:>6} {400:>9} {0.8:>12.2f} {wall:>9.2f} "
         f"{summary.block_utilization:>6.3f} "
         f"{summary.mean_response_s:>9.1f}")
    assert summary.num_requests == 400
    assert wall < 15.0, f"smoke run took {wall:.1f}s, budget 15s"


def test_scalability_large_clusters(benchmark, emit, compiled_apps):
    """32- and 64-board saturated workloads, incremental vs legacy."""
    configs = [(32, 1500, 0.4), (64, 2000, 0.2)]
    rows = []
    for boards, num_requests, interarrival in configs:
        wall, summary = _run_incremental(compiled_apps, boards,
                                         num_requests, interarrival)
        assert wall < NEW_BUDGET_S, (
            f"incremental stack took {wall:.1f}s at {boards} boards")
        legacy, timed_out = _run_legacy(boards, num_requests,
                                        interarrival)
        speedup = legacy / wall
        assert speedup >= MIN_SPEEDUP, (
            f"{boards} boards: only {speedup:.1f}x over legacy "
            f"({legacy:.1f}s{' timeout' if timed_out else ''} "
            f"vs {wall:.2f}s)")
        rows.append(_report_row(boards, num_requests, interarrival,
                                wall, summary, legacy, timed_out))

    benchmark.pedantic(
        lambda: _run_incremental(compiled_apps, 64, 2000, 0.2),
        rounds=1, iterations=1)

    emit("scalability", "\n".join([
        "System-Layer allocation hot path at scale "
        "(saturated workload set #10)",
        "legacy = RescanResourceDB + exhaustive subset enumeration; "
        "'>=' marks a timeout,",
        "so the printed speedup is a lower bound.",
        "", HEADER, *rows]))
