"""Command-line interface: ``python -m repro <command>``.

Operator-facing entry points over the library:

- ``partition`` -- run the Section 5.3 design-space exploration for a
  device and print the chosen fabric partition;
- ``compile``   -- compile one Table 2 benchmark and print the artifact
  summary (blocks, fmax, channels, modeled compile breakdown);
- ``links``     -- run the benchmark-set-1 bandwidth microbenchmark on
  every link class (Table 4);
- ``simulate``  -- replay a Table 3 workload set against one or more
  managers and print the comparison (a one-set Fig. 9);
- ``status``    -- build the default cluster and print its shape plus
  per-board health (reads the optional ``--state`` drill file);
- ``fail-board``/``repair-board`` -- manual failure drills: deploy a
  demo workload, fail-stop (or repair) one board, and print who was
  evicted, what recovery did, and the audit trail;
- ``chaos``     -- run the correlated/gray-failure scenario matrix (or
  one scenario) with per-event invariants; ``--no-guard`` replays the
  recovery-only baseline, ``--trace`` writes the JSONL the chaos-smoke
  CI gate diffs against its golden;
- ``diff``      -- semantically compare two traces / report profiles /
  metrics snapshots (``--fail-on-regression`` is the CI gate).

``simulate --health`` streams the run through the cluster health engine
(timeline + SLO rules; ``--faults demo`` injects the canonical outage),
and ``report --timeline`` / ``report --format json`` render the
artifacts it writes.

Every command is a pure function over the library, returns an exit code,
and prints via the same report helpers the benchmark harness uses, so
output is stable and testable.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.analysis.report import format_table
from repro.baselines.amorphos import AmorphOSManager
from repro.baselines.per_device import PerDeviceManager
from repro.baselines.slot_based import SlotBasedManager
from repro.cluster.cluster import make_cluster
from repro.compiler.flow import CompilationFlow
from repro.fabric.devices import DEVICE_CATALOG, device_by_name
from repro.fabric.partition import PartitionConstraints, PartitionPlanner
from repro.hls.kernels import BENCHMARKS, benchmark
from repro.interconnect.links import LINKS, LinkClass
from repro.interconnect.simulator import measure_channel_bandwidth
from repro.runtime.controller import SystemController
from repro.sim.experiment import compile_benchmarks, run_experiment
from repro.sim.workload import COMPOSITIONS, WorkloadGenerator

__all__ = ["main", "build_parser"]

_MANAGERS = {
    "per-device": PerDeviceManager,
    "slot-based": SlotBasedManager,
    "amorphos-ht": AmorphOSManager,
    "vital": SystemController,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ViTAL (ASPLOS 2020) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition",
                       help="plan the fabric partition of a device")
    p.add_argument("--device", default="XCVU37P",
                   choices=sorted(DEVICE_CATALOG))
    p.add_argument("--no-buffer-opt", action="store_true",
                   help="disable intra-FPGA buffer removal (§3.5.2)")
    p.add_argument("--hardened", action="store_true",
                   help="system regions in hard IP (§3.5.2 future work)")

    p = sub.add_parser("compile",
                       help="compile Table 2 benchmarks (cached)")
    p.add_argument("family", nargs="?", choices=sorted(BENCHMARKS))
    p.add_argument("size", nargs="?", choices=["S", "M", "L"])
    p.add_argument("--all", action="store_true",
                   help="compile the whole 21-app benchmark set")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for cache misses "
                        "(1 = inline)")
    p.add_argument("--cache-dir", default=None,
                   help="persistent compile cache directory; artifacts "
                        "found there are reused instead of recompiled")

    sub.add_parser("links",
                   help="Table 4 link bandwidth microbenchmark")

    p = sub.add_parser("simulate",
                       help="replay one Table 3 workload set")
    p.add_argument("--set", dest="set_index", type=int, default=7,
                   choices=sorted(COMPOSITIONS))
    p.add_argument("--managers", default="per-device,vital",
                   help="comma-separated subset of "
                        f"{','.join(_MANAGERS)}")
    p.add_argument("--requests", type=int, default=60)
    p.add_argument("--interarrival", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--boards", type=int, default=4)
    p.add_argument("--from-trace", dest="from_trace", default=None,
                   help="replay a workload trace file (see `trace`) "
                        "instead of generating requests")
    p.add_argument("--trace", dest="trace_out", default=None,
                   help="write a structured event trace (JSON lines) "
                        "of every scheduling decision")
    p.add_argument("--metrics", dest="metrics_out", default=None,
                   help="export run metrics (.prom suffix selects "
                        "Prometheus text format, otherwise JSON)")
    p.add_argument("--health", action="store_true",
                   help="stream the run through the health engine "
                        "(timeline + SLO rules) and print the verdict")
    p.add_argument("--timeline", dest="timeline_out", default=None,
                   help="write the health timeline (.csv suffix "
                        "selects CSV, otherwise JSON); implies "
                        "--health")
    p.add_argument("--slo", dest="slo_rules", action="append",
                   default=None, metavar="RULE",
                   help="SLO rule like 'p95_response_s < 60' or "
                        "'fragmentation < 0.8 @ 120' (repeatable; "
                        "implies --health)")
    p.add_argument("--interval", dest="bucket_s", type=float,
                   default=10.0,
                   help="timeline bucket width in simulated seconds")
    p.add_argument("--faults", default="none",
                   choices=["none", "demo"],
                   help="inject a fault schedule ('demo': one board "
                        "outage + repair)")
    p.add_argument("--recovery", default="requeue",
                   choices=["requeue", "migrate-on-failure"],
                   help="recovery policy for evicted deployments")
    p.add_argument("--defrag", action="store_true",
                   help="attach the background defragmenter (live "
                        "migration consolidates fragmented boards; "
                        "only managers that support migrate)")
    p.add_argument("--profile", action="store_true",
                   help="break the wall clock into phases (compile / "
                        "simulate, plus the event loop's nested "
                        "sections) with op counters")
    p.add_argument("--profile-out", dest="profile_out", default=None,
                   help="write the phase profile as diff-consumable "
                        "JSON (implies --profile)")
    p.add_argument("--engine", default="array",
                   choices=["array", "heapq"],
                   help="event engine: the flat-array queue (default) "
                        "or the original heapq oracle; results are "
                        "byte-identical")

    p = sub.add_parser(
        "status",
        help="print the cluster shape and per-board health")
    p.add_argument("--boards", type=int, default=4)
    p.add_argument("--state", default=None,
                   help="drill state file written by fail-board")

    for name, help_text in [
            ("fail-board", "drill: fail-stop one board and recover"),
            ("repair-board", "drill: bring a failed board back")]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("board", type=int)
        p.add_argument("--boards", type=int, default=4)
        p.add_argument("--state", default=None,
                       help="JSON file persisting drill health state")
        if name == "fail-board":
            p.add_argument("--recovery", default="migrate-on-failure",
                           choices=["fail-requeue", "migrate-on-failure"])

    p = sub.add_parser(
        "chaos",
        help="run the chaos campaign (correlated + gray failures)")
    p.add_argument("--scenario", default=None,
                   help="run one named scenario instead of the whole "
                        "matrix (see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the scenario matrix and exit")
    p.add_argument("--no-guard", action="store_true",
                   help="disable the degraded-mode guard (recovery-"
                        "only baseline)")
    p.add_argument("--trace", dest="trace_out", default=None,
                   help="write the scenario event trace (JSON lines); "
                        "requires --scenario")
    p.add_argument("--format", dest="format", default="text",
                   choices=["text", "json"])
    p.add_argument("--profile", action="store_true",
                   help="break the campaign wall into phases "
                        "(compile / per-scenario) with op counters")
    p.add_argument("--profile-out", dest="profile_out", default=None,
                   help="write the phase profile as diff-consumable "
                        "JSON (implies --profile)")

    p = sub.add_parser(
        "campaign",
        help="run a declarative scenario grid through the cached "
             "campaign service")
    p.add_argument("--grid", default="smoke",
                   choices=["smoke", "standard", "extended"],
                   help="which declarative config grid to run")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for cache misses "
                        "(1 = inline)")
    p.add_argument("--requests", type=int, default=None,
                   help="requests per scenario (default: the grid's)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--cache-dir", default=None,
                   help="persistent campaign cache directory; results "
                        "found there are reused instead of re-run")
    p.add_argument("--format", dest="format", default="text",
                   choices=["text", "json"])
    p.add_argument("--profile", action="store_true",
                   help="print the phase profiler's breakdown of the "
                        "campaign wall")
    p.add_argument("--profile-out", dest="profile_out", default=None,
                   help="write the phase profile as diff-consumable "
                        "JSON (implies --profile)")
    p.add_argument("--bench-out", dest="bench_out", default=None,
                   help="append a schema-valid trajectory entry "
                        "(wall, cache, throughput) to this "
                        "BENCH_*.json file")
    p.add_argument("--anchor", default="campaign",
                   help="trajectory anchor name for --bench-out")

    p = sub.add_parser(
        "bench",
        help="perf-trajectory files: validate / append / gate")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    b = bench_sub.add_parser(
        "validate", help="check BENCH_*.json files against the schema")
    b.add_argument("paths", nargs="+")
    b = bench_sub.add_parser(
        "append", help="append one schema-valid trajectory entry")
    b.add_argument("path")
    b.add_argument("--anchor", required=True)
    b.add_argument("--date", default=None,
                   help="ISO date of the measurement (default: today)")
    b.add_argument("--fingerprint", default=None,
                   help="config content address the numbers came from")
    b.add_argument("--metric", dest="metrics", action="append",
                   required=True, metavar="NAME=VALUE",
                   help="metric leaf (repeatable; dots nest, e.g. "
                        "rack_flap.goodput=0.98)")
    b = bench_sub.add_parser(
        "gate", help="fail on out-of-band same-anchor regressions")
    b.add_argument("paths", nargs="+")
    b.add_argument("--band", type=float, default=4.0,
                   help="tolerated ratio between consecutive "
                        "same-anchor measurements")

    p = sub.add_parser(
        "export-db",
        help="compile the Table 2 benchmarks and save the bitstream DB")
    p.add_argument("path")

    p = sub.add_parser(
        "report",
        help="stitch benchmarks/results/*.txt into REPORT.md")
    p.add_argument("--results", default="benchmarks/results")
    p.add_argument("--output", default=None)
    p.add_argument("--cache-dir", default=None,
                   help="summarize a compile-cache directory (entries, "
                        "bytes, apps) instead of stitching results")
    p.add_argument("--trace", dest="trace_in", default=None,
                   help="summarize an event trace (decisions and "
                        "latency percentiles) instead of stitching "
                        "benchmark results")
    p.add_argument("--timeline", dest="timeline_in", default=None,
                   help="render a health timeline written by "
                        "`simulate --timeline`")
    p.add_argument("--format", dest="format", default="text",
                   choices=["text", "json"],
                   help="output format ('json' emits the machine-"
                        "readable profile the diff tool consumes)")

    p = sub.add_parser(
        "diff",
        help="semantically compare two traces, report profiles or "
             "metrics snapshots")
    p.add_argument("baseline")
    p.add_argument("candidate")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 if any delta is classified as a "
                        "regression (the CI gate)")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="relative p95 shift tolerated before a span "
                        "counts as regressed")
    p.add_argument("--format", dest="format", default="text",
                   choices=["text", "json"])

    p = sub.add_parser(
        "trace",
        help="generate a workload-set trace file (JSON)")
    p.add_argument("path")
    p.add_argument("--set", dest="set_index", type=int, default=7,
                   choices=sorted(COMPOSITIONS))
    p.add_argument("--requests", type=int, default=120)
    p.add_argument("--interarrival", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)

    return parser


# ----------------------------------------------------------------------
def _cmd_partition(args: argparse.Namespace) -> int:
    device = device_by_name(args.device)
    constraints = PartitionConstraints(
        remove_intra_fpga_buffers=not args.no_buffer_opt,
        hardened_system_regions=args.hardened,
        max_reserved_fraction=1.0 if args.no_buffer_opt else 0.10,
    )
    planner = PartitionPlanner(device, constraints)
    rows = [[f"{c.blocks_per_die}/die", c.num_blocks,
             f"{c.user_fraction():.1%}", f"{c.reserved_fraction():.1%}"]
            for c in planner.candidates()]
    print(format_table(
        ["geometry", "#blocks", "user", "reserved"], rows,
        title=f"candidate partitions of {device.name}"))
    print()
    print(planner.plan().describe())
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    import time

    from repro.compiler.cache import CompileCache
    from repro.compiler.service import CompileService
    from repro.hls.kernels import all_benchmarks

    cluster = make_cluster(num_boards=1)
    cache = CompileCache(cache_dir=args.cache_dir) \
        if args.cache_dir else None
    service = CompileService(fabric=cluster.partition, cache=cache)

    if args.all:
        t0 = time.perf_counter()
        apps = service.compile_many(all_benchmarks(), jobs=args.jobs)
        wall = time.perf_counter() - t0
        print(format_table(
            ["app", "blocks", "fmax", "modeled compile"],
            [[name, app.num_blocks, f"{app.fmax_mhz:.0f} MHz",
              f"{app.breakdown.total_s / 60:.0f} min"]
             for name, app in apps.items()],
            title="Table 2 benchmark set"))
        print(f"compiled {len(apps)} applications in {wall:.2f}s "
              f"(jobs={args.jobs})")
    else:
        if not args.family or not args.size:
            print("family and size are required unless --all is given")
            return 2
        app = service.compile_one(benchmark(args.family, args.size))
        b = app.breakdown
        print(f"{app.name}: {app.num_blocks} virtual blocks, "
              f"fmax {app.fmax_mhz:.0f} MHz, "
              f"{len(app.interface.channels)} LI channels, "
              f"cut {app.cut_bandwidth_bits:.0f} bits")
        print(format_table(
            ["step", "modeled time", "share"],
            [[step, f"{seconds / 60:.1f} min",
              f"{seconds / b.total_s:.1%}"]
             for step, seconds in b.as_dict().items()],
            title="vendor-scale compile breakdown"))
    if cache is not None:
        s = cache.stats()
        print(f"cache: {s['hits']} hits ({s['disk_hits']} from disk), "
              f"{s['misses']} misses, {s['stores']} stored "
              f"at {args.cache_dir}")
    return 0


def _cmd_links(_args: argparse.Namespace) -> int:
    rows = []
    for link in LinkClass:
        cycles = 200 * LINKS[link].round_trip_cycles()
        bw, lat = measure_channel_bandwidth(link, cycles=cycles)
        rows.append([str(link), f"{bw:.1f} Gb/s",
                     f"{LINKS[link].bandwidth_gbps:.1f} Gb/s",
                     f"{lat:.0f} cycles"])
    print(format_table(
        ["link", "measured", "capacity", "latency"], rows,
        title="latency-insensitive channel bandwidth (Table 4)"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    names = [n.strip() for n in args.managers.split(",") if n.strip()]
    unknown = [n for n in names if n not in _MANAGERS]
    if unknown:
        print(f"unknown managers: {', '.join(unknown)} "
              f"(choose from {', '.join(_MANAGERS)})")
        return 2
    profiler = None
    if args.profile or args.profile_out:
        from repro.obs.profile import PhaseProfiler
        profiler = PhaseProfiler()
    cluster = make_cluster(num_boards=args.boards)
    if profiler is not None:
        with profiler.phase("compile"):
            apps = compile_benchmarks(cluster)
    else:
        apps = compile_benchmarks(cluster)
    if args.from_trace:
        from repro.sim.trace import load_trace
        try:
            requests = load_trace(args.from_trace)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot replay {args.from_trace}: {exc}")
            return 2
        source = f"trace {args.from_trace}"
    else:
        requests = WorkloadGenerator(seed=args.seed).generate(
            args.set_index, num_requests=args.requests,
            mean_interarrival_s=args.interarrival)
        source = f"workload set #{args.set_index}"
    health = (args.health or args.timeline_out is not None
              or args.slo_rules is not None)
    tracer = metrics = faults = None
    if args.trace_out:
        from repro.obs import Tracer
        tracer = Tracer()
    if args.metrics_out:
        from repro.obs import MetricsRegistry
        metrics = MetricsRegistry()
    if args.faults == "demo":
        from repro.faults.schedule import FaultSchedule
        if args.boards < 2:
            print("--faults demo needs at least 2 boards")
            return 2
        faults = FaultSchedule.demo(args.boards)
    if health:
        from repro.obs.slo import parse_slo
        try:
            for rule in args.slo_rules or ():
                parse_slo(rule)
        except ValueError as exc:
            print(f"bad SLO rule: {exc}")
            return 2
    rows = []
    slo_rows = []
    verdicts = []
    for name in names:
        if tracer:
            tracer.event("sim.begin", manager=name,
                         boards=args.boards, requests=len(requests))
        timeline = slo = None
        if health:
            from repro.obs import SLOEngine, TimelineAggregator
            timeline = TimelineAggregator(interval_s=args.bucket_s)
            slo = SLOEngine(args.slo_rules)
        from contextlib import nullcontext
        with (profiler.phase("simulate") if profiler is not None
              else nullcontext()):
            summary = run_experiment(_MANAGERS[name](cluster),
                                     requests, apps, faults=faults,
                                     recovery=args.recovery,
                                     tracer=tracer, metrics=metrics,
                                     timeline=timeline, slo=slo,
                                     defrag=args.defrag or None,
                                     profile=profiler,
                                     engine=args.engine).summary
        rows.append([name, f"{summary.mean_response_s:.1f}",
                     f"{summary.mean_wait_s:.1f}",
                     f"{summary.mean_concurrency:.1f}",
                     f"{summary.block_utilization:.0%}",
                     f"{summary.multi_fpga_fraction:.0%}"])
        if health:
            for entry in slo.report():
                slo_rows.append([
                    name, entry["rule"], entry["violations"],
                    entry["recovered"], f"{entry['violated_s']:.0f}",
                    "-" if entry["last_value"] is None
                    else f"{entry['last_value']:.3g}"])
            if not slo.total_violations():
                state = "no SLO violations"
            elif slo.all_recovered():
                state = "all SLO violations recovered within the run"
            else:
                state = "SLO still violated at end of run"
            verdicts.append(f"{name}: {state}")
            if args.timeline_out:
                from pathlib import Path
                out = Path(args.timeline_out)
                if len(names) > 1:
                    out = out.with_name(
                        f"{out.stem}.{name}{out.suffix}")
                buckets = timeline.dump(out)
                print(f"wrote {buckets} timeline buckets to {out}")
    print(format_table(
        ["manager", "response (s)", "wait (s)", "concurrency",
         "block util", "multi-FPGA"], rows,
        title=f"{source}: {len(requests)} "
              f"requests, {args.interarrival:.1f} s mean interarrival"))
    if health:
        print()
        print(format_table(
            ["manager", "rule", "violations", "recovered",
             "violated (s)", "last value"], slo_rows,
            title="SLO verdicts"))
        for verdict in verdicts:
            print(verdict)
    if tracer and args.trace_out:
        count = tracer.dump(args.trace_out)
        print(f"wrote {count} trace entries to {args.trace_out}")
    if metrics:
        from pathlib import Path
        out = Path(args.metrics_out)
        if out.suffix == ".prom":
            out.write_text(metrics.to_prometheus())
        else:
            out.write_text(metrics.as_json() + "\n")
        print(f"wrote metrics to {out}")
    _emit_profile(profiler, args.profile_out)
    return 0


def _emit_profile(profiler, out: "str | None") -> None:
    """Print or dump a CLI run's phase profile (no-op without one)."""
    if profiler is None:
        return
    if out:
        path = profiler.dump(out)
        print(f"wrote phase profile to {path}")
    else:
        print()
        print(profiler.format())


def _load_state(path: "str | None") -> dict:
    import json
    from pathlib import Path
    if path and Path(path).exists():
        return json.loads(Path(path).read_text())
    return {"failed_boards": [], "interrupted": []}


def _save_state(path: "str | None", state: dict) -> None:
    import json
    from pathlib import Path
    if path:
        Path(path).write_text(json.dumps(state, indent=2) + "\n")


def _health_rows(num_boards: int, failed: "set[int]") -> list:
    return [[f"board {b}", "FAILED" if b in failed else "healthy"]
            for b in range(num_boards)]


def _cmd_status(args: argparse.Namespace) -> int:
    cluster = make_cluster(num_boards=args.boards)
    print(cluster)
    print(cluster.partition.describe())
    state = _load_state(args.state)
    failed = set(state["failed_boards"])
    print()
    print(format_table(["board", "health"],
                       _health_rows(args.boards, failed),
                       title="board health"))
    if state["interrupted"]:
        print()
        print(format_table(
            ["request", "tenant", "app", "boards", "recovered"],
            [[e["request_id"], e["tenant"], e["app"],
              ",".join(str(b) for b in e["boards"]),
              "yes" if e.get("recovered") else "no"]
             for e in state["interrupted"]],
            title="interrupted deployments"))
    return 0


def _drill_controller(num_boards: int,
                      pre_failed: "set[int]"):
    """Deterministic drill fixture: a controller with a demo workload.

    Boards already failed by earlier drill invocations are failed first
    so consecutive drills compose; then one small app is deployed per
    remaining healthy board.
    """
    cluster = make_cluster(num_boards=num_boards)
    controller = SystemController(cluster)
    for board in sorted(pre_failed):
        controller.fail_board(board)
    flow = CompilationFlow(fabric=cluster.partition)
    families = sorted(BENCHMARKS)
    request_id = 0
    while controller.try_deploy(
            flow.compile(benchmark(
                families[request_id % len(families)], "S")),
            request_id, now=0.0) is not None:
        request_id += 1
        if request_id >= 2 * num_boards:
            break
    return controller


def _check_board_id(board: int, num_boards: int) -> "str | None":
    if 0 <= board < num_boards:
        return None
    return (f"unknown board id {board}: the cluster has boards "
            f"0..{num_boards - 1} (pass --boards to size it)")


def _cmd_fail_board(args: argparse.Namespace) -> int:
    from repro.faults.recovery import resolve_recovery_policy
    error = _check_board_id(args.board, args.boards)
    if error:
        print(error)
        return 2
    state = _load_state(args.state)
    failed = set(state["failed_boards"])
    if args.board in failed:
        print(f"board {args.board} is already failed")
        return 2
    controller = _drill_controller(args.boards, failed)
    victims = controller.fail_board(args.board, now=0.0)
    failed.add(args.board)
    policy = resolve_recovery_policy(args.recovery)
    print(f"board {args.board} failed: {len(victims)} deployment(s) "
          f"evicted")
    interrupted = []
    for victim in victims:
        replacement = policy.recover(controller, victim, now=0.0)
        outcome = (f"recovered on boards "
                   f"{sorted(replacement.placement.boards)}"
                   if replacement else "re-queued (progress lost)")
        print(f"  request {victim.request_id} ({victim.app.name}): "
              f"{outcome}")
        interrupted.append({
            "request_id": victim.request_id,
            "tenant": victim.tenant,
            "app": victim.app.name,
            "boards": sorted(victim.placement.boards),
            "recovered": replacement is not None,
        })
    print()
    print(format_table(["board", "health"],
                       _health_rows(args.boards, failed),
                       title="board health"))
    print()
    tail = controller.audit.entries()[-8:]
    print(format_table(
        ["event", "request", "detail"],
        [[e.event.value, e.request_id,
          " ".join(f"{k}={v}" for k, v in sorted(e.detail.items()))]
         for e in tail],
        title="audit tail"))
    state["failed_boards"] = sorted(failed)
    state["interrupted"] = state["interrupted"] + interrupted
    _save_state(args.state, state)
    return 0


def _cmd_repair_board(args: argparse.Namespace) -> int:
    error = _check_board_id(args.board, args.boards)
    if error:
        print(error)
        return 2
    state = _load_state(args.state)
    failed = set(state["failed_boards"])
    if args.board not in failed:
        print(f"board {args.board} is not failed; nothing to repair")
    failed.discard(args.board)
    controller = _drill_controller(args.boards, failed | {args.board})
    controller.repair_board(args.board, now=0.0)
    print(f"board {args.board} repaired; "
          f"healthy boards: {controller.healthy_boards()}")
    print()
    print(format_table(["board", "health"],
                       _health_rows(args.boards, failed),
                       title="board health"))
    state["failed_boards"] = sorted(failed)
    _save_state(args.state, state)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.sim.chaos import (ChaosInvariantError, run_scenario,
                                 standard_scenarios)
    scenarios = standard_scenarios()
    if args.list:
        print(format_table(
            ["scenario", "boards", "faults", "description"],
            [[s.name, s.num_boards, len(s.schedule()), s.description]
             for s in scenarios],
            title="chaos scenario matrix"))
        return 0
    if args.scenario is not None:
        chosen = [s for s in scenarios if s.name == args.scenario]
        if not chosen:
            print(f"unknown scenario {args.scenario!r} (choose from "
                  f"{', '.join(s.name for s in scenarios)})")
            return 2
        scenarios = chosen
    elif args.trace_out:
        print("--trace needs --scenario (one trace per scenario)")
        return 2
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer
        tracer = Tracer()
    from contextlib import nullcontext
    profiler = None
    if args.profile or args.profile_out:
        from repro.obs.profile import PhaseProfiler
        profiler = PhaseProfiler()
    results = []
    clusters: dict[int, tuple] = {}
    for scenario in scenarios:
        cached = clusters.get(scenario.num_boards)
        if cached is None:
            cluster = make_cluster(num_boards=scenario.num_boards)
            if profiler is not None:
                with profiler.phase("compile"):
                    cached = (cluster, compile_benchmarks(cluster))
            else:
                cached = (cluster, compile_benchmarks(cluster))
            clusters[scenario.num_boards] = cached
        cluster, apps = cached
        try:
            with (profiler.phase(f"scenario.{scenario.name}")
                  if profiler is not None else nullcontext()):
                results.append(run_scenario(
                    scenario, with_guard=not args.no_guard,
                    tracer=tracer, apps=apps, cluster=cluster))
        except ChaosInvariantError as exc:
            print(f"invariant violated: {exc}")
            return 1
    if args.format == "json":
        print(json.dumps({"guarded": not args.no_guard,
                          "scenarios": [r.as_dict() for r in results]},
                         sort_keys=True, indent=2))
    else:
        mode = ("recovery-only baseline" if args.no_guard
                else "guarded")
        print(format_table(
            ["scenario", "goodput", "interruptions", "shed",
             "quarantines", "degraded (s)", "checks"],
            [[r.scenario, f"{r.summary.goodput_fraction:.1%}",
              f"{r.summary.interruptions:g}", r.shed, r.quarantines,
              f"{r.summary.degraded_s:.0f}", r.invariant_checks]
             for r in results],
            title=f"chaos campaign ({mode})"))
        print("all invariants held")
    if tracer and args.trace_out:
        count = tracer.dump(args.trace_out)
        print(f"wrote {count} trace entries to {args.trace_out}")
    _emit_profile(profiler, args.profile_out)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import hashlib
    import json
    import time

    from repro.sim.campaign import (CampaignCache, CampaignRunner,
                                    canonical_json, extended_grid,
                                    smoke_grid, standard_grid)
    grids = {"smoke": smoke_grid, "standard": standard_grid,
             "extended": extended_grid}
    grid_kwargs = {"seed": args.seed}
    if args.requests is not None:
        grid_kwargs["num_requests"] = args.requests
    configs = grids[args.grid](**grid_kwargs)
    profiler = None
    if args.profile or args.profile_out:
        from repro.obs.profile import PhaseProfiler
        profiler = PhaseProfiler()
    cache = CampaignCache(cache_dir=args.cache_dir)
    runner = CampaignRunner(cache=cache, profile=profiler)
    t0 = time.perf_counter()
    results = runner.run_many(configs, jobs=args.jobs)
    wall = time.perf_counter() - t0
    stats = cache.stats()
    # content address of the whole grid: the hash of its members'
    # fingerprints, in input order
    grid_fp = hashlib.sha256(canonical_json(
        [r["fingerprint"] for r in results]).encode()).hexdigest()

    if args.format == "json":
        print(json.dumps({"grid": args.grid, "wall_s": wall,
                          "fingerprint": grid_fp, "cache": stats,
                          "results": results},
                         sort_keys=True, indent=2))
    else:
        rows = []
        for result in results:
            summary = result["summary"]
            rows.append([
                result["name"], result["manager"],
                f"{summary['num_requests']:g}",
                f"{summary['p95_response_s']:.1f}",
                f"{summary['goodput_fraction']:.1%}",
                f"{summary['migrations']:g}",
                f"{runner.last_walls.get(result['name'], 0.0):.3f}",
            ])
        print(format_table(
            ["scenario", "manager", "requests", "p95 resp (s)",
             "goodput", "migrations", "run wall (s)"], rows,
            title=f"campaign grid '{args.grid}' "
                  f"({len(results)} configs, jobs={args.jobs})"))
        print(f"wall {wall:.2f} s; cache: {stats['hits']} hits "
              f"({stats['disk_hits']} from disk), {stats['misses']} "
              f"misses, {stats['stores']} stored"
              + (f" at {args.cache_dir}" if args.cache_dir else ""))
        print(f"grid fingerprint {grid_fp[:12]}")

    if args.bench_out:
        from datetime import date

        from repro.analysis.bench import BenchSchemaError, append_entry
        entry = {
            "anchor": args.anchor,
            "date": date.today().isoformat(),
            "fingerprint": grid_fp,
            "metrics": {
                "cache_hits": stats["hits"],
                "cache_misses": stats["misses"],
                "configs": len(results),
                "configs_per_s": len(results) / wall if wall > 0
                else 0.0,
                "jobs": args.jobs,
                "wall_s": wall,
            },
        }
        try:
            append_entry(args.bench_out, entry)
        except BenchSchemaError as exc:
            print(f"cannot append trajectory entry: {exc}")
            return 1
        print(f"appended trajectory entry '{args.anchor}' "
              f"to {args.bench_out}")
    _emit_profile(profiler, args.profile_out)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.bench import (BenchSchemaError, append_entry,
                                      load_bench, trajectory_gate)
    if args.bench_command == "validate":
        failed = False
        for path in args.paths:
            try:
                doc = load_bench(path)
            except (OSError, BenchSchemaError) as exc:
                print(f"INVALID {path}: {exc}")
                failed = True
            else:
                print(f"ok {path}: {len(doc['entries'])} entries")
        return 1 if failed else 0
    if args.bench_command == "append":
        from datetime import date
        metrics: dict = {}
        for item in args.metrics:
            name, sep, raw = item.partition("=")
            if not sep or not name:
                print(f"bad --metric {item!r} (want NAME=VALUE)")
                return 2
            try:
                value = float(raw)
            except ValueError:
                print(f"bad --metric value {raw!r} (want a number)")
                return 2
            node = metrics
            *groups, leaf = name.split(".")
            for group in groups:
                node = node.setdefault(group, {})
                if not isinstance(node, dict):
                    print(f"--metric {name!r} nests under a leaf")
                    return 2
            node[leaf] = value
        entry = {"anchor": args.anchor,
                 "date": args.date or date.today().isoformat(),
                 "fingerprint": args.fingerprint,
                 "metrics": metrics}
        try:
            doc = append_entry(args.path, entry)
        except (OSError, BenchSchemaError) as exc:
            print(f"cannot append: {exc}")
            return 1
        print(f"appended '{args.anchor}' to {args.path} "
              f"({len(doc['entries'])} entries)")
        return 0
    # gate
    failed = False
    for path in args.paths:
        try:
            doc = load_bench(path)
        except (OSError, BenchSchemaError) as exc:
            print(f"INVALID {path}: {exc}")
            failed = True
            continue
        problems = trajectory_gate(doc, band=args.band)
        if problems:
            failed = True
            for problem in problems:
                print(f"REGRESSION {path}: {problem}")
        else:
            print(f"ok {path}: {len(doc['entries'])} entries within "
                  f"x{args.band:g} band")
    return 1 if failed else 0


def _cmd_export_db(args: argparse.Namespace) -> int:
    from repro.runtime.bitstream_db import BitstreamDB
    from repro.runtime.persistence import save_bitstream_db
    cluster = make_cluster(num_boards=1)
    db = BitstreamDB(cluster.footprint)
    for app in compile_benchmarks(cluster).values():
        db.register(app)
    save_bitstream_db(db, args.path)
    print(f"saved {len(db)} compiled applications "
          f"(footprint {cluster.footprint}) to {args.path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.trace import dump_trace
    requests = WorkloadGenerator(seed=args.seed).generate(
        args.set_index, num_requests=args.requests,
        mean_interarrival_s=args.interarrival)
    dump_trace(requests, args.path,
               metadata={"set": args.set_index, "seed": args.seed,
                         "mean_interarrival_s": args.interarrival})
    print(f"wrote {len(requests)} requests (Table 3 set "
          f"#{args.set_index}) to {args.path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.summary import write_report
    if args.trace_in:
        from repro.analysis.diff import trace_profile
        from repro.analysis.spans import (format_trace_summary,
                                          load_trace_events)
        try:
            events = load_trace_events(args.trace_in)
        except (OSError, ValueError) as exc:
            print(f"cannot summarize {args.trace_in}: {exc}")
            return 2
        if args.format == "json":
            print(json.dumps(trace_profile(events), sort_keys=True,
                             indent=2))
        else:
            print(format_trace_summary(events))
        return 0
    if args.timeline_in:
        try:
            doc = json.loads(Path(args.timeline_in).read_text())
            buckets = doc["buckets"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"cannot render {args.timeline_in}: {exc}")
            return 2
        if args.format == "json":
            print(json.dumps(doc, sort_keys=True, indent=2))
            return 0
        rows = [[f"{b['t']:.0f}", f"{b['utilization']:.0%}",
                 b["queue_depth"], f"{b['fragmentation']:.2f}",
                 b["failed_boards"], b["active_tenants"],
                 b["arrivals"], b["deploys"], b["completions"]]
                for b in buckets]
        print(format_table(
            ["t (s)", "util", "queue", "frag", "down", "tenants",
             "arrivals", "deploys", "completions"], rows,
            title=f"health timeline ({doc.get('interval_s', '?')} s "
                  f"buckets, {doc.get('capacity_blocks', '?')} blocks)"))
        return 0
    if args.cache_dir:
        cache_dir = Path(args.cache_dir)
        if not cache_dir.is_dir():
            print(f"no compile cache at {cache_dir}; run "
                  "`repro compile --all --cache-dir ...` first")
            return 2
        entries = sorted(cache_dir.glob("*.json"))
        rows = []
        total = 0
        for entry in entries:
            size = entry.stat().st_size
            total += size
            try:
                name = json.loads(entry.read_text())["spec"]
                name = f"{name['family']}-{name['size']}"
            except (ValueError, KeyError, TypeError):
                name = "?"
            rows.append([entry.stem[:12], name, f"{size:,} B"])
        if args.format == "json":
            print(json.dumps({"cache_dir": str(cache_dir),
                              "entries": len(entries),
                              "bytes": total}, sort_keys=True))
        else:
            print(format_table(
                ["fingerprint", "app", "size"], rows,
                title=f"compile cache at {cache_dir}"))
            print(f"{len(entries)} artifacts, {total:,} bytes")
        return 0
    results = Path(args.results)
    if not results.is_dir():
        print(f"no results directory at {results}; run "
              "`pytest benchmarks/ --benchmark-only` first")
        return 2
    path = write_report(results, args.output)
    if args.format == "json":
        print(json.dumps({"report": str(path)}))
    else:
        print(f"wrote {path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.diff import (diff_metrics, diff_profiles,
                                     find_regressions, format_diff,
                                     load_diff_input, trace_profile)
    try:
        base_kind, base = load_diff_input(args.baseline)
        cand_kind, cand = load_diff_input(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"cannot diff: {exc}")
        return 2
    metric_side = {"metrics"} & {base_kind, cand_kind}
    if metric_side and base_kind != cand_kind:
        print(f"cannot diff a {base_kind} against a {cand_kind}")
        return 2
    if base_kind == "metrics":
        diff = diff_metrics(base, cand)
        regressions = [f"metric changed: {k}"
                       for k in diff["changed"]]
        if args.format == "json":
            print(json.dumps(diff, sort_keys=True, indent=2))
        elif diff["identical"]:
            print("metrics are identical (zero deltas)")
        else:
            for key in diff["added"]:
                print(f"added:   {key}")
            for key in diff["removed"]:
                print(f"removed: {key}")
            for key, d in diff["changed"].items():
                print(f"changed: {key} {d['baseline']:g} -> "
                      f"{d['candidate']:g}")
    else:
        profiles = [trace_profile(side) if kind == "trace" else side
                    for kind, side in ((base_kind, base),
                                       (cand_kind, cand))]
        diff = diff_profiles(*profiles)
        regressions = find_regressions(diff,
                                       p95_tolerance=args.tolerance)
        if args.format == "json":
            print(json.dumps({**diff, "regressions": regressions},
                             sort_keys=True, indent=2))
        else:
            print(format_diff(diff, regressions))
    if args.fail_on_regression and regressions:
        return 1
    return 0


_COMMANDS = {
    "partition": _cmd_partition,
    "report": _cmd_report,
    "compile": _cmd_compile,
    "links": _cmd_links,
    "simulate": _cmd_simulate,
    "status": _cmd_status,
    "fail-board": _cmd_fail_board,
    "repair-board": _cmd_repair_board,
    "chaos": _cmd_chaos,
    "campaign": _cmd_campaign,
    "bench": _cmd_bench,
    "export-db": _cmd_export_db,
    "trace": _cmd_trace,
    "diff": _cmd_diff,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
