"""Physical FPGA fabric substrate.

This package models the hardware that ViTAL virtualizes:

- :mod:`repro.fabric.resources` -- the resource algebra (LUT/DFF/DSP/BRAM
  vectors) used throughout the stack;
- :mod:`repro.fabric.device` -- a column-based island-style FPGA
  architecture with clock regions and multi-die (SLR) packaging;
- :mod:`repro.fabric.devices` -- a catalog of concrete devices
  (XCVU37P, VU13P and a historical capacity series used by Fig. 1b);
- :mod:`repro.fabric.partition` -- the Architecture Layer's division of a
  physical FPGA into Service / Communication / User regions, including the
  identical physical blocks and the design-space exploration of Section 5.3.
"""

from repro.fabric.resources import ResourceVector
from repro.fabric.device import (
    ColumnType,
    ColumnSpec,
    ClockRegion,
    Die,
    FPGADevice,
)
from repro.fabric.devices import (
    DEVICE_CATALOG,
    CAPACITY_TIMELINE,
    make_xcvu37p,
    make_vu13p,
    device_by_name,
)
from repro.fabric.partition import (
    PhysicalBlock,
    RegionKind,
    Region,
    FabricPartition,
    PartitionConstraints,
    PartitionPlanner,
)

__all__ = [
    "ResourceVector",
    "ColumnType",
    "ColumnSpec",
    "ClockRegion",
    "Die",
    "FPGADevice",
    "DEVICE_CATALOG",
    "CAPACITY_TIMELINE",
    "make_xcvu37p",
    "make_vu13p",
    "device_by_name",
    "PhysicalBlock",
    "RegionKind",
    "Region",
    "FabricPartition",
    "PartitionConstraints",
    "PartitionPlanner",
]
