"""Resource algebra shared by every layer of the ViTAL stack.

FPGAs provide four first-class programmable resource types that the paper's
evaluation tracks (Table 2 and Table 4): look-up tables (LUT), flip-flops
(DFF), DSP slices (DSP) and block RAM capacity in megabits (BRAM).  A
:class:`ResourceVector` bundles one quantity of each and supports the
element-wise arithmetic and comparisons that allocation, partitioning and
fragmentation accounting need.

The algebra is deliberately closed: adding, scaling and subtracting vectors
always yields another vector, and ``fits_in`` gives the partial order used by
every allocator in the stack ("does demand fit in capacity?").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ResourceVector"]

# BRAM is carried in megabits, matching the units of Table 2 / Table 4.
_FIELDS = ("lut", "dff", "dsp", "bram_mb")


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """An element-wise vector of FPGA resource quantities.

    Attributes:
        lut: number of 6-input look-up tables.
        dff: number of flip-flops (registers).
        dsp: number of DSP (multiply-accumulate) slices.
        bram_mb: block-RAM capacity in megabits.
    """

    lut: float = 0.0
    dff: float = 0.0
    dsp: float = 0.0
    bram_mb: float = 0.0

    def __post_init__(self) -> None:
        for name in _FIELDS:
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return cls()

    @classmethod
    def of(cls, lut: float = 0.0, dff: float = 0.0, dsp: float = 0.0,
           bram_mb: float = 0.0) -> "ResourceVector":
        """Keyword-friendly constructor (alias of the dataclass init)."""
        return cls(lut=lut, dff=dff, dsp=dsp, bram_mb=bram_mb)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            self.lut + other.lut,
            self.dff + other.dff,
            self.dsp + other.dsp,
            self.bram_mb + other.bram_mb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            self.lut - other.lut,
            self.dff - other.dff,
            self.dsp - other.dsp,
            self.bram_mb - other.bram_mb,
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ResourceVector(
            self.lut * factor,
            self.dff * factor,
            self.dsp * factor,
            self.bram_mb * factor,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "ResourceVector":
        return self * -1

    # ------------------------------------------------------------------
    # comparisons and queries
    # ------------------------------------------------------------------
    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True when every component of ``self`` is <= that of ``capacity``.

        This is the partial order every allocator in the stack uses: a
        demand vector fits in a capacity vector only if no single resource
        type overflows.
        """
        return (self.lut <= capacity.lut
                and self.dff <= capacity.dff
                and self.dsp <= capacity.dsp
                and self.bram_mb <= capacity.bram_mb)

    def dominates(self, other: "ResourceVector") -> bool:
        """True when ``self`` is component-wise >= ``other``."""
        return other.fits_in(self)

    def is_zero(self) -> bool:
        return all(getattr(self, f) == 0 for f in _FIELDS)

    def is_nonnegative(self) -> bool:
        return all(getattr(self, f) >= 0 for f in _FIELDS)

    def clamp_nonnegative(self) -> "ResourceVector":
        """Component-wise ``max(0, x)``; used when subtractions may dip below
        zero due to modeling round-off."""
        return ResourceVector(
            max(0.0, self.lut),
            max(0.0, self.dff),
            max(0.0, self.dsp),
            max(0.0, self.bram_mb),
        )

    def max_with(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise maximum."""
        return ResourceVector(
            max(self.lut, other.lut),
            max(self.dff, other.dff),
            max(self.dsp, other.dsp),
            max(self.bram_mb, other.bram_mb),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def utilization_of(self, capacity: "ResourceVector") -> float:
        """Fraction of ``capacity`` this vector occupies, reported as the
        *maximum* per-component ratio.

        The max ratio is the quantity that determines how many copies of a
        demand fit into a capacity, which is why both the partition planner
        (Section 5.3) and the accelerator sizing (Table 2) use it.
        Components with zero capacity and zero demand are ignored; zero
        capacity with nonzero demand yields ``inf``.
        """
        worst = 0.0
        for name in _FIELDS:
            demand = getattr(self, name)
            avail = getattr(capacity, name)
            if demand == 0:
                continue
            if avail == 0:
                return math.inf
            worst = max(worst, demand / avail)
        return worst

    def blocks_needed(self, block_capacity: "ResourceVector") -> int:
        """Number of identical blocks of ``block_capacity`` required to hold
        this demand, assuming the compiler may split it freely (which
        ViTAL's partitioner does).  This is the ``#Block`` column of
        Table 2."""
        ratio = self.utilization_of(block_capacity)
        if math.isinf(ratio):
            raise ValueError(
                "demand requires a resource type the block does not provide")
        return max(1, math.ceil(ratio - 1e-9))

    def total_cost(self, weights: "ResourceVector | None" = None) -> float:
        """A scalar summary used for tie-breaking in heuristics.

        With no weights, LUTs dominate (they are the scarcest resource for
        the Table 2 accelerators); DSP and BRAM get area-equivalent weights.
        """
        if weights is None:
            weights = ResourceVector(lut=1.0, dff=0.5, dsp=50.0, bram_mb=8000.0)
        return (self.lut * weights.lut + self.dff * weights.dff
                + self.dsp * weights.dsp + self.bram_mb * weights.bram_mb)

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in _FIELDS}

    def __str__(self) -> str:  # compact, for reports
        return (f"{self.lut / 1e3:.1f}k LUT / {self.dff / 1e3:.1f}k DFF / "
                f"{self.dsp:.0f} DSP / {self.bram_mb:.2f}Mb BRAM")
