"""Concrete device catalog.

Provides the two devices the paper's evaluation touches -- the Xilinx
UltraScale+ **XCVU37P** the cluster is built from, and the **VU13P** that
Fig. 1a normalizes application footprints against -- plus a historical
capacity timeline used to reproduce Fig. 1b (FPGA capacity keeps growing).

Column mixes are calibrated so package totals land close to the vendor
datasheet values the paper's numbers derive from:

==========  ======  =========  ======  =========
device      LUTs    DFFs       DSPs    BRAM (Mb)
==========  ======  =========  ======  =========
XCVU37P     ~1.30M  ~2.60M     ~8.6k   ~78
VU13P       ~1.73M  ~3.46M     ~12.5k  ~86
==========  ======  =========  ======  =========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.device import (
    ColumnSpec,
    ColumnType,
    Die,
    FPGADevice,
    expand_pattern,
)

__all__ = [
    "make_xcvu37p",
    "make_vu13p",
    "device_by_name",
    "DEVICE_CATALOG",
    "CapacityPoint",
    "CAPACITY_TIMELINE",
]


def _interleaved_pattern(clb: int, dsp: int, bram: int,
                         io: int = 0) -> list[ColumnSpec]:
    """Build a realistic interleaved column pattern.

    DSP and BRAM columns are spread evenly through the CLB columns, the way
    commercial parts interleave hard-IP columns with logic; IO/transceiver
    columns sit at the right edge of the die.
    """
    specials: list[ColumnType] = []
    specials.extend([ColumnType.DSP] * dsp)
    specials.extend([ColumnType.BRAM] * bram)
    # round-robin the two special types so neither clumps at one end
    specials.sort(key=lambda kind: kind.value)
    n_groups = max(1, len(specials))
    base, extra = divmod(clb, n_groups)
    pattern: list[ColumnSpec] = []
    for i, kind in enumerate(specials):
        run = base + (1 if i < extra else 0)
        if run:
            pattern.append(ColumnSpec(ColumnType.CLB, run))
        pattern.append(ColumnSpec(kind, 1))
    if not specials and clb:
        pattern.append(ColumnSpec(ColumnType.CLB, clb))
    if io:
        pattern.append(ColumnSpec(ColumnType.IO, io))
    return pattern


def make_xcvu37p() -> FPGADevice:
    """The Xilinx UltraScale+ XCVU37P used in the paper's 4-FPGA cluster.

    Modeled as 3 SLR dies; each die has 240 tile rows organized as 5
    clock-region rows of 48 tiles, and 226 CLB + 12 DSP + 6 BRAM + 4 IO
    columns.  Per-die yield: 433.9k LUTs, 867.8k DFFs, 2880 DSPs, 25.9 Mb
    BRAM -- package totals of roughly 1.30M LUTs / 8.6k DSPs / 78 Mb, within
    a few percent of the datasheet figures behind Table 4.
    """
    columns = expand_pattern(_interleaved_pattern(clb=226, dsp=12, bram=6,
                                                  io=4))
    dies = [
        Die(index=i, columns=columns, tile_rows=240, clock_region_rows=5)
        for i in range(3)
    ]
    return FPGADevice(name="XCVU37P", dies=dies, year=2018)


def make_vu13p() -> FPGADevice:
    """The Xilinx VU13P that Fig. 1a normalizes application footprints to.

    Modeled as 4 SLR dies of 240 tile rows (4 clock-region rows of 60) with
    225 CLB + 13 DSP + 5 BRAM columns each: ~1.73M LUTs, ~12.5k DSPs.
    """
    columns = expand_pattern(_interleaved_pattern(clb=225, dsp=13, bram=5,
                                                  io=2))
    dies = [
        Die(index=i, columns=columns, tile_rows=240, clock_region_rows=4)
        for i in range(4)
    ]
    return FPGADevice(name="VU13P", dies=dies, year=2016)


#: Factories for the devices this reproduction instantiates.
DEVICE_CATALOG = {
    "XCVU37P": make_xcvu37p,
    "VU13P": make_vu13p,
}


def device_by_name(name: str) -> FPGADevice:
    """Instantiate a catalog device by part name (case-insensitive)."""
    try:
        factory = DEVICE_CATALOG[name.upper()]
    except KeyError:
        known = ", ".join(sorted(DEVICE_CATALOG))
        raise KeyError(f"unknown device {name!r}; catalog has: {known}")
    return factory()


@dataclass(frozen=True, slots=True)
class CapacityPoint:
    """One generation in the Fig. 1b capacity-growth series."""

    year: int
    family: str
    flagship: str
    logic_cells_k: float  # vendor "logic cells", thousands


#: Flagship-device capacity by generation (Fig. 1b).  Values follow the
#: public Xilinx datasheet logic-cell counts for the largest part of each
#: family; the figure's point is the exponential trend, which these
#: reproduce.
CAPACITY_TIMELINE: tuple[CapacityPoint, ...] = (
    CapacityPoint(1998, "Virtex", "XCV1000", 27.6),
    CapacityPoint(2001, "Virtex-II", "XC2V8000", 104.9),
    CapacityPoint(2004, "Virtex-4", "XC4VLX200", 200.4),
    CapacityPoint(2006, "Virtex-5", "XC5VLX330", 331.8),
    CapacityPoint(2009, "Virtex-6", "XC6VLX760", 758.8),
    CapacityPoint(2011, "Virtex-7", "XC7V2000T", 1954.6),
    CapacityPoint(2014, "UltraScale", "XCVU440", 5541.0),
    CapacityPoint(2016, "UltraScale+", "XCVU13P", 3780.0),
    CapacityPoint(2018, "UltraScale+ HBM", "XCVU37P", 2852.0),
)
