"""Column-based island-style FPGA device model.

State-of-the-art FPGAs (Section 2.1 of the paper) are a 2D array of
configurable logic blocks, hard IP blocks (DSP, BRAM) and a bit-wise routing
network.  Resources of one type live in full-height *columns*, which is why
ViTAL partitions the device in the *row* direction: a horizontal slice of the
array sees the same column mix regardless of its vertical position, so
identically-shaped slices provide identical resources.

Two commercial-grade complications (the paper's "key learning" in
Section 3.2) are modeled explicitly:

- **Clock regions**: the tile grid is divided into rows of clock regions;
  physical blocks must align with clock-region boundaries so clock skew is
  identical across blocks.
- **Multi-die packages (SLRs)**: a device contains several dies with an
  expensive inter-die crossing; physical blocks must not straddle a die
  boundary.

The model is intentionally tile-granular rather than wire-granular: each
column has a type and a per-tile resource yield, which is everything the
virtualization stack (partitioning, allocation, fragmentation accounting)
observes about the silicon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.fabric.resources import ResourceVector

__all__ = ["ColumnType", "ColumnSpec", "ClockRegion", "Die", "FPGADevice"]


class ColumnType(enum.Enum):
    """The resource type carried by a full-height column of tiles."""

    CLB = "clb"        # look-up tables + flip-flops
    DSP = "dsp"        # multiply-accumulate slices
    BRAM = "bram"      # block RAM
    IO = "io"          # transceivers / IO banks (not user-allocatable)

    def __str__(self) -> str:
        return self.value


#: Resources yielded by one tile (one row) of each column type.  Calibrated
#: so an XCVU37P-shaped device reproduces the capacity figures the paper
#: works from (about 1.3M LUTs, 9k DSPs, ~70 Mb BRAM per device).
TILE_YIELD: dict[ColumnType, ResourceVector] = {
    ColumnType.CLB: ResourceVector(lut=8, dff=16),
    ColumnType.DSP: ResourceVector(dsp=1),
    ColumnType.BRAM: ResourceVector(bram_mb=0.018),  # one 36 kb BRAM per 2 rows
    ColumnType.IO: ResourceVector(),
}


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """A run of adjacent columns sharing one type.

    Devices are described as a repeating pattern of such runs; expanding the
    pattern yields the per-column type list of a die.
    """

    kind: ColumnType
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("column run must contain at least one column")


@dataclass(frozen=True, slots=True)
class ClockRegion:
    """One clock region: a band of tile rows within a die.

    Physical blocks must start and end on clock-region boundaries so that
    the skew of the regional clock trees is identical for every block
    (Section 3.2 key learning).
    """

    die_index: int
    row_index: int           # index of this region within its die (bottom=0)
    first_tile_row: int      # inclusive, in die-local tile coordinates
    num_tile_rows: int

    @property
    def last_tile_row(self) -> int:
        return self.first_tile_row + self.num_tile_rows - 1


@dataclass(slots=True)
class Die:
    """One silicon die (Super Logic Region) of a multi-die package."""

    index: int
    columns: tuple[ColumnType, ...]
    tile_rows: int
    clock_region_rows: int

    def __post_init__(self) -> None:
        if self.tile_rows % self.clock_region_rows:
            raise ValueError(
                f"die {self.index}: {self.tile_rows} tile rows do not divide "
                f"into {self.clock_region_rows} clock-region rows")

    @property
    def rows_per_clock_region(self) -> int:
        return self.tile_rows // self.clock_region_rows

    def clock_regions(self) -> list[ClockRegion]:
        height = self.rows_per_clock_region
        return [
            ClockRegion(self.index, r, r * height, height)
            for r in range(self.clock_region_rows)
        ]

    def column_indices(self, kind: ColumnType) -> list[int]:
        return [i for i, k in enumerate(self.columns) if k is kind]

    def resources_of_slice(self, tile_rows: int,
                           columns: "slice | list[int] | None" = None,
                           ) -> ResourceVector:
        """Resources of a horizontal slice ``tile_rows`` tall.

        ``columns`` restricts the slice to a subset of columns (a Python
        slice over the column list or an explicit index list); by default
        the slice spans the full die width.
        """
        if columns is None:
            kinds = self.columns
        elif isinstance(columns, slice):
            kinds = self.columns[columns]
        else:
            kinds = tuple(self.columns[i] for i in columns)
        total = ResourceVector.zero()
        for kind in kinds:
            total = total + TILE_YIELD[kind] * tile_rows
        return total

    def total_resources(self) -> ResourceVector:
        return self.resources_of_slice(self.tile_rows)

    def column_signature(self, columns: "slice | list[int] | None" = None,
                         ) -> tuple[ColumnType, ...]:
        """The ordered column-type tuple of a (sub-)slice.

        Two physical blocks are relocation-compatible only if their column
        signatures are identical; this is what makes a compiled virtual
        block position-independent.
        """
        if columns is None:
            return self.columns
        if isinstance(columns, slice):
            return self.columns[columns]
        return tuple(self.columns[i] for i in columns)


def expand_pattern(pattern: list[ColumnSpec]) -> tuple[ColumnType, ...]:
    """Expand a run-length column pattern into a flat per-column type list."""
    out: list[ColumnType] = []
    for run in pattern:
        out.extend([run.kind] * run.count)
    return tuple(out)


@dataclass(slots=True)
class FPGADevice:
    """A multi-die FPGA device.

    Attributes:
        name: vendor part name (e.g. ``XCVU37P``).
        dies: the SLRs, bottom to top.
        year: introduction year, used by the Fig. 1b capacity timeline.
    """

    name: str
    dies: list[Die]
    year: int = 0
    _capacity: ResourceVector = field(init=False, repr=False,
                                      default=ResourceVector.zero())

    def __post_init__(self) -> None:
        if not self.dies:
            raise ValueError("a device needs at least one die")
        widths = {len(d.columns) for d in self.dies}
        if len(widths) != 1:
            raise ValueError("all dies of a package share the column grid")
        total = ResourceVector.zero()
        for die in self.dies:
            total = total + die.total_resources()
        self._capacity = total

    # ------------------------------------------------------------------
    @property
    def num_dies(self) -> int:
        return len(self.dies)

    @property
    def capacity(self) -> ResourceVector:
        """Total programmable resources of the package."""
        return self._capacity

    @property
    def num_columns(self) -> int:
        return len(self.dies[0].columns)

    def die(self, index: int) -> Die:
        return self.dies[index]

    def clock_regions(self) -> list[ClockRegion]:
        regions: list[ClockRegion] = []
        for die in self.dies:
            regions.extend(die.clock_regions())
        return regions

    def homogeneous_dies(self) -> bool:
        """True when every die has the same column mix and row count, the
        common case for UltraScale+ parts and a prerequisite for placing
        identical physical blocks on every die."""
        first = self.dies[0]
        return all(
            d.columns == first.columns and d.tile_rows == first.tile_rows
            and d.clock_region_rows == first.clock_region_rows
            for d in self.dies
        )

    def __str__(self) -> str:
        return (f"{self.name}: {self.num_dies} dies, "
                f"{self.num_columns} columns, capacity {self.capacity}")
