"""Architecture Layer: partitioning a physical FPGA into regions and blocks.

Section 3.2 of the paper divides each FPGA into three kinds of region:

- **Service Region** -- system circuits that virtualize peripherals
  (securely shared DRAM interface, Ethernet);
- **Communication Region** -- the FIFOs and control logic of the
  latency-insensitive inter-block interface, plus pipeline registers that
  connect to the transceivers;
- **User Region** -- an array of *identical* physical blocks, each of which
  can host any compiled virtual block.

Identicality is what makes a compiled virtual block position-independent:
a bitstream compiled for one physical block can be relocated to any other
without recompilation.  Two commercial-architecture constraints must hold
for that to be true (the paper's "key learning"):

1. blocks align with clock-region boundaries, so the clock skew inside
   every block is the same; and
2. blocks never straddle a die (SLR) boundary, so intra-block routing never
   crosses the slow inter-die network.

The module also implements the Section 5.3 design-space exploration: the
constraints shrink the search space to a handful of candidate partitions,
which are evaluated exhaustively to maximize the resources exposed to users
while keeping management fine-grained.  The communication region is sized
from an explicit buffer model, which is where the paper's buffer-removal
optimization (Section 3.5.2) shows up: channels that stay on one die have
deterministic latency, need no FIFOs, and with the optimization enabled only
die-boundary and transceiver channels are buffered.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.fabric.device import ColumnType, Die, FPGADevice, TILE_YIELD
from repro.fabric.resources import ResourceVector

__all__ = [
    "RegionKind",
    "Region",
    "PhysicalBlock",
    "BufferModel",
    "PartitionConstraints",
    "FabricPartition",
    "PartitionPlanner",
]


class RegionKind(enum.Enum):
    USER = "user"
    COMMUNICATION = "communication"
    SERVICE = "service"
    TRANSCEIVER = "transceiver"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Region:
    """A named region of the fabric with its reserved resources."""

    kind: RegionKind
    label: str
    resources: ResourceVector
    columns: int = 0  # device-spanning column strips this region occupies


@dataclass(frozen=True, slots=True)
class PhysicalBlock:
    """One relocation target in the user region.

    Attributes:
        index: block id, unique within the device (0..num_blocks-1).
        die_index: which SLR the block lives on.
        clock_region_row: first clock-region row (die-local) the block spans.
        height_clock_regions: vertical extent in clock-region rows.
        tile_rows: vertical extent in tile rows.
        capacity: programmable resources the block provides.
        footprint: opaque compatibility token; two blocks accept the same
            relocated bitstream iff their footprints are equal.
        sub_blocks: number of column-wise sub-blocks (region 1a/1b in
            Fig. 7); structural detail carried through to the compiler.
    """

    index: int
    die_index: int
    clock_region_row: int
    height_clock_regions: int
    tile_rows: int
    capacity: ResourceVector
    footprint: str
    sub_blocks: int = 2

    def compatible_with(self, other: "PhysicalBlock") -> bool:
        """Relocation compatibility (Section 3.3, step 5)."""
        return self.footprint == other.footprint


@dataclass(frozen=True, slots=True)
class BufferModel:
    """Cost model for the latency-insensitive interface buffers.

    A buffered channel must absorb the bandwidth-delay product of the
    slowest link it may traverse (the inter-FPGA ring), so its FIFOs are
    deep; the control logic (credit handling, clock-enable generation)
    costs logic.  The figures below size one *bidirectional* channel.
    """

    channel_width_bits: int = 512
    fifo_depth: int = 1024          # covers the inter-FPGA round trip
    control_luts: int = 1500
    control_dffs: int = 3000
    ports_per_block: int = 4        # LI channel endpoints per physical block
    inter_die_lanes: int = 2        # buffered lanes per die boundary
    transceiver_channels: int = 4   # one per QSFP cage

    def per_channel(self) -> ResourceVector:
        """Resources of one bidirectional buffered channel."""
        bits = self.channel_width_bits * self.fifo_depth * 2  # both dirs
        return ResourceVector(lut=self.control_luts, dff=self.control_dffs,
                              bram_mb=bits / 1e6)

    def buffered_channels(self, num_blocks: int, num_dies: int,
                          remove_intra_fpga_buffers: bool) -> int:
        """How many channels need full FIFOs.

        Without the Section 3.5.2 optimization every block port is
        buffered.  With it, intra-FPGA channels have deterministic latency
        resolved at compile time, so only the die-boundary lanes and the
        transceiver-facing channels keep buffers.
        """
        if not remove_intra_fpga_buffers:
            return num_blocks * self.ports_per_block
        boundary = (num_dies - 1) * self.inter_die_lanes
        return boundary + self.transceiver_channels

    def communication_demand(self, num_blocks: int, num_dies: int,
                             remove_intra_fpga_buffers: bool,
                             ) -> ResourceVector:
        """Total communication-region demand for one FPGA.

        Unbuffered channels still need their (cheap) control logic: the
        clock-enable generator that resumes user logic when scheduled data
        arrives.
        """
        n_buffered = self.buffered_channels(num_blocks, num_dies,
                                            remove_intra_fpga_buffers)
        n_total = num_blocks * self.ports_per_block
        demand = self.per_channel() * n_buffered
        unbuffered = n_total - n_buffered
        if unbuffered > 0:
            demand = demand + ResourceVector(
                lut=self.control_luts * 0.2,
                dff=self.control_dffs * 0.2) * unbuffered
        return demand


@dataclass(frozen=True, slots=True)
class PartitionConstraints:
    """Knobs and limits for the partition planner."""

    block_height_choices: tuple[int, ...] = (1, 2)  # clock-region rows
    sub_block_choices: tuple[int, ...] = (2,)
    max_reserved_fraction: float = 0.10   # Section 5.3 target
    min_blocks_per_device: int = 8        # keep management fine-grained
    remove_intra_fpga_buffers: bool = True
    #: Section 3.5.2's further optimization: "circuits in these regions
    #: can be implemented by dedicated hard IP blocks to further reduce
    #: the amount of system reserved resource".  When True, only glue
    #: logic stays in fabric; the bulk of the buffers/control hardens.
    hardened_system_regions: bool = False
    hardening_residual: float = 0.15      # fabric share left after hardening
    # fixed system overheads, per device
    service_luts: int = 9000              # shared-DRAM MMU + Ethernet MAC
    service_bram_mb: float = 1.0          # translation tables
    pipeline_luts: int = 2000             # region-6 transceiver pipelining


@dataclass(slots=True)
class FabricPartition:
    """The result of partitioning one device: regions plus physical blocks."""

    device: FPGADevice
    blocks: list[PhysicalBlock]
    regions: list[Region]
    user_columns: dict[ColumnType, int]
    reserved_columns: dict[ColumnType, int]
    buffer_model: BufferModel
    remove_intra_fpga_buffers: bool

    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def block_capacity(self) -> ResourceVector:
        """Capacity of one physical block (all are identical)."""
        return self.blocks[0].capacity

    @property
    def blocks_per_die(self) -> int:
        return self.num_blocks // self.device.num_dies

    def reserved_resources(self) -> ResourceVector:
        total = ResourceVector.zero()
        for region in self.regions:
            if region.kind is not RegionKind.USER:
                total = total + region.resources
        return total

    def user_resources(self) -> ResourceVector:
        total = ResourceVector.zero()
        for block in self.blocks:
            total = total + block.capacity
        return total

    def reserved_fraction(self) -> float:
        """Share of the device's weighted area held by system regions."""
        return (self.reserved_resources().total_cost()
                / self.device.capacity.total_cost())

    def user_fraction(self) -> float:
        return (self.user_resources().total_cost()
                / self.device.capacity.total_cost())

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the Architecture Layer invariants; raise on violation."""
        if not self.blocks:
            raise ValueError("partition produced no physical blocks")
        footprints = {b.footprint for b in self.blocks}
        if len(footprints) != 1:
            raise ValueError(f"physical blocks not identical: {footprints}")
        capacities = {b.capacity for b in self.blocks}
        if len(capacities) != 1:
            raise ValueError("physical blocks differ in capacity")
        for block in self.blocks:
            die = self.device.die(block.die_index)
            last_row = block.clock_region_row + block.height_clock_regions
            if last_row > die.clock_region_rows:
                raise ValueError(
                    f"block {block.index} crosses the top of die "
                    f"{block.die_index}")
            if block.clock_region_row % block.height_clock_regions:
                raise ValueError(
                    f"block {block.index} not aligned to clock regions")
        # blocks must tile without overlap inside each die
        seen: set[tuple[int, int]] = set()
        for block in self.blocks:
            for r in range(block.clock_region_row,
                           block.clock_region_row
                           + block.height_clock_regions):
                key = (block.die_index, r)
                if key in seen:
                    raise ValueError(f"blocks overlap at die/CR {key}")
                seen.add(key)

    def clone_for(self, device: FPGADevice) -> "FabricPartition":
        """The same partition bound to another (identical) device.

        Clusters are built from identical boards; one planned partition is
        cloned across them so every board exposes the same footprint.
        """
        if (device.num_dies != self.device.num_dies
                or device.dies[0].columns != self.device.dies[0].columns
                or device.dies[0].tile_rows
                != self.device.dies[0].tile_rows):
            raise ValueError(
                f"cannot clone a {self.device.name} partition onto "
                f"{device.name}: geometries differ")
        return FabricPartition(
            device=device,
            blocks=list(self.blocks),
            regions=list(self.regions),
            user_columns=dict(self.user_columns),
            reserved_columns=dict(self.reserved_columns),
            buffer_model=self.buffer_model,
            remove_intra_fpga_buffers=self.remove_intra_fpga_buffers,
        )

    def describe(self) -> str:
        """Human-readable summary resembling the Fig. 7 caption."""
        lines = [f"Partition of {self.device.name}:"]
        lines.append(
            f"  user region: {self.num_blocks} identical physical blocks "
            f"({self.blocks_per_die} per die), each {self.block_capacity}")
        for region in self.regions:
            if region.kind is RegionKind.USER:
                continue
            lines.append(f"  {region.kind} ({region.label}): "
                         f"{region.resources}")
        lines.append(f"  system reserved: {self.reserved_fraction():.1%} "
                     f"of device")
        return "\n".join(lines)


class PartitionPlanner:
    """Section 5.3's exhaustive design-space exploration.

    The clock-region and die-boundary constraints leave only a handful of
    legal block geometries; for each the planner sizes the communication and
    service regions from the buffer model, derives per-block capacity from
    the remaining columns, and scores the candidate.  The best feasible
    candidate maximizes the user fraction, breaking ties toward more blocks
    (finer-grained management).
    """

    def __init__(self, device: FPGADevice,
                 constraints: PartitionConstraints | None = None,
                 buffer_model: BufferModel | None = None) -> None:
        if not device.homogeneous_dies():
            raise ValueError(
                "planner requires dies with identical column grids")
        self.device = device
        self.constraints = constraints or PartitionConstraints()
        self.buffer_model = buffer_model or BufferModel()

    # ------------------------------------------------------------------
    def candidates(self) -> list[FabricPartition]:
        """Enumerate every legal candidate partition (the <10 of §5.3)."""
        out = []
        for height in self.constraints.block_height_choices:
            for sub_blocks in self.constraints.sub_block_choices:
                candidate = self._build(height, sub_blocks)
                if candidate is not None:
                    out.append(candidate)
        return out

    def plan(self) -> FabricPartition:
        """Run the DSE and return the optimal feasible partition."""
        feasible = []
        for cand in self.candidates():
            if cand.reserved_fraction() > self.constraints.max_reserved_fraction:
                continue
            if cand.num_blocks < self.constraints.min_blocks_per_device:
                continue
            feasible.append(cand)
        if not feasible:
            raise RuntimeError(
                "no feasible partition; relax PartitionConstraints")
        feasible.sort(key=lambda p: (p.user_fraction(), p.num_blocks),
                      reverse=True)
        best = feasible[0]
        best.validate()
        return best

    # ------------------------------------------------------------------
    def _build(self, height_cr: int, sub_blocks: int,
               ) -> FabricPartition | None:
        device = self.device
        die0: Die = device.die(0)
        if height_cr > die0.clock_region_rows:
            return None
        blocks_per_die = die0.clock_region_rows // height_cr
        num_blocks = blocks_per_die * device.num_dies
        if num_blocks == 0:
            return None

        # --- size the system regions ----------------------------------
        cons = self.constraints
        comm = self.buffer_model.communication_demand(
            num_blocks, device.num_dies, cons.remove_intra_fpga_buffers)
        service = ResourceVector(lut=cons.service_luts,
                                 dff=cons.service_luts * 2,
                                 bram_mb=cons.service_bram_mb)
        pipeline = ResourceVector(lut=cons.pipeline_luts,
                                  dff=cons.pipeline_luts * 2)
        reserved_demand = comm + service + pipeline
        if cons.hardened_system_regions:
            # dedicated hard IP absorbs the system circuits; only the
            # residual glue logic still occupies fabric columns
            reserved_demand = reserved_demand * cons.hardening_residual

        # --- convert demand into whole reserved column strips ---------
        rows_per_strip = die0.tile_rows * device.num_dies
        clb_strip = TILE_YIELD[ColumnType.CLB] * rows_per_strip
        bram_strip = TILE_YIELD[ColumnType.BRAM] * rows_per_strip
        need_bram_cols = math.ceil(reserved_demand.bram_mb
                                   / bram_strip.bram_mb)
        need_clb_cols = math.ceil(max(reserved_demand.lut / clb_strip.lut,
                                      reserved_demand.dff / clb_strip.dff))
        total_clb = len(die0.column_indices(ColumnType.CLB))
        total_bram = len(die0.column_indices(ColumnType.BRAM))
        total_dsp = len(die0.column_indices(ColumnType.DSP))
        if need_bram_cols >= total_bram or need_clb_cols >= total_clb:
            return None  # infeasible: system would consume the device

        user_cols = {
            ColumnType.CLB: total_clb - need_clb_cols,
            ColumnType.BRAM: total_bram - need_bram_cols,
            ColumnType.DSP: total_dsp,
        }
        reserved_cols = {
            ColumnType.CLB: need_clb_cols,
            ColumnType.BRAM: need_bram_cols,
            ColumnType.DSP: 0,
        }

        # --- per-block capacity ----------------------------------------
        tile_rows = height_cr * die0.rows_per_clock_region
        capacity = ResourceVector.zero()
        for kind, count in user_cols.items():
            capacity = capacity + TILE_YIELD[kind] * (tile_rows * count)
        footprint = (f"{device.name}/h{height_cr}cr/"
                     f"clb{user_cols[ColumnType.CLB]}"
                     f"dsp{user_cols[ColumnType.DSP]}"
                     f"bram{user_cols[ColumnType.BRAM]}")

        blocks = []
        index = 0
        for die in device.dies:
            for row in range(blocks_per_die):
                blocks.append(PhysicalBlock(
                    index=index,
                    die_index=die.index,
                    clock_region_row=row * height_cr,
                    height_clock_regions=height_cr,
                    tile_rows=tile_rows,
                    capacity=capacity,
                    footprint=footprint,
                    sub_blocks=sub_blocks,
                ))
                index += 1

        # --- regions ----------------------------------------------------
        strip_res = (clb_strip * need_clb_cols
                     + bram_strip * need_bram_cols)
        # attribute the strips to the three system regions proportionally
        regions = [
            Region(RegionKind.USER, "region 1: physical blocks",
                   capacity * num_blocks, columns=sum(user_cols.values())),
            Region(RegionKind.COMMUNICATION,
                   "regions 2/3/6: latency-insensitive interface",
                   (strip_res - service - pipeline).clamp_nonnegative(),
                   columns=max(0, need_clb_cols - 1) + need_bram_cols),
            Region(RegionKind.SERVICE, "region 4: peripheral virtualization",
                   service, columns=1),
            Region(RegionKind.TRANSCEIVER,
                   "region 5: QSFP transceivers", pipeline, columns=0),
        ]

        return FabricPartition(
            device=device,
            blocks=blocks,
            regions=regions,
            user_columns=user_cols,
            reserved_columns=reserved_cols,
            buffer_model=self.buffer_model,
            remove_intra_fpga_buffers=cons.remove_intra_fpga_buffers,
        )
