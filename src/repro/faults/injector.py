"""Applies fault events to a cluster manager and its network.

The injector is manager-agnostic on purpose: the availability benchmark
subjects ViTAL *and* the baselines to one schedule, so the comparison is
apples-to-apples.  A manager advertises fault support structurally --
``fail_board``/``repair_board`` for fail-stop events,
``inject_reconfig_fault`` for transient ICAP faults, a ``cluster``
attribute for ring-link events.  Events a manager cannot express are
counted in :attr:`FaultInjector.unsupported` rather than raised: a
baseline without an ICAP queue model simply doesn't feel ICAP faults,
exactly as it doesn't feel them in its own service model.

The injector also tracks what it changed on the *shared* substrate (ring
segment scaling) so :meth:`reset` can heal the cluster after a run --
several experiments share one cluster object, and a fault schedule must
never leak into the next run.
"""

from __future__ import annotations

from repro.faults.schedule import (
    BoardDown,
    BoardUp,
    FaultEvent,
    IcapDegraded,
    IcapRestored,
    LinkDegraded,
    LinkFlaky,
    LinkRestored,
    LinkStable,
    ReconfigTransientFault,
)
from repro.runtime.types import Deployment

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives one manager (and its cluster) with fault events."""

    def __init__(self, manager) -> None:
        self.manager = manager
        self.network = getattr(
            getattr(manager, "cluster", None), "network", None)
        #: events the manager could not express, by event type name
        self.unsupported: dict[str, int] = {}
        self._degraded_segments: set[int] = set()
        self._failed_boards: set[int] = set()
        self._flaky_segments: set[int] = set()
        self._degraded_icap: set[int] = set()

    # ------------------------------------------------------------------
    def apply(self, event: FaultEvent,
              now: float | None = None) -> list[Deployment]:
        """Apply one event; returns the deployments it evicted (only
        :class:`BoardDown` evicts anything)."""
        if not isinstance(event, FaultEvent):
            raise TypeError(f"unknown fault event {event!r}")
        now = event.time_s if now is None else now
        if isinstance(event, BoardDown):
            fail = getattr(self.manager, "fail_board", None)
            if fail is None:
                return self._skip(event)
            self._failed_boards.add(event.board)
            return list(fail(event.board, now))
        if isinstance(event, BoardUp):
            repair = getattr(self.manager, "repair_board", None)
            if repair is None:
                return self._skip(event)
            self._failed_boards.discard(event.board)
            repair(event.board, now)
            return []
        if isinstance(event, LinkDegraded):
            if self.network is None:
                return self._skip(event)
            self.network.degrade_segment(event.segment,
                                         event.capacity_fraction)
            self._degraded_segments.add(event.segment)
            return []
        if isinstance(event, LinkRestored):
            if self.network is None:
                return self._skip(event)
            self.network.restore_segment(event.segment)
            self._degraded_segments.discard(event.segment)
            return []
        if isinstance(event, LinkFlaky):
            if self.network is None or not hasattr(
                    self.network, "set_segment_flakiness"):
                return self._skip(event)
            self.network.set_segment_flakiness(event.segment,
                                               event.drop_probability)
            self._flaky_segments.add(event.segment)
            return []
        if isinstance(event, LinkStable):
            if self.network is None or not hasattr(
                    self.network, "clear_segment_flakiness"):
                return self._skip(event)
            self.network.clear_segment_flakiness(event.segment)
            self._flaky_segments.discard(event.segment)
            return []
        if isinstance(event, IcapDegraded):
            degrade = getattr(self.manager, "degrade_icap", None)
            if degrade is None:
                return self._skip(event)
            degrade(event.board, event.latency_multiplier)
            self._degraded_icap.add(event.board)
            return []
        if isinstance(event, IcapRestored):
            restore = getattr(self.manager, "restore_icap", None)
            if restore is None:
                return self._skip(event)
            restore(event.board)
            self._degraded_icap.discard(event.board)
            return []
        if isinstance(event, ReconfigTransientFault):
            arm = getattr(self.manager, "inject_reconfig_fault", None)
            if arm is None:
                return self._skip(event)
            arm(event.board, event.attempts)
            return []
        raise TypeError(f"unknown fault event {event!r}")

    def substrate_degraded(self) -> bool:
        """True while any fault this injector applied is still live on
        the substrate (failed boards, degraded/flaky segments, slow
        ICAPs) -- the sim's degraded-time accounting samples this."""
        return bool(self._failed_boards or self._degraded_segments
                    or self._flaky_segments or self._degraded_icap)

    def reset(self, now: float = 0.0) -> None:
        """Heal everything this injector broke (end-of-run cleanup).

        Restores every segment it degraded on the shared ring and
        repairs every board it failed, so the cluster object can be
        reused by the next experiment fault-free.
        """
        if self.network is not None:
            for segment in sorted(self._degraded_segments):
                self.network.restore_segment(segment)
            for segment in sorted(self._flaky_segments):
                self.network.clear_segment_flakiness(segment)
        self._degraded_segments.clear()
        self._flaky_segments.clear()
        restore_icap = getattr(self.manager, "restore_icap", None)
        if restore_icap is not None:
            for board in sorted(self._degraded_icap):
                restore_icap(board)
        self._degraded_icap.clear()
        repair = getattr(self.manager, "repair_board", None)
        if repair is not None:
            for board in sorted(self._failed_boards):
                repair(board, now)
        self._failed_boards.clear()

    # ------------------------------------------------------------------
    def _skip(self, event: FaultEvent) -> list[Deployment]:
        name = type(event).__name__
        self.unsupported[name] = self.unsupported.get(name, 0) + 1
        return []
