"""Recovery policies: what to do with the deployments a failure evicts.

Two strategies bracket the design space the availability benchmark
compares:

- :class:`FailRequeuePolicy` -- the baseline cloud answer: the evicted
  request loses all progress and re-enters the admission queue like a
  fresh arrival.  Always works, wastes every service-second the victim
  had accumulated.
- :class:`MigrateOnFailurePolicy` -- the answer ViTAL's homogeneous
  abstraction enables: immediately re-place the evicted deployment's
  images on the surviving blocks (checkpoint-style, progress preserved),
  paying only the re-placement's reconfiguration.  Falls back to
  re-queueing when the surviving capacity cannot hold the application --
  graceful degradation, never a crash.

A policy returns the *replacement deployment* on successful in-place
recovery, or ``None`` to signal "requeue" -- the simulator owns the
queue, so the fallback lives there.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.runtime.types import Deployment

__all__ = [
    "RecoveryPolicy",
    "FailRequeuePolicy",
    "MigrateOnFailurePolicy",
    "resolve_recovery_policy",
]


@runtime_checkable
class RecoveryPolicy(Protocol):
    """Strategy interface over evicted deployments."""

    name: str

    def recover(self, manager, deployment: Deployment,
                now: float) -> Deployment | None:
        """Re-place ``deployment`` right now, or return ``None`` to let
        the simulator re-queue the request (progress lost)."""
        ...


class FailRequeuePolicy:
    """Never migrate: evicted requests restart from the queue."""

    name = "fail-requeue"

    def recover(self, manager, deployment: Deployment,
                now: float) -> Deployment | None:
        return None


class MigrateOnFailurePolicy:
    """Re-place evicted deployments on surviving blocks immediately.

    Two paths, in preference order:

    - the deployment is *still live* on the manager (proactive recovery
      ahead of an announced failure, e.g. a drill draining a board):
      use the manager's first-class ``migrate`` operation -- the state
      checkpoint moves with it and progress survives by construction;
    - the deployment was already evicted (the fail-stop wiped its
      board): use the manager's ``redeploy_evicted`` relocation path
      (ViTAL's controllers have one; per-device baselines cannot
      relocate a bitstream compiled for one board onto another without
      recompiling, so they fall back to re-queueing -- which is exactly
      the comparison the availability benchmark draws).
    """

    name = "migrate-on-failure"

    def recover(self, manager, deployment: Deployment,
                now: float) -> Deployment | None:
        migrate = getattr(manager, "migrate", None)
        live = getattr(manager, "deployments", None)
        if (migrate is not None and live is not None
                and deployment.request_id in live):
            pause = migrate(deployment.request_id, now=now,
                            reason="proactive-recovery")
            if pause is not None:
                return live[deployment.request_id]
            return None
        redeploy = getattr(manager, "redeploy_evicted", None)
        if redeploy is None:
            return None
        return redeploy(deployment, now)


def resolve_recovery_policy(
        policy: "RecoveryPolicy | str | None") -> RecoveryPolicy:
    """Accept a policy object, a name, or ``None`` (the default)."""
    if policy is None:
        return FailRequeuePolicy()
    if isinstance(policy, str):
        by_name = {
            FailRequeuePolicy.name: FailRequeuePolicy,
            "requeue": FailRequeuePolicy,
            MigrateOnFailurePolicy.name: MigrateOnFailurePolicy,
            "migrate": MigrateOnFailurePolicy,
        }
        if policy not in by_name:
            raise ValueError(
                f"unknown recovery policy {policy!r}; choose from "
                f"{sorted(by_name)}")
        return by_name[policy]()
    return policy
