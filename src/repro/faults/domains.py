"""Correlated failure domains and gray-fault schedule generators.

The per-class renewal generator of :mod:`repro.faults.schedule` models
*independent* board failures -- the classic fail-stop assumption.  Real
clouds break differently: boards share racks (one top-of-rack switch or
PDU takes all of them down at once), racks share power zones (a zone
brown-out cascades across racks), and the ring is built from physical
segments that degrade *gray* -- slow ICAP ports and flaky optics that
still "work" while quietly wrecking tail latency.

:class:`FailureDomainMap` names those groupings once; the generators in
this module draw deterministic schedules against them:

- :func:`correlated_outages` -- whole-rack fail-stops (every board of
  the rack goes down at the same instant) with optional cascades into
  power-zone siblings, each governed by a per-domain correlation factor;
- :func:`gray_faults` -- degraded-ICAP windows on boards and flaky
  windows on ring-segment groups.

Everything is a pure function of ``(seed, horizon, domain map, rates)``:
domains are iterated in sorted order and all draws come from one
``random.Random(seed)`` stream, so two runs replay bit-identically.  An
empty domain map yields an empty schedule -- the fault machinery stays
entirely dormant, bit-identical to a fault-free run.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.faults.schedule import (
    BoardDown,
    BoardUp,
    FaultEvent,
    FaultSchedule,
    IcapDegraded,
    IcapRestored,
    LinkFlaky,
    LinkStable,
)

__all__ = ["FailureDomainMap", "correlated_outages", "gray_faults"]


class FailureDomainMap:
    """Groups boards into racks and racks into power zones, and ring
    segments into physical segment groups.

    The map is pure metadata -- it never touches the cluster -- and is
    validated against a board count before a schedule built from it is
    injected.  An empty map is falsy and generates empty schedules.
    """

    def __init__(self,
                 racks: "Mapping[str, Iterable[int]] | None" = None,
                 power_zones: "Mapping[str, Iterable[str]] | None" = None,
                 ring_segments: "Mapping[str, Iterable[int]] | None" = None,
                 ) -> None:
        self._racks: dict[str, tuple[int, ...]] = {
            name: tuple(sorted(set(boards)))
            for name, boards in sorted((racks or {}).items())}
        self._zones: dict[str, tuple[str, ...]] = {
            name: tuple(sorted(set(members)))
            for name, members in sorted((power_zones or {}).items())}
        self._ring_segments: dict[str, tuple[int, ...]] = {
            name: tuple(sorted(set(segments)))
            for name, segments in sorted((ring_segments or {}).items())}
        self._rack_of: dict[int, str] = {}
        for rack, boards in self._racks.items():
            for board in boards:
                if board < 0:
                    raise ValueError(
                        f"rack {rack!r} names negative board {board}")
                if board in self._rack_of:
                    raise ValueError(
                        f"board {board} belongs to both rack "
                        f"{self._rack_of[board]!r} and {rack!r}")
                self._rack_of[board] = rack
        self._zone_of: dict[str, str] = {}
        for zone, members in self._zones.items():
            for rack in members:
                if rack not in self._racks:
                    raise ValueError(
                        f"power zone {zone!r} names unknown rack "
                        f"{rack!r}")
                if rack in self._zone_of:
                    raise ValueError(
                        f"rack {rack!r} belongs to both power zone "
                        f"{self._zone_of[rack]!r} and {zone!r}")
                self._zone_of[rack] = zone

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FailureDomainMap":
        return cls()

    @classmethod
    def grid(cls, num_boards: int, boards_per_rack: int = 4,
             racks_per_zone: int = 2) -> "FailureDomainMap":
        """The canonical layout: consecutive boards share a rack,
        consecutive racks share a power zone, and each rack's boards
        define one ring-segment group (segment ``i`` joins board ``i``
        and ``i+1``, so a rack's optics are the segments between its
        own boards plus the uplink to the next rack)."""
        if num_boards < 1:
            raise ValueError("need at least one board")
        if boards_per_rack < 1 or racks_per_zone < 1:
            raise ValueError("rack and zone sizes must be positive")
        racks: dict[str, list[int]] = {}
        ring: dict[str, list[int]] = {}
        for board in range(num_boards):
            rack = f"rack{board // boards_per_rack}"
            racks.setdefault(rack, []).append(board)
            ring.setdefault(rack, []).append(board)
        zones: dict[str, list[str]] = {}
        for index, rack in enumerate(sorted(racks)):
            zones.setdefault(
                f"zone{index // racks_per_zone}", []).append(rack)
        return cls(racks=racks, power_zones=zones, ring_segments=ring)

    # ------------------------------------------------------------------
    @property
    def racks(self) -> dict[str, tuple[int, ...]]:
        return dict(self._racks)

    @property
    def power_zones(self) -> dict[str, tuple[str, ...]]:
        return dict(self._zones)

    @property
    def ring_segments(self) -> dict[str, tuple[int, ...]]:
        return dict(self._ring_segments)

    def rack_of(self, board: int) -> str | None:
        return self._rack_of.get(board)

    def zone_of(self, rack: str) -> str | None:
        return self._zone_of.get(rack)

    def boards_in(self, rack: str) -> tuple[int, ...]:
        if rack not in self._racks:
            raise KeyError(f"no rack {rack!r} in this domain map")
        return self._racks[rack]

    def correlated_racks(self, rack: str) -> tuple[str, ...]:
        """Racks sharing ``rack``'s power zone (cascade candidates)."""
        zone = self._zone_of.get(rack)
        if zone is None:
            return ()
        return tuple(r for r in self._zones[zone] if r != rack)

    def boards(self) -> tuple[int, ...]:
        return tuple(sorted(self._rack_of))

    def validate_for(self, num_boards: int) -> None:
        """Reject maps addressing boards/segments outside the cluster."""
        for board in self._rack_of:
            if not 0 <= board < num_boards:
                raise ValueError(
                    f"domain map names board {board}, cluster has "
                    f"{num_boards}")
        for group, segments in self._ring_segments.items():
            for segment in segments:
                if not 0 <= segment < num_boards:
                    raise ValueError(
                        f"segment group {group!r} names segment "
                        f"{segment}, ring has {num_boards}")

    def __bool__(self) -> bool:
        return bool(self._racks or self._ring_segments)

    def __repr__(self) -> str:
        return (f"FailureDomainMap({len(self._racks)} racks, "
                f"{len(self._zones)} zones, "
                f"{len(self._ring_segments)} segment groups)")


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def correlated_outages(domains: FailureDomainMap, seed: int,
                       horizon_s: float,
                       rack_mtbf_s: float,
                       rack_mttr_s: float = 60.0,
                       cascade_probability: float = 0.0,
                       cascade_delay_s: float = 5.0,
                       repair_stagger_s: float = 0.0,
                       ) -> FaultSchedule:
    """Whole-rack outages with optional power-zone cascades.

    Each rack runs its own renewal process (exponential up-time draws
    pick the outage instant, exponential repair draws the heal instant,
    clamped inside the horizon).  An outage takes *every* board of the
    rack down at the same instant; repairs optionally stagger
    ``repair_stagger_s`` apart per board (technicians re-rack one board
    at a time).  With ``cascade_probability > 0`` each outage spreads to
    each rack sharing the power zone with that probability, delayed by
    ``cascade_delay_s`` -- the per-domain correlation factor.  Cascaded
    outages do not re-cascade (one hop bounds the blast radius).
    """
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    if rack_mtbf_s <= 0 or rack_mttr_s <= 0:
        raise ValueError("rack MTBF/MTTR must be positive")
    if not 0.0 <= cascade_probability <= 1.0:
        raise ValueError("cascade probability must be in [0, 1]")
    if cascade_delay_s < 0 or repair_stagger_s < 0:
        raise ValueError("delays must be non-negative")
    rng = random.Random(seed)
    events: list[FaultEvent] = []

    def rack_outage(rack: str, down_at: float) -> float:
        """Emit one whole-rack outage; returns the last repair time."""
        down_for = rng.expovariate(1.0 / rack_mttr_s)
        last_up = down_at
        for index, board in enumerate(domains.boards_in(rack)):
            up_at = min(down_at + down_for
                        + index * repair_stagger_s, horizon_s)
            events.append(BoardDown(time_s=down_at, board=board))
            events.append(BoardUp(time_s=up_at, board=board))
            last_up = max(last_up, up_at)
        return last_up

    for rack in sorted(domains.racks):
        t = rng.expovariate(1.0 / rack_mtbf_s)
        while t < horizon_s:
            healed = rack_outage(rack, t)
            if cascade_probability > 0.0:
                for sibling in domains.correlated_racks(rack):
                    if rng.random() < cascade_probability:
                        spread_at = t + cascade_delay_s
                        if spread_at < horizon_s:
                            rack_outage(sibling, spread_at)
            t = healed + rng.expovariate(1.0 / rack_mtbf_s)
    return FaultSchedule(events)


def gray_faults(domains: FailureDomainMap, seed: int,
                horizon_s: float,
                icap_mtbf_s: float | None = None,
                icap_mttr_s: float = 120.0,
                icap_latency_multiplier: float = 4.0,
                flaky_mtbf_s: float | None = None,
                flaky_mttr_s: float = 60.0,
                drop_probability: float = 0.1,
                ) -> FaultSchedule:
    """Gray-failure windows: degraded ICAP ports and flaky segments.

    Boards in the domain map draw degraded-ICAP windows (programming
    slows by ``icap_latency_multiplier``); ring-segment groups draw
    flaky windows (every segment of the group drops a
    ``drop_probability`` fraction of traffic at once -- shared optics
    flap together).  Each fault class with a non-``None`` MTBF gets its
    own renewal process; windows are clamped inside the horizon so the
    cluster always ends healthy.
    """
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    for name, value in (("icap_mtbf_s", icap_mtbf_s),
                        ("icap_mttr_s", icap_mttr_s),
                        ("flaky_mtbf_s", flaky_mtbf_s),
                        ("flaky_mttr_s", flaky_mttr_s)):
        if value is not None and value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
    rng = random.Random(seed)
    events: list[FaultEvent] = []

    if icap_mtbf_s is not None:
        for board in domains.boards():
            t = rng.expovariate(1.0 / icap_mtbf_s)
            while t < horizon_s:
                up_at = min(t + rng.expovariate(1.0 / icap_mttr_s),
                            horizon_s)
                events.append(IcapDegraded(
                    time_s=t, board=board,
                    latency_multiplier=icap_latency_multiplier))
                events.append(IcapRestored(time_s=up_at, board=board))
                t = up_at + rng.expovariate(1.0 / icap_mtbf_s)

    if flaky_mtbf_s is not None:
        for group in sorted(domains.ring_segments):
            segments = domains.ring_segments[group]
            t = rng.expovariate(1.0 / flaky_mtbf_s)
            while t < horizon_s:
                up_at = min(t + rng.expovariate(1.0 / flaky_mttr_s),
                            horizon_s)
                for segment in segments:
                    events.append(LinkFlaky(
                        time_s=t, segment=segment,
                        drop_probability=drop_probability))
                    events.append(LinkStable(time_s=up_at,
                                             segment=segment))
                t = up_at + rng.expovariate(1.0 / flaky_mtbf_s)

    return FaultSchedule(events)
