"""Fault injection and failure recovery for the System Layer.

The paper's evaluation (like most virtualization papers) assumes the
cluster never breaks; cloud-oriented follow-on work (Funky, SYNERGY)
makes failure handling a first-class requirement.  This package adds the
missing production scenario: a deterministic, seeded fault model
(:mod:`repro.faults.schedule`), an injector that drives any cluster
manager with the same schedule (:mod:`repro.faults.injector`), and
recovery policies that exploit ViTAL's homogeneous virtual-block
abstraction -- any image relocates to any free block without recompiling,
so recovery-by-relocation is cheap (:mod:`repro.faults.recovery`).

- :mod:`repro.faults.schedule` -- typed fault events and schedules;
- :mod:`repro.faults.domains` -- failure domains, correlated outages,
  and gray-fault generators;
- :mod:`repro.faults.injector` -- applies events to a manager/cluster;
- :mod:`repro.faults.recovery` -- fail-requeue and migrate-on-failure.
"""

from repro.faults.schedule import (
    BoardDown,
    BoardUp,
    FaultEvent,
    FaultSchedule,
    IcapDegraded,
    IcapRestored,
    LinkDegraded,
    LinkFlaky,
    LinkRestored,
    LinkStable,
    ReconfigTransientFault,
)
from repro.faults.domains import (
    FailureDomainMap,
    correlated_outages,
    gray_faults,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import (
    FailRequeuePolicy,
    MigrateOnFailurePolicy,
    RecoveryPolicy,
    resolve_recovery_policy,
)

__all__ = [
    "FaultEvent",
    "BoardDown",
    "BoardUp",
    "LinkDegraded",
    "LinkRestored",
    "LinkFlaky",
    "LinkStable",
    "IcapDegraded",
    "IcapRestored",
    "ReconfigTransientFault",
    "FaultSchedule",
    "FailureDomainMap",
    "correlated_outages",
    "gray_faults",
    "FaultInjector",
    "RecoveryPolicy",
    "FailRequeuePolicy",
    "MigrateOnFailurePolicy",
    "resolve_recovery_policy",
]
