"""Deterministic fault schedules.

A :class:`FaultSchedule` is an explicit, time-ordered list of typed fault
events -- no wall-clock anywhere, so two runs of the same schedule against
the same workload are bit-identical.  Schedules are built either from
explicit event lists (targeted scenarios, regression tests) or from the
seeded :meth:`FaultSchedule.exponential` generator, which draws
exponentially distributed inter-fault times (the classic MTBF/MTTR
fail-stop model) from a private :class:`random.Random` stream.

Event semantics:

- :class:`BoardDown` / :class:`BoardUp` -- fail-stop crash of one board:
  every physical block and the board's DRAM contents are lost at once;
  the board rejoins empty after repair.
- :class:`LinkDegraded` / :class:`LinkRestored` -- one ring segment loses
  a fraction of its 100 Gb/s (optics degrade, lanes drop); co-resident
  flows see proportionally more contention.
- :class:`ReconfigTransientFault` -- the next ICAP programming attempt(s)
  on a board fail a CRC check and must be retried (with backoff).
- :class:`IcapDegraded` / :class:`IcapRestored` -- *gray* failure of a
  board's configuration port: programming still succeeds, but every
  attempt takes ``latency_multiplier`` times longer (a worn ICAP clock,
  a throttled management processor).
- :class:`LinkFlaky` / :class:`LinkStable` -- gray failure of one ring
  segment: transient drops force retransmissions, which derate the
  segment's effective bandwidth by the drop probability without taking
  it down.

Correlated (multi-board, domain-scoped) and gray-fault *generators* live
in :mod:`repro.faults.domains`; this module only defines the event
vocabulary and the per-class renewal generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "FaultEvent",
    "BoardDown",
    "BoardUp",
    "LinkDegraded",
    "LinkRestored",
    "LinkFlaky",
    "LinkStable",
    "IcapDegraded",
    "IcapRestored",
    "ReconfigTransientFault",
    "FaultSchedule",
]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base of all fault events; ``time_s`` is simulation time."""

    time_s: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("fault time must be non-negative")


@dataclass(frozen=True, slots=True)
class BoardDown(FaultEvent):
    """Fail-stop crash of one board (all blocks + DRAM lost)."""

    board: int = 0


@dataclass(frozen=True, slots=True)
class BoardUp(FaultEvent):
    """The named board rejoins the cluster, empty."""

    board: int = 0


@dataclass(frozen=True, slots=True)
class LinkDegraded(FaultEvent):
    """Ring segment ``segment`` drops to ``capacity_fraction`` of its
    nominal bandwidth (0 < fraction <= 1)."""

    segment: int = 0
    capacity_fraction: float = 0.5

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ValueError(
                f"capacity fraction must be in (0, 1], "
                f"got {self.capacity_fraction}")


@dataclass(frozen=True, slots=True)
class LinkRestored(FaultEvent):
    """Ring segment ``segment`` returns to full bandwidth."""

    segment: int = 0


@dataclass(frozen=True, slots=True)
class LinkFlaky(FaultEvent):
    """Ring segment ``segment`` starts dropping a ``drop_probability``
    fraction of its traffic; retransmissions derate the segment's
    effective bandwidth to ``1 - drop_probability`` of nominal."""

    segment: int = 0
    drop_probability: float = 0.1

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not 0.0 < self.drop_probability < 1.0:
            raise ValueError(
                f"drop probability must be in (0, 1), "
                f"got {self.drop_probability}")


@dataclass(frozen=True, slots=True)
class LinkStable(FaultEvent):
    """Ring segment ``segment`` stops dropping traffic."""

    segment: int = 0


@dataclass(frozen=True, slots=True)
class IcapDegraded(FaultEvent):
    """Board ``board``'s configuration port goes gray: every ICAP
    programming attempt takes ``latency_multiplier`` times longer."""

    board: int = 0
    latency_multiplier: float = 4.0

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"ICAP latency multiplier must be >= 1, "
                f"got {self.latency_multiplier}")


@dataclass(frozen=True, slots=True)
class IcapRestored(FaultEvent):
    """Board ``board``'s configuration port returns to nominal speed."""

    board: int = 0


@dataclass(frozen=True, slots=True)
class ReconfigTransientFault(FaultEvent):
    """The next ``attempts`` ICAP programming attempts on ``board``
    fail and must be retried."""

    board: int = 0
    attempts: int = 1

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.attempts < 1:
            raise ValueError("a transient fault needs >= 1 attempt")


class FaultSchedule:
    """A time-ordered, immutable sequence of fault events.

    Ordering is stable: events are sorted by time, ties preserved in
    construction order, so schedules are deterministic inputs to the
    discrete-event simulator.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        events = list(events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a fault event: {event!r}")
        # stable sort keeps construction order among simultaneous events
        self._events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.time_s))

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultSchedule":
        return cls()

    @classmethod
    def exponential(cls, seed: int, horizon_s: float, num_boards: int,
                    board_mtbf_s: float | None = None,
                    board_mttr_s: float = 60.0,
                    link_mtbf_s: float | None = None,
                    link_mttr_s: float = 30.0,
                    link_capacity_fraction: float = 0.5,
                    reconfig_fault_mtbf_s: float | None = None,
                    ) -> "FaultSchedule":
        """Seeded MTBF/MTTR fail-stop generator over ``[0, horizon_s]``.

        Each fault class with a non-``None`` MTBF gets its own renewal
        process: exponential up-time draws pick the fault instant,
        exponential repair draws pick the matching recovery instant
        (clamped inside the horizon so every failure injected is also
        healed -- experiments end with a healthy cluster unless the
        schedule is truncated on purpose).  All draws come from one
        ``random.Random(seed)`` stream in a fixed order, so the schedule
        is a pure function of its arguments.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if num_boards < 1:
            raise ValueError("need at least one board")
        # a zero or negative rate would silently produce a degenerate
        # schedule (negative exponential draws clamp to "everything
        # fails at t=0 forever"); fail loudly instead
        for name, value in (("board_mtbf_s", board_mtbf_s),
                            ("board_mttr_s", board_mttr_s),
                            ("link_mtbf_s", link_mtbf_s),
                            ("link_mttr_s", link_mttr_s),
                            ("reconfig_fault_mtbf_s",
                             reconfig_fault_mtbf_s)):
            if value is not None and value <= 0:
                raise ValueError(
                    f"{name} must be positive, got {value}")
        rng = random.Random(seed)
        events: list[FaultEvent] = []

        if board_mtbf_s is not None:
            for board in range(num_boards):
                t = rng.expovariate(1.0 / board_mtbf_s)
                while t < horizon_s:
                    down_for = rng.expovariate(1.0 / board_mttr_s)
                    up_at = min(t + down_for, horizon_s)
                    events.append(BoardDown(time_s=t, board=board))
                    events.append(BoardUp(time_s=up_at, board=board))
                    t = up_at + rng.expovariate(1.0 / board_mtbf_s)

        if link_mtbf_s is not None and num_boards > 1:
            for segment in range(num_boards):
                t = rng.expovariate(1.0 / link_mtbf_s)
                while t < horizon_s:
                    down_for = rng.expovariate(1.0 / link_mttr_s)
                    up_at = min(t + down_for, horizon_s)
                    events.append(LinkDegraded(
                        time_s=t, segment=segment,
                        capacity_fraction=link_capacity_fraction))
                    events.append(LinkRestored(time_s=up_at,
                                               segment=segment))
                    t = up_at + rng.expovariate(1.0 / link_mtbf_s)

        if reconfig_fault_mtbf_s is not None:
            t = rng.expovariate(1.0 / reconfig_fault_mtbf_s)
            while t < horizon_s:
                events.append(ReconfigTransientFault(
                    time_s=t, board=rng.randrange(num_boards)))
                t += rng.expovariate(1.0 / reconfig_fault_mtbf_s)

        return cls(events)

    @classmethod
    def demo(cls, num_boards: int,
             down_at_s: float = 40.0,
             up_at_s: float = 100.0) -> "FaultSchedule":
        """The canonical single-outage scenario the docs and the
        health-regression gate use: board 1 fail-stops at ``down_at_s``
        and rejoins (empty) at ``up_at_s``.

        One outage and one repair, fully deterministic -- long enough
        for the health timeline to show the degraded window and for the
        default ``failed_boards < 1`` SLO to trip and then recover.
        Needs >= 2 boards (the cluster must survive the outage).
        """
        if num_boards < 2:
            raise ValueError("the demo outage needs >= 2 boards")
        if not 0 <= down_at_s < up_at_s:
            raise ValueError("need 0 <= down_at_s < up_at_s")
        return cls([BoardDown(time_s=down_at_s, board=1),
                    BoardUp(time_s=up_at_s, board=1)])

    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def boards_touched(self) -> set[int]:
        return {e.board for e in self._events
                if isinstance(e, (BoardDown, BoardUp, IcapDegraded,
                                  IcapRestored,
                                  ReconfigTransientFault))}

    def validate_for(self, num_boards: int) -> None:
        """Reject events addressing boards/segments outside the cluster."""
        for event in self._events:
            if isinstance(event, (BoardDown, BoardUp, IcapDegraded,
                                  IcapRestored,
                                  ReconfigTransientFault)):
                if not 0 <= event.board < num_boards:
                    raise ValueError(
                        f"fault targets board {event.board}, cluster "
                        f"has {num_boards}")
            elif isinstance(event, (LinkDegraded, LinkRestored,
                                    LinkFlaky, LinkStable)):
                if not 0 <= event.segment < num_boards:
                    raise ValueError(
                        f"fault targets ring segment {event.segment}, "
                        f"ring has {num_boards}")

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self._events)} events)"
