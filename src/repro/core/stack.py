"""ViTALStack: the four layers behind one handle.

The facade a cloud operator embeds: construct it over a cluster (or let it
build the paper's 4x XCVU37P platform), ``compile`` kernels offline, then
``deploy``/``release`` at runtime.  Compilation happens once per kernel
against the homogeneous abstraction; deployment is pure resource
allocation plus relocation plus partial reconfiguration -- the decoupling
that is the paper's thesis.
"""

from __future__ import annotations

from repro.cluster.cluster import FPGACluster, make_cluster
from repro.compiler.bitstream import CompiledApp
from repro.compiler.flow import CompilationFlow
from repro.core.programming import VirtualFPGA
from repro.hls.kernels import KernelSpec
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation
from repro.runtime.policy import AllocationPolicy
from repro.runtime.types import Deployment

__all__ = ["ViTALStack"]


class ViTALStack:
    """Full-stack handle: Programming + Architecture + Compilation +
    System layers."""

    def __init__(self, cluster: FPGACluster | None = None,
                 policy: AllocationPolicy | None = None,
                 seed: int = 0) -> None:
        self.cluster = cluster or make_cluster()
        self.flow = CompilationFlow(fabric=self.cluster.partition,
                                    seed=seed)
        self.controller = SystemController(self.cluster, policy=policy)
        self.virtual_fpga = VirtualFPGA(
            pool_capacity=self.cluster.partition.user_resources()
            * self.cluster.num_boards)
        self._apps: dict[str, CompiledApp] = {}
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # offline path
    # ------------------------------------------------------------------
    def compile(self, spec: KernelSpec) -> CompiledApp:
        """Compile ``spec`` onto the abstraction and register it.

        Idempotent per kernel name: the bitstream database keeps one
        artifact per application, matching the paper's
        compile-once/deploy-anywhere story.
        """
        if spec.name in self._apps:
            return self._apps[spec.name]
        self.virtual_fpga.check(spec)
        app = self.flow.compile(spec)
        self.controller.register(app)
        self._apps[spec.name] = app
        return app

    def compiled(self, name: str) -> CompiledApp:
        return self._apps[name]

    # ------------------------------------------------------------------
    # runtime path
    # ------------------------------------------------------------------
    def deploy(self, spec: "KernelSpec | CompiledApp",
               now: float = 0.0) -> Deployment | None:
        """Deploy a (compiled) kernel; ``None`` means no resources now."""
        app = spec if isinstance(spec, CompiledApp) \
            else self.compile(spec)
        request_id = self._next_request_id
        self._next_request_id += 1
        return self.controller.try_deploy(app, request_id, now)

    def release(self, deployment: Deployment, now: float = 0.0) -> None:
        self.controller.release(deployment, now)

    # ------------------------------------------------------------------
    # operator APIs
    # ------------------------------------------------------------------
    def running(self) -> list[Deployment]:
        return self.controller.running()

    def utilization(self) -> float:
        return self.controller.utilization()

    def free_blocks(self) -> int:
        return (self.controller.capacity_blocks()
                - self.controller.busy_blocks())

    def check_isolation(self) -> None:
        """Re-verify the multi-tenant isolation invariants right now."""
        verify_isolation(self.controller)

    def status(self) -> dict[str, object]:
        """A monitoring snapshot (what a hypervisor would poll)."""
        return {
            "cluster": str(self.cluster),
            "running": len(self.controller.deployments),
            "busy_blocks": self.controller.busy_blocks(),
            "capacity_blocks": self.controller.capacity_blocks(),
            "utilization": self.controller.utilization(),
            "registered_apps": len(self._apps),
        }
