"""The paper's primary contribution, packaged as a user-facing API.

- :mod:`repro.core.programming` -- the Programming Layer (Section 3.1):
  the illusion of a single, infinitely large FPGA, plus helpers for
  defining custom kernels;
- :mod:`repro.core.stack` -- :class:`ViTALStack`, the full-stack facade
  tying the architecture abstraction, compilation flow and runtime
  controller together.
"""

from repro.core.programming import VirtualFPGA, custom_kernel
from repro.core.stack import ViTALStack

__all__ = ["VirtualFPGA", "custom_kernel", "ViTALStack"]
