"""Programming Layer (Section 3.1).

ViTAL "creates an illusion of a single and infinitely large FPGA" so users
"can develop applications as if they have the total unrestricted control of
entire FPGA resources, regardless of the resource usages of any other
applications running concurrently".  Concretely:

- :func:`custom_kernel` lets a user describe an accelerator by footprint
  and job size without knowing anything about devices, dies or blocks;
- :class:`VirtualFPGA` accepts any such kernel -- its capacity checks are
  against the *cluster-wide* pool, not any single device -- and reports
  resources the way a user sees them: one big FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.resources import ResourceVector
from repro.hls.kernels import (
    OPS_PER_DSP_CYCLE,
    SHELL_CLOCK_HZ,
    KernelSpec,
    SizeClass,
)

__all__ = ["custom_kernel", "VirtualFPGA"]


def custom_kernel(name: str, lut: float, dff: float, dsp: float,
                  bram_mb: float, service_time_s: float = 30.0,
                  stream_width_bits: int = 64) -> KernelSpec:
    """Describe a user accelerator by footprint and nominal job time.

    This is the whole programming interface a tenant needs: no device
    names, no floorplans, no partitioning -- the stack handles all of it.
    """
    if min(lut, dff) <= 0:
        raise ValueError("a kernel needs logic (positive lut/dff)")
    if service_time_s <= 0:
        raise ValueError("service time must be positive")
    dsp = max(0.0, dsp)
    # back-derive roofline work so KernelSpec.service_time_s() round-trips
    throughput_gops = max(dsp, 1.0) * SHELL_CLOCK_HZ \
        * OPS_PER_DSP_CYCLE / 1e9
    return KernelSpec(
        family=name,
        size=SizeClass.MEDIUM,
        resources=ResourceVector(lut=lut, dff=dff, dsp=dsp,
                                 bram_mb=bram_mb),
        work_gops=service_time_s * throughput_gops,
        stream_width_bits=stream_width_bits,
    )


@dataclass(slots=True)
class VirtualFPGA:
    """The single large FPGA a tenant believes they own.

    Attributes:
        pool_capacity: aggregate user-visible resources of the cluster --
            what "infinitely large" amounts to in practice; a kernel
            larger than this cannot run anywhere and is rejected with a
            clear error instead of failing deep inside the flow.
    """

    pool_capacity: ResourceVector

    def admits(self, spec: KernelSpec) -> bool:
        return spec.resources.fits_in(self.pool_capacity)

    def check(self, spec: KernelSpec) -> None:
        if not self.admits(spec):
            raise ValueError(
                f"{spec.name} needs {spec.resources}, exceeding even the "
                f"aggregated cluster pool {self.pool_capacity}")

    def headroom(self, spec: KernelSpec) -> float:
        """How many copies of ``spec`` the pool could hold (informative;
        actual concurrency is the runtime's business)."""
        util = spec.resources.utilization_of(self.pool_capacity)
        return 1.0 / util if util > 0 else float("inf")
