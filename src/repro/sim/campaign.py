"""Scenario-campaign service: content-addressed, cached, parallel.

The paper's evaluation is a *matrix* -- Tables 3-4 and Figs. 7-10 sweep
workload composition, arrival rate, and cluster configuration -- and
every later PR widened the matrix (fault profiles, defrag, the guard,
heterogeneous generations).  Running that matrix one scenario at a time
wastes two things: wall clock (every config re-runs even when nothing
about it changed) and comparability (ad-hoc drivers measure different
things).  This module applies the PR 5 CompileService pattern to whole
*experiments*:

1. every scenario configuration is reduced to a deterministic
   **fingerprint** (:func:`campaign_fingerprint`) -- the sha256 of the
   canonical JSON of everything the result is a function of: workload
   knobs, cluster geometry, policy/discipline, fault, defrag, guard and
   SLO configuration, plus :data:`CAMPAIGN_VERSION` (bumped whenever
   simulator semantics change, so stale results can never be replayed);
2. results are resolved against a :class:`CampaignCache` (memory LRU +
   optional disk tier of canonical JSON, ``campaign.hit`` /
   ``campaign.miss`` trace events, hit/miss/store counters);
3. the remaining misses run either inline (``jobs=1``, the reference
   path) or across a ``ProcessPoolExecutor`` (``jobs>1``), and merge in
   input order.

Workers receive the compiled benchmark set as canonical
:meth:`~repro.compiler.bitstream.CompiledApp.to_dict` payloads (compiled
once, in the parent -- artifacts depend only on the partition geometry,
never on cluster size) and ship results back as canonical dicts with
measured wall clocks *outside* the payload.  Every run builds a fresh
cluster, so a result is a pure function of its config: same-seed
campaigns are **byte-identical** across ``jobs=1`` / ``jobs=N`` / warm
cache, which the determinism tests assert literally.

Three declarative grids ship with the service: :func:`standard_grid`
(the acceptance matrix -- load pattern x fault profile x defrag x
guard, 24 configs), :func:`extended_grid` (adds bursty arrivals,
cascades, gray faults, and mixed device generations from the catalog),
and :func:`smoke_grid` (the CI-sized subset).
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, fields
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.cluster.cluster import make_cluster, make_heterogeneous_cluster
from repro.compiler.bitstream import CompiledApp
from repro.compiler.cache import CompileCache
from repro.compiler.flow import FLOW_VERSION
from repro.compiler.service import _mp_context
from repro.faults.domains import FailureDomainMap, correlated_outages, \
    gray_faults
from repro.faults.schedule import FaultSchedule
from repro.obs.slo import SLOEngine
from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.runtime.defrag import DefragConfig
from repro.runtime.guard import DegradedModeGuard
from repro.runtime.hetero import HeterogeneousManagerAdapter
from repro.runtime.policy import CommunicationAwarePolicy
from repro.sim.arrivals import BurstyArrivals, DiurnalArrivals, \
    FlashCrowdArrivals, PoissonArrivals
from repro.sim.experiment import compile_benchmarks, run_experiment
from repro.sim.workload import COMPOSITIONS, WorkloadGenerator

__all__ = [
    "CAMPAIGN_VERSION",
    "FAULT_PROFILES",
    "LOAD_PATTERNS",
    "POOL_MIN_MISSES",
    "CampaignConfig",
    "campaign_fingerprint",
    "canonical_json",
    "CampaignCache",
    "CampaignRunner",
    "run_config",
    "standard_grid",
    "extended_grid",
    "smoke_grid",
]

#: Bumped whenever experiment semantics change in a way that makes old
#: cached results non-reproducible -- part of every fingerprint, so a
#: bump invalidates the whole cache at once.
CAMPAIGN_VERSION = "1"

#: Arrival-shape axis; see :mod:`repro.sim.arrivals`.
LOAD_PATTERNS = ("poisson", "bursty", "diurnal", "flash-crowd")

#: Fault-schedule axis: named presets over the PR 6 failure-domain
#: generators.  A preset name (not its knobs) goes into configs; the
#: knobs live here so the fingerprint covers them via the preset table
#: version implicitly and tests can tweak one preset in isolation.
FAULT_PROFILES: dict[str, dict] = {
    "none": {},
    "rack-outage": {"rack_mtbf_s": 180.0, "rack_mttr_s": 25.0},
    "zone-cascade": {"rack_mtbf_s": 220.0, "rack_mttr_s": 20.0,
                     "cascade_probability": 0.75,
                     "cascade_delay_s": 5.0},
    "gray-icap": {"icap_mtbf_s": 90.0, "icap_mttr_s": 45.0,
                  "icap_latency_multiplier": 4.0},
}

_DISCIPLINES = ("fifo", "backfill", "sjf")
_RECOVERIES = ("requeue", "migrate-on-failure")


def canonical_json(doc) -> str:
    """The one serialization fingerprints and byte-identity use."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """One point of a scenario grid (everything a result depends on)."""

    name: str
    num_boards: int = 8
    boards_per_rack: int = 4
    set_index: int = 7
    num_requests: int = 40
    mean_interarrival_s: float = 3.0
    seed: int = 7
    horizon_s: float = 240.0
    load_pattern: str = "poisson"
    discipline: str = "fifo"
    recovery: str = "requeue"
    #: cap on boards per placement (None: the policy default)
    max_boards: "int | None" = None
    fault_profile: str = "none"
    defrag: bool = False
    guard: bool = False
    slo_rules: "tuple[str, ...]" = ()
    #: device names for a heterogeneous cluster (None: homogeneous
    #: ``num_boards`` x XCVU37P); length must equal ``num_boards``
    devices: "tuple[str, ...] | None" = None

    def __post_init__(self) -> None:
        if self.load_pattern not in LOAD_PATTERNS:
            raise ValueError(f"unknown load pattern "
                             f"{self.load_pattern!r}; choose from "
                             f"{LOAD_PATTERNS}")
        if self.fault_profile not in FAULT_PROFILES:
            raise ValueError(f"unknown fault profile "
                             f"{self.fault_profile!r}; choose from "
                             f"{tuple(FAULT_PROFILES)}")
        if self.discipline not in _DISCIPLINES:
            raise ValueError(f"unknown discipline "
                             f"{self.discipline!r}")
        if self.recovery not in _RECOVERIES:
            raise ValueError(f"unknown recovery {self.recovery!r}")
        if self.set_index not in COMPOSITIONS:
            raise ValueError(f"unknown workload set {self.set_index}")
        if self.devices is not None \
                and len(self.devices) != self.num_boards:
            raise ValueError(
                f"{self.name}: {len(self.devices)} devices for "
                f"{self.num_boards} boards")

    def as_dict(self) -> dict:
        """Canonical JSON-able form (tuples become lists)."""
        doc = asdict(self)
        doc["slo_rules"] = list(self.slo_rules)
        if self.devices is not None:
            doc["devices"] = list(self.devices)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown config fields: {unknown}")
        doc = dict(doc)
        doc["slo_rules"] = tuple(doc.get("slo_rules", ()))
        if doc.get("devices") is not None:
            doc["devices"] = tuple(doc["devices"])
        return cls(**doc)


def campaign_fingerprint(config: CampaignConfig) -> str:
    """Deterministic content address of one scenario configuration.

    Two configs share a fingerprint iff their results are guaranteed
    byte-identical: same config axes, same fault-preset knobs, same
    campaign and compile-flow versions.  The ``name`` field is a label,
    not an input, and deliberately stays out.
    """
    key = {k: v for k, v in config.as_dict().items() if k != "name"}
    key["fault_knobs"] = FAULT_PROFILES[config.fault_profile]
    key["campaign_version"] = CAMPAIGN_VERSION
    key["flow_version"] = FLOW_VERSION
    return hashlib.sha256(canonical_json(key).encode()).hexdigest()


# ----------------------------------------------------------------------
# one scenario run
# ----------------------------------------------------------------------
def _arrival_process(config: CampaignConfig):
    mean = config.mean_interarrival_s
    if config.load_pattern == "poisson":
        return PoissonArrivals(mean)
    if config.load_pattern == "bursty":
        return BurstyArrivals(mean)
    if config.load_pattern == "diurnal":
        return DiurnalArrivals(mean)
    return FlashCrowdArrivals(mean)


def _fault_schedule(config: CampaignConfig) -> "FaultSchedule | None":
    knobs = FAULT_PROFILES[config.fault_profile]
    if not knobs:
        return None
    domains = FailureDomainMap.grid(config.num_boards,
                                    config.boards_per_rack)
    events = []
    if "rack_mtbf_s" in knobs:
        events.extend(correlated_outages(
            domains, seed=config.seed, horizon_s=config.horizon_s,
            rack_mtbf_s=knobs["rack_mtbf_s"],
            rack_mttr_s=knobs["rack_mttr_s"],
            cascade_probability=knobs.get("cascade_probability", 0.0),
            cascade_delay_s=knobs.get("cascade_delay_s", 5.0)))
    if "icap_mtbf_s" in knobs:
        events.extend(gray_faults(
            domains, seed=config.seed + 1, horizon_s=config.horizon_s,
            icap_mtbf_s=knobs["icap_mtbf_s"],
            icap_mttr_s=knobs["icap_mttr_s"],
            icap_latency_multiplier=knobs["icap_latency_multiplier"],
            flaky_mtbf_s=None))
    schedule = FaultSchedule(events)
    schedule.validate_for(config.num_boards)
    return schedule


def run_config(config: CampaignConfig,
               apps: "dict[str, CompiledApp] | None" = None,
               profile=None,
               tracer: "Tracer | None" = None) -> dict:
    """Run one scenario from scratch and return its canonical result.

    A **fresh** cluster and manager are built per call -- unlike the
    chaos harness's shared-cluster reuse -- so the result is a pure
    function of ``config`` (plus the compiled apps, themselves pure):
    run order, process layout, and cache state cannot leak in.  The
    returned dict round-trips through :func:`canonical_json` unchanged.
    """
    build_phase = profile.phase("campaign.build", nested=True) \
        if profile is not None else None
    if build_phase is not None:
        build_phase.__enter__()
    if config.devices is not None:
        cluster = make_heterogeneous_cluster(list(config.devices))
        manager = HeterogeneousManagerAdapter(cluster)
    else:
        cluster = make_cluster(num_boards=config.num_boards)
        policy = CommunicationAwarePolicy(max_boards=config.max_boards) \
            if config.max_boards is not None else None
        manager = SystemController(cluster, policy=policy)
    if apps is None:
        # artifacts depend on the partition geometry, not the cluster
        # size or device mix -- one homogeneous board compiles the set
        apps = compile_benchmarks(make_cluster(num_boards=1))
    requests = WorkloadGenerator(seed=config.seed).generate(
        config.set_index, num_requests=config.num_requests,
        mean_interarrival_s=config.mean_interarrival_s,
        arrival_process=_arrival_process(config))
    schedule = _fault_schedule(config)
    guard = DegradedModeGuard() if config.guard else None
    slo = SLOEngine(list(config.slo_rules)) if config.slo_rules \
        else None
    if build_phase is not None:
        build_phase.__exit__(None, None, None)

    result = run_experiment(
        manager, requests, apps,
        discipline=config.discipline,
        faults=schedule, recovery=config.recovery,
        guard=guard, slo=slo,
        defrag=DefragConfig() if config.defrag else None,
        tracer=tracer, profile=profile)

    return {
        "campaign_version": CAMPAIGN_VERSION,
        "name": config.name,
        "fingerprint": campaign_fingerprint(config),
        "config": config.as_dict(),
        "manager": result.manager_name,
        "fault_events": len(schedule) if schedule is not None else 0,
        "summary": asdict(result.summary),
    }


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class CampaignCache:
    """Bounded LRU of scenario results with optional disk tier.

    The mirror image of :class:`repro.compiler.cache.CompileCache`, for
    experiment results instead of artifacts.  Entries are stored as
    canonical JSON *text* -- :meth:`get` parses a fresh dict per call,
    so a caller mutating its copy can never poison the cached bytes --
    and the disk tier is one ``<fingerprint>.json`` per result.
    """

    def __init__(self, max_entries: int = 512,
                 cache_dir: "str | Path | None" = None,
                 tracer: "Tracer | None" = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, "
                             f"got {max_entries}")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.tracer = tracer
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._entries:
            return True
        path = self._disk_path(fingerprint)
        return path is not None and path.exists()

    def _disk_path(self, fingerprint: str) -> "Path | None":
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{fingerprint}.json"

    def _insert(self, fingerprint: str, text: str) -> None:
        self._entries[fingerprint] = text
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    def get(self, fingerprint: str, name: "str | None" = None,
            tracer: "Tracer | None" = None) -> "dict | None":
        """Look up one result; ``None`` on a miss."""
        tracer = tracer or self.tracer
        text = self._entries.get(fingerprint)
        if text is not None:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            self._trace(tracer, "campaign.hit", fingerprint, name,
                        tier="memory")
            return json.loads(text)
        path = self._disk_path(fingerprint)
        if path is not None and path.exists():
            text = path.read_text()
            # normalize to canonical bytes whatever the file looked
            # like, so memory and disk tiers serve identical results
            text = canonical_json(json.loads(text))
            self._insert(fingerprint, text)
            self.hits += 1
            self.disk_hits += 1
            self._trace(tracer, "campaign.hit", fingerprint, name,
                        tier="disk")
            return json.loads(text)
        self.misses += 1
        self._trace(tracer, "campaign.miss", fingerprint, name)
        return None

    def put(self, fingerprint: str, result: dict) -> None:
        """Store one result (memory, and disk when configured)."""
        text = canonical_json(result)
        self._insert(fingerprint, text)
        self.stores += 1
        path = self._disk_path(fingerprint)
        if path is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")

    def invalidate(self, fingerprint: str) -> bool:
        dropped = self._entries.pop(fingerprint, None) is not None
        path = self._disk_path(fingerprint)
        if path is not None and path.exists():
            path.unlink()
            dropped = True
        if dropped:
            self.invalidations += 1
        return dropped

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier is left intact)."""
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    @staticmethod
    def _trace(tracer: "Tracer | None", name: str, fingerprint: str,
               config_name: "str | None", **fields) -> None:
        if tracer:
            payload = {"fingerprint": fingerprint[:12], **fields}
            if config_name is not None:
                payload["scenario"] = config_name
            tracer.event(name, **payload)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
#: per-worker app set, rebuilt once from canonical payloads by the pool
#: initializer so every config run in one worker reuses it
_WORKER_APPS: "dict[str, CompiledApp] | None" = None


def _campaign_worker_init(payloads: dict[str, dict]) -> None:
    global _WORKER_APPS
    _WORKER_APPS = {name: CompiledApp.from_dict(data)
                    for name, data in payloads.items()}


def _campaign_worker_run(config_doc: dict) -> tuple[dict, float]:
    """Run one config in a worker; returns (canonical result, wall)."""
    config = CampaignConfig.from_dict(config_doc)
    t0 = time.perf_counter()
    result = run_config(config, apps=_WORKER_APPS)
    return result, time.perf_counter() - t0


#: smallest miss count worth a process pool.  Fork/spawn + per-worker
#: app rebuild costs tens to hundreds of milliseconds, which a handful
#: of sub-100ms scenario runs never earns back (the pr9 bench measured
#: jobs=4 at 0.83x of jobs=1 on the 24-config grid); below the
#: threshold ``run_many`` runs the misses inline regardless of
#: ``jobs``.  Results are byte-identical either way.
POOL_MIN_MISSES = 8


def _usable_cpus() -> int:
    """CPUs this process may actually schedule on."""
    try:
        import os
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        import os
        return os.cpu_count() or 1


class CampaignRunner:
    """Cache-first scenario executor (inline or process-parallel).

    Args:
        cache: optional :class:`CampaignCache`; hits skip the run (and
            the compile) entirely.
        compile_cache: optional compile cache used when the runner has
            to build the benchmark set itself.
        apps: precompiled benchmark set; artifacts are a function of
            the partition geometry only, so one homogeneous set serves
            every config (heterogeneous runs recompile per footprint
            inside the run, using these as spec carriers).
        tracer: receives ``campaign.hit`` / ``campaign.miss`` events.
        profile: optional :class:`~repro.obs.profile.PhaseProfiler`;
            inline runs charge their phases to it.
    """

    def __init__(self, cache: "CampaignCache | None" = None,
                 compile_cache: "CompileCache | None" = None,
                 apps: "dict[str, CompiledApp] | None" = None,
                 tracer: "Tracer | None" = None,
                 profile=None) -> None:
        self.cache = cache
        self.compile_cache = compile_cache
        self.tracer = tracer
        self.profile = profile
        self._apps: "dict[str, CompiledApp] | None" = None
        if apps is not None:
            self._apps = self._normalize(apps)
        #: config name -> measured wall seconds of its last *real* run
        #: (cache hits do not appear; profiling data, not results)
        self.last_walls: dict[str, float] = {}

    @staticmethod
    def _normalize(apps: "dict[str, CompiledApp]",
                   ) -> "dict[str, CompiledApp]":
        """Round-trip artifacts through their canonical form.

        Inline runs then use byte-for-byte the same app objects a
        worker rebuilds from its payload, making jobs=1 / jobs=N
        equality structural rather than assumed.
        """
        return {name: CompiledApp.from_dict(app.to_dict())
                for name, app in apps.items()}

    def _ensure_apps(self) -> "dict[str, CompiledApp]":
        if self._apps is None:
            phase = self.profile.phase("campaign.compile") \
                if self.profile is not None else None
            if phase is not None:
                phase.__enter__()
            cluster = make_cluster(num_boards=1)
            self._apps = self._normalize(compile_benchmarks(
                cluster, cache=self.compile_cache,
                tracer=self.tracer))
            if phase is not None:
                phase.__exit__(None, None, None)
        return self._apps

    # ------------------------------------------------------------------
    def run_one(self, config: CampaignConfig) -> dict:
        return self.run_many([config])[0]

    def run_many(self, configs, jobs: int = 1) -> list[dict]:
        """Resolve every config (cache first), in input order.

        ``jobs>1`` farms the cache misses across worker processes --
        but only when there are at least :data:`POOL_MIN_MISSES` of
        them and more than one schedulable CPU; smaller (or warm)
        sweeps run inline to skip pool startup entirely.  The merged
        result list is byte-identical to ``jobs=1`` (asserted by the
        determinism tests, guaranteed by fresh-cluster runs and
        canonical payloads).
        """
        configs = list(configs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate config names: {dupes}")

        # pass 1: resolve against the cache (lookup events fire in
        # input order, before any run executes)
        fingerprints = [campaign_fingerprint(c) for c in configs]
        results: dict[int, dict] = {}
        misses: list[int] = []
        for i, (config, fp) in enumerate(zip(configs, fingerprints)):
            if self.cache is None:
                misses.append(i)
                continue
            hit = self.cache.get(fp, name=config.name,
                                 tracer=self.tracer)
            if hit is None:
                misses.append(i)
            else:
                results[i] = hit

        # pass 2: run the misses (cache hits never pay a compile).
        # The pool spawns lazily and only when it can win: enough
        # misses to amortize worker startup (POOL_MIN_MISSES) and more
        # than one schedulable CPU -- tiny or warm sweeps (and 1-CPU
        # boxes, where workers only add overhead) run inline whatever
        # ``jobs`` says.
        if misses:
            apps = self._ensure_apps()
            workers = min(jobs, len(misses), _usable_cpus())
            if workers > 1 and len(misses) >= POOL_MIN_MISSES:
                payloads = {name: app.to_dict()
                            for name, app in apps.items()}
                with ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=_mp_context(),
                        initializer=_campaign_worker_init,
                        initargs=(payloads,)) as pool:
                    outs = list(pool.map(
                        _campaign_worker_run,
                        [configs[i].as_dict() for i in misses]))
                for i, (result, wall_s) in zip(misses, outs):
                    results[i] = result
                    self.last_walls[configs[i].name] = wall_s
            else:
                for i in misses:
                    t0 = time.perf_counter()
                    results[i] = run_config(configs[i], apps=apps,
                                            profile=self.profile)
                    self.last_walls[configs[i].name] = \
                        time.perf_counter() - t0

        # pass 3: store and merge in input order
        if self.cache is not None:
            for i in misses:
                self.cache.put(fingerprints[i], results[i])
        return [results[i] for i in range(len(configs))]


# ----------------------------------------------------------------------
# grids
# ----------------------------------------------------------------------
def standard_grid(num_requests: int = 40,
                  seed: int = 7) -> list[CampaignConfig]:
    """The acceptance matrix: 3 load patterns x 2 fault profiles x
    defrag on/off x guard on/off = 24 configs on 8 boards."""
    configs = []
    for load in ("poisson", "diurnal", "flash-crowd"):
        for fault in ("none", "rack-outage"):
            for defrag in (False, True):
                for guard in (False, True):
                    configs.append(CampaignConfig(
                        name=f"{load}/{fault}"
                             f"/defrag-{'on' if defrag else 'off'}"
                             f"/guard-{'on' if guard else 'off'}",
                        load_pattern=load, fault_profile=fault,
                        defrag=defrag, guard=guard,
                        num_requests=num_requests, seed=seed))
    return configs


def extended_grid(num_requests: int = 40,
                  seed: int = 7) -> list[CampaignConfig]:
    """Standard matrix plus bursty arrivals, cascades, gray faults,
    an SLO-gated run, and mixed device generations (Section 7)."""
    configs = standard_grid(num_requests=num_requests, seed=seed)
    for fault in ("none", "rack-outage"):
        configs.append(CampaignConfig(
            name=f"bursty/{fault}", load_pattern="bursty",
            fault_profile=fault, num_requests=num_requests,
            seed=seed))
    configs.append(CampaignConfig(
        name="zone-cascade/guard-on", fault_profile="zone-cascade",
        guard=True, recovery="migrate-on-failure",
        num_requests=num_requests, seed=seed))
    configs.append(CampaignConfig(
        name="gray-icap/guard-on", fault_profile="gray-icap",
        guard=True, num_requests=num_requests, seed=seed))
    configs.append(CampaignConfig(
        name="poisson/slo-gated",
        slo_rules=("p95_response_s < 600",),
        num_requests=num_requests, seed=seed))
    # mixed generations: two boards per catalog device; the adapter
    # compiles per footprint on first sight, so keep the set small
    configs.append(CampaignConfig(
        name="hetero/mixed-generations", num_boards=4,
        devices=("XCVU37P", "XCVU37P", "VU13P", "VU13P"),
        num_requests=max(8, num_requests // 2), seed=seed))
    return configs


def smoke_grid(num_requests: int = 10,
               seed: int = 7) -> list[CampaignConfig]:
    """CI-sized slice: every axis appears at least once."""
    return [
        CampaignConfig(name="smoke/poisson",
                       num_requests=num_requests, seed=seed),
        CampaignConfig(name="smoke/flash-crowd",
                       load_pattern="flash-crowd",
                       num_requests=num_requests, seed=seed),
        CampaignConfig(name="smoke/diurnal-rack-outage",
                       load_pattern="diurnal",
                       fault_profile="rack-outage", guard=True,
                       num_requests=num_requests, seed=seed),
        CampaignConfig(name="smoke/defrag",
                       defrag=True, num_requests=num_requests,
                       seed=seed),
    ]
