"""Workload trace import/export.

The paper generates workload sets synthetically because public FPGA-cloud
traces do not exist; for reproducibility this module serializes generated
sets to JSON (and back), so a specific draw can be archived alongside
results or replayed against a modified stack.  The format also gives real
traces an on-ramp: anything mapping to (arrival time, benchmark family,
size) replays through the same simulator.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.hls.kernels import benchmark
from repro.sim.workload import Request

__all__ = ["dump_trace", "dumps_trace", "load_trace", "loads_trace"]

_FORMAT_VERSION = 1


def dumps_trace(requests: list[Request],
                metadata: dict | None = None) -> str:
    """Serialize a workload set to a JSON string.

    ``loads_trace`` rejects unsorted arrivals, so export sorts stably by
    (arrival time, request id) first -- a legal in-memory workload
    (simulators accept any order; the event queue sorts) must round-trip
    through its own serialization.  Already-sorted input serializes
    byte-identically to the unsorted-naive form.
    """
    requests = sorted(requests,
                      key=lambda r: (r.arrival_s, r.request_id))
    payload = {
        "format": "vital-workload-trace",
        "version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "requests": [
            {
                "id": r.request_id,
                "family": r.spec.family,
                "size": r.spec.size.value,
                "arrival_s": r.arrival_s,
            }
            for r in requests
        ],
    }
    return json.dumps(payload, indent=2)


def dump_trace(requests: list[Request], path: "str | Path",
               metadata: dict | None = None) -> None:
    Path(path).write_text(dumps_trace(requests, metadata))


def loads_trace(text: str) -> list[Request]:
    """Parse a JSON trace back into requests (validating as it goes)."""
    payload = json.loads(text)
    if payload.get("format") != "vital-workload-trace":
        raise ValueError("not a workload trace (missing format marker)")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace version {payload.get('version')!r}")
    requests = []
    last_arrival = float("-inf")
    for entry in payload["requests"]:
        arrival = float(entry["arrival_s"])
        if arrival < 0:
            raise ValueError(f"request {entry['id']}: negative arrival")
        if arrival < last_arrival:
            raise ValueError(
                f"request {entry['id']}: arrivals must be sorted")
        last_arrival = arrival
        requests.append(Request(
            request_id=int(entry["id"]),
            spec=benchmark(entry["family"], entry["size"]),
            arrival_s=arrival,
        ))
    ids = [r.request_id for r in requests]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate request ids in trace")
    return requests


def load_trace(path: "str | Path") -> list[Request]:
    return loads_trace(Path(path).read_text())
