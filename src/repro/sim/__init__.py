"""System-Layer simulation (Section 5.5's methodology).

A discrete-event simulator replays synthetically generated workload sets
(Table 3) against any cluster manager -- ViTAL's system controller or a
baseline -- and collects the paper's metrics: response time (wait +
service), resource utilization, concurrency, multi-FPGA spanning and
latency overhead.

- :mod:`repro.sim.events` -- event queue and time-weighted statistics;
- :mod:`repro.sim.workload` -- Table 3 workload-set generation;
- :mod:`repro.sim.metrics` -- per-request records and summaries;
- :mod:`repro.sim.experiment` -- the event loop and multi-manager
  comparison drivers;
- :mod:`repro.sim.chaos` -- chaos campaign harness (correlated/gray
  scenario matrix with per-event invariants);
- :mod:`repro.sim.campaign` -- content-addressed, cached, parallel
  scenario-campaign service over declarative config grids.
"""

from repro.sim.events import EventQueue, TimeWeightedValue
from repro.sim.workload import (
    COMPOSITIONS,
    Request,
    WorkloadGenerator,
)
from repro.sim.metrics import RequestRecord, SummaryMetrics, MetricsCollector
from repro.sim.experiment import (
    ExperimentResult,
    run_experiment,
    compile_benchmarks,
    compare_managers,
    MANAGER_FACTORIES,
)
from repro.sim.campaign import (
    CAMPAIGN_VERSION,
    CampaignCache,
    CampaignConfig,
    CampaignRunner,
    campaign_fingerprint,
    extended_grid,
    run_config,
    smoke_grid,
    standard_grid,
)
from repro.sim.chaos import (
    CampaignResult,
    ChaosInvariantError,
    ChaosScenario,
    ScenarioResult,
    run_campaign,
    run_scenario,
    standard_scenarios,
)

__all__ = [
    "EventQueue",
    "TimeWeightedValue",
    "COMPOSITIONS",
    "Request",
    "WorkloadGenerator",
    "RequestRecord",
    "SummaryMetrics",
    "MetricsCollector",
    "ExperimentResult",
    "run_experiment",
    "compile_benchmarks",
    "compare_managers",
    "MANAGER_FACTORIES",
    "CAMPAIGN_VERSION",
    "CampaignCache",
    "CampaignConfig",
    "CampaignRunner",
    "campaign_fingerprint",
    "extended_grid",
    "run_config",
    "smoke_grid",
    "standard_grid",
    "CampaignResult",
    "ChaosInvariantError",
    "ChaosScenario",
    "ScenarioResult",
    "run_campaign",
    "run_scenario",
    "standard_scenarios",
]
