"""Chaos campaign harness: scenario matrix + per-event invariants.

A chaos *scenario* bundles a failure-domain map, a deterministic fault
schedule drawn against it (correlated rack outages, power-zone cascades,
gray ICAP/ring faults, or explicit flap sequences), and a workload.
:func:`run_scenario` replays it through :func:`repro.sim.experiment
.run_experiment` with the degraded-mode guard attached and an invariant
probe called after *every* simulator event:

- **placement discipline**: no new deployment lands on a board that was
  already quarantined when the allocation decision was made;
- **accounting conservation**: the resource database's allocated count
  equals the block total of the live deployments;
- **audit consistency**: replaying the audit log yields exactly the
  controller's live request set.

End-of-run checks add the goodput floor and substrate conservation
(nothing leaked).  A violated invariant raises
:class:`ChaosInvariantError` with the simulated time and scenario name.

:func:`run_campaign` runs the standard matrix (or any subset) and
returns JSON-able results; the ``repro chaos`` CLI subcommand drives it
and can export the trace for the CI regression gate.  Everything is a
pure function of scenario seeds -- two runs of one campaign are
trace-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.cluster.cluster import make_cluster
from repro.faults.domains import (
    FailureDomainMap,
    correlated_outages,
    gray_faults,
)
from repro.faults.schedule import BoardDown, BoardUp, FaultEvent, \
    FaultSchedule
from repro.obs.slo import SLOEngine
from repro.obs.timeline import TimelineAggregator
from repro.obs.tracer import Tracer
from repro.cluster.board import BoardHealth
from repro.runtime.controller import SystemController
from repro.runtime.defrag import DefragConfig
from repro.runtime.guard import DegradedModeGuard, GuardConfig
from repro.sim.experiment import compile_benchmarks, run_experiment
from repro.sim.metrics import SummaryMetrics
from repro.sim.workload import WorkloadGenerator

__all__ = [
    "ChaosInvariantError",
    "ChaosScenario",
    "ScenarioResult",
    "CampaignResult",
    "standard_scenarios",
    "rack_flap_events",
    "make_invariant_probe",
    "simulate_warm_restart",
    "run_scenario",
    "run_campaign",
]


class ChaosInvariantError(AssertionError):
    """An invariant the chaos harness asserts per event was violated."""


def rack_flap_events(boards: "tuple[int, ...]",
                     flaps: "tuple[tuple[float, float], ...]",
                     ) -> tuple[FaultEvent, ...]:
    """Explicit fail/repair cycles of one rack (every board at once).

    ``flaps`` is a sequence of ``(down_at, up_at)`` windows.  This is
    the canonical correlated-flap scenario: without a circuit breaker,
    migration re-places victims onto the rack between flaps and the next
    flap evicts them again."""
    events: list[FaultEvent] = []
    for down_at, up_at in flaps:
        if not 0 <= down_at < up_at:
            raise ValueError("need 0 <= down_at < up_at per flap")
        for board in boards:
            events.append(BoardDown(time_s=down_at, board=board))
            events.append(BoardUp(time_s=up_at, board=board))
    return tuple(events)


@dataclass(frozen=True, slots=True)
class ChaosScenario:
    """One deterministic chaos experiment (domains + schedule + load)."""

    name: str
    description: str = ""
    num_boards: int = 8
    boards_per_rack: int = 4
    horizon_s: float = 240.0
    num_requests: int = 60
    mean_interarrival_s: float = 3.0
    workload_set: int = 7
    seed: int = 7
    #: recovery policy the experiment uses (the guard layers on top)
    recovery: str = "requeue"
    #: minimum acceptable end-of-run goodput fraction
    goodput_floor: float = 0.5
    # ---- correlated-outage generator knobs (None disables) -----------
    rack_mtbf_s: "float | None" = None
    rack_mttr_s: float = 30.0
    cascade_probability: float = 0.0
    cascade_delay_s: float = 5.0
    # ---- gray-fault generator knobs (None disables) ------------------
    icap_mtbf_s: "float | None" = None
    icap_mttr_s: float = 60.0
    icap_latency_multiplier: float = 4.0
    flaky_mtbf_s: "float | None" = None
    flaky_mttr_s: float = 45.0
    drop_probability: float = 0.2
    #: explicit events appended to the generated ones (flap sequences)
    explicit_events: "tuple[FaultEvent, ...]" = ()
    #: simulated time of a mid-run controller warm restart (snapshot,
    #: tear down, restore onto running hardware); ``None`` disables
    restart_at: "float | None" = None
    #: attach the background defragmenter (isolation-verified moves);
    #: the invariant probe then also vets every migration's landing
    #: boards against the failed/quarantined sets
    defrag: bool = False

    def domain_map(self) -> FailureDomainMap:
        return FailureDomainMap.grid(self.num_boards,
                                     self.boards_per_rack)

    def schedule(self) -> FaultSchedule:
        """The scenario's full deterministic fault schedule."""
        domains = self.domain_map()
        events: list[FaultEvent] = list(self.explicit_events)
        if self.rack_mtbf_s is not None:
            events.extend(correlated_outages(
                domains, seed=self.seed, horizon_s=self.horizon_s,
                rack_mtbf_s=self.rack_mtbf_s,
                rack_mttr_s=self.rack_mttr_s,
                cascade_probability=self.cascade_probability,
                cascade_delay_s=self.cascade_delay_s))
        if self.icap_mtbf_s is not None \
                or self.flaky_mtbf_s is not None:
            events.extend(gray_faults(
                domains, seed=self.seed + 1,
                horizon_s=self.horizon_s,
                icap_mtbf_s=self.icap_mtbf_s,
                icap_mttr_s=self.icap_mttr_s,
                icap_latency_multiplier=self.icap_latency_multiplier,
                flaky_mtbf_s=self.flaky_mtbf_s,
                flaky_mttr_s=self.flaky_mttr_s,
                drop_probability=self.drop_probability))
        return FaultSchedule(events)

    def workload(self):
        return WorkloadGenerator(seed=self.seed).generate(
            self.workload_set, num_requests=self.num_requests,
            mean_interarrival_s=self.mean_interarrival_s)


#: The flap windows of the canonical correlated-flap scenario: three
#: whole-rack outages inside one breaker window, 30 s apart.
RACK_FLAPS: tuple[tuple[float, float], ...] = (
    (40.0, 55.0), (70.0, 85.0), (100.0, 115.0))


def standard_scenarios() -> list[ChaosScenario]:
    """The campaign matrix: correlated, cascading, gray, and mixed."""
    rack1 = tuple(range(4, 8))
    return [
        ChaosScenario(
            name="rack-flap",
            description="one rack fail-stops three times in a row; "
                        "the breaker must stop re-placement onto it",
            explicit_events=rack_flap_events(rack1, RACK_FLAPS)),
        ChaosScenario(
            name="rack-outage",
            description="seeded whole-rack outages (correlated "
                        "fail-stop of every board in the rack)",
            rack_mtbf_s=180.0, rack_mttr_s=25.0, seed=11),
        ChaosScenario(
            name="zone-cascade",
            description="rack outages cascading to power-zone "
                        "siblings with probability 0.75",
            rack_mtbf_s=220.0, rack_mttr_s=20.0,
            cascade_probability=0.75, seed=13,
            goodput_floor=0.3),
        ChaosScenario(
            name="gray-icap",
            description="gray ICAP windows: programming slows 4x on "
                        "afflicted boards, nothing crashes",
            icap_mtbf_s=90.0, icap_mttr_s=45.0, seed=17,
            goodput_floor=0.95),
        ChaosScenario(
            name="flaky-ring",
            description="rack segment groups drop 20% of traffic in "
                        "windows; spanning placements pay for it",
            flaky_mtbf_s=80.0, flaky_mttr_s=40.0, seed=19,
            goodput_floor=0.95),
        ChaosScenario(
            name="mixed",
            description="correlated outages and gray faults together",
            rack_mtbf_s=200.0, rack_mttr_s=20.0, icap_mtbf_s=120.0,
            flaky_mtbf_s=120.0, seed=23, goodput_floor=0.4),
        ChaosScenario(
            name="warm-restart",
            description="controller warm-restarts while a flapping "
                        "rack sits quarantined; placements and "
                        "breaker state must survive the restart",
            explicit_events=rack_flap_events(rack1, RACK_FLAPS),
            restart_at=90.0),
        ChaosScenario(
            name="rack-outage-defrag",
            description="whole-rack outages with the background "
                        "defragmenter consolidating between them; "
                        "no migration may land on a failed or "
                        "quarantined board",
            rack_mtbf_s=160.0, rack_mttr_s=25.0, seed=29,
            goodput_floor=0.4, defrag=True),
    ]


# ----------------------------------------------------------------------
# warm restart
# ----------------------------------------------------------------------
#: Controller state transplanted onto the original object after a warm
#: restart.  The experiment loop and the invariant probes close over the
#: controller *object*, so the restored state must move in place; the
#: audit log, tracer, policy, guard, and bitstream database survive the
#: restart by design (they are the persisted / re-attached parts).
_RESTART_ATTRS = (
    "resource_db", "memories", "dram_arbiters",
    "_config_port_free_at", "board_health", "_armed_reconfig_faults",
    "_icap_multiplier", "_segments_of", "deployments",
    "_tenant_blocks", "quotas", "model_dram_contention",
    "_instance_id", "migrations_performed", "migration_pause_s",
)


def simulate_warm_restart(controller: SystemController) -> None:
    """Kill and resurrect the controller in place, mid-run.

    Round-trips the snapshot through JSON (as a real restart would hit
    disk), releases the dead instance's ring flows, rebuilds a fresh
    controller from the snapshot over the same (still running) cluster,
    and transplants the rebuilt state onto the original object -- the
    simulator and the invariant probes hold its identity.  The guard's
    breaker state is restored onto the original guard object for the
    same reason.
    """
    state = json.loads(json.dumps(controller.snapshot()))
    # the dead instance's spanning flows are still registered on the
    # ring; restore() re-registers them under the new instance id
    for deployment in controller.deployments.values():
        if deployment.placement.spans_boards:
            controller.cluster.network.release_flow(
                controller._flow_key(deployment.request_id))
    restored = SystemController.restore(
        controller.cluster, state, controller.bitstream_db,
        policy=controller.policy)
    for attr in _RESTART_ATTRS:
        setattr(controller, attr, getattr(restored, attr))
    if controller.guard is not None \
            and state.get("guard") is not None:
        controller.guard.load_snapshot(state["guard"])
    controller._refresh_fragmentation()


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
def make_invariant_probe(controller: SystemController,
                         guard: "DegradedModeGuard | None",
                         scenario_name: str = "?"):
    """A ``probe(now, manager)`` asserting the per-event invariants.

    Returns ``(probe, state)``; ``state["checks"]`` counts invocations
    so callers can assert the probe actually ran.
    """
    state = {"checks": 0}
    #: request id -> (deployed_at, migrations) of placements already
    #: vetted -- a live migration re-places a request *without*
    #: changing ``deployed_at``, so the move count must be part of the
    #: key or migrated placements would never be re-vetted
    vetted: dict[int, tuple[float, int]] = {}
    #: quarantine set as of the *previous* event -- a deployment may
    #: legitimately sit on a board whose breaker its own programming
    #: faults tripped (quarantined now, open before), or on a board
    #: whose quarantine expired this event (open now, quarantined
    #: before), but never on one quarantined across the whole event
    prev_excluded: frozenset[int] = frozenset()

    def probe(now: float, manager) -> None:
        nonlocal prev_excluded
        state["checks"] += 1
        still_excluded = (prev_excluded & guard.excluded_boards()
                          if guard is not None else frozenset())
        failed = {b for b, h in controller.board_health.items()
                  if h is BoardHealth.FAILED}
        live_blocks = 0
        for rid, deployment in controller.deployments.items():
            live_blocks += deployment.num_blocks
            key = (deployment.deployed_at, deployment.migrations)
            if vetted.get(rid) == key:
                continue
            vetted[rid] = key
            boards = set(deployment.placement.boards)
            bad = still_excluded & boards
            if bad:
                raise ChaosInvariantError(
                    f"[{scenario_name}] t={now:g}: request {rid} "
                    f"placed on quarantined board(s) {sorted(bad)}")
            dead = failed & boards
            if dead:
                raise ChaosInvariantError(
                    f"[{scenario_name}] t={now:g}: request {rid} "
                    f"placed on failed board(s) {sorted(dead)}")
        allocated = controller.resource_db.allocated_count()
        if allocated != live_blocks:
            raise ChaosInvariantError(
                f"[{scenario_name}] t={now:g}: resource DB says "
                f"{allocated} blocks allocated, live deployments "
                f"hold {live_blocks}")
        audit_live = controller.audit.live_requests()
        ctrl_live = set(controller.deployments)
        if audit_live != ctrl_live:
            raise ChaosInvariantError(
                f"[{scenario_name}] t={now:g}: audit replay yields "
                f"live={sorted(audit_live)}, controller has "
                f"{sorted(ctrl_live)}")
        if guard is not None:
            prev_excluded = guard.excluded_boards()

    return probe, state


def _with_restart(controller: SystemController, restart_at: float,
                  inner_probe):
    """Wrap ``inner_probe`` to fire one warm restart at ``restart_at``.

    The restart happens at the first simulator event at or past the
    deadline, *before* the invariants run -- so the probe vets the
    restored state, not the pre-restart state.
    """
    fired = [False]

    def probe(now: float, manager) -> None:
        if not fired[0] and now >= restart_at:
            fired[0] = True
            simulate_warm_restart(controller)
        if inner_probe is not None:
            inner_probe(now, manager)

    return probe


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ScenarioResult:
    """Outcome of one scenario run (JSON-able via :meth:`as_dict`)."""

    scenario: str
    guarded: bool
    summary: SummaryMetrics
    fault_events: int
    invariant_checks: int
    quarantines: int
    probations: int
    shed: int

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "guarded": self.guarded,
            "fault_events": self.fault_events,
            "invariant_checks": self.invariant_checks,
            "quarantines": self.quarantines,
            "probations": self.probations,
            "shed": self.shed,
            "summary": asdict(self.summary),
        }


@dataclass(slots=True)
class CampaignResult:
    results: list[ScenarioResult] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"scenarios": [r.as_dict() for r in self.results]}

    def by_name(self, name: str) -> ScenarioResult:
        for result in self.results:
            if result.scenario == name:
                return result
        raise KeyError(f"no scenario {name!r} in this campaign")


def run_scenario(scenario: ChaosScenario,
                 with_guard: bool = True,
                 guard_config: "GuardConfig | None" = None,
                 tracer: "Tracer | None" = None,
                 timeline: "TimelineAggregator | None" = None,
                 slo: "SLOEngine | None" = None,
                 apps=None,
                 cluster=None,
                 check_invariants: bool = True,
                 ) -> ScenarioResult:
    """Run one scenario end to end, asserting invariants throughout.

    ``with_guard=False`` runs the PR 1 recovery-only baseline (same
    cluster, workload, and schedule; no breaker, no shedding) -- the
    comparison the robustness benchmark records.  Pass ``apps`` /
    ``cluster`` to amortize compilation across scenarios.
    """
    cluster = cluster if cluster is not None \
        else make_cluster(num_boards=scenario.num_boards)
    if len(cluster.boards) != scenario.num_boards:
        raise ValueError(
            f"cluster has {len(cluster.boards)} boards, scenario "
            f"{scenario.name!r} needs {scenario.num_boards}")
    apps = apps if apps is not None else compile_benchmarks(cluster)
    schedule = scenario.schedule()
    schedule.validate_for(scenario.num_boards)
    scenario.domain_map().validate_for(scenario.num_boards)

    controller = SystemController(cluster)
    guard = DegradedModeGuard(guard_config) if with_guard else None
    probe = None
    probe_state = {"checks": 0}
    if check_invariants:
        probe, probe_state = make_invariant_probe(
            controller, guard, scenario.name)
    if scenario.restart_at is not None:
        probe = _with_restart(controller, scenario.restart_at, probe)

    result = run_experiment(
        controller, scenario.workload(), apps,
        faults=schedule, recovery=scenario.recovery,
        tracer=tracer, timeline=timeline, slo=slo,
        guard=guard, probe=probe,
        # verify=True: tenant isolation re-checked after every move
        defrag=DefragConfig(verify=True) if scenario.defrag
        else None)

    # end-of-run invariants: nothing leaked, goodput above the floor
    if controller.deployments:
        raise ChaosInvariantError(
            f"[{scenario.name}] run ended with live deployments")
    if controller.resource_db.allocated_count() != 0:
        raise ChaosInvariantError(
            f"[{scenario.name}] run ended with allocated blocks")
    if result.summary.goodput_fraction < scenario.goodput_floor:
        raise ChaosInvariantError(
            f"[{scenario.name}] goodput "
            f"{result.summary.goodput_fraction:.3f} below floor "
            f"{scenario.goodput_floor}")

    return ScenarioResult(
        scenario=scenario.name,
        guarded=with_guard,
        summary=result.summary,
        fault_events=len(schedule),
        invariant_checks=probe_state["checks"],
        quarantines=guard.quarantine_count if guard else 0,
        probations=guard.probation_count if guard else 0,
        shed=guard.shed_count if guard else 0,
    )


def run_campaign(scenarios: "list[ChaosScenario] | None" = None,
                 with_guard: bool = True,
                 guard_config: "GuardConfig | None" = None,
                 ) -> CampaignResult:
    """Run a scenario matrix; one cluster/app set per board count."""
    scenarios = scenarios if scenarios is not None \
        else standard_scenarios()
    campaign = CampaignResult()
    clusters: dict[int, tuple] = {}
    for scenario in scenarios:
        cached = clusters.get(scenario.num_boards)
        if cached is None:
            cluster = make_cluster(num_boards=scenario.num_boards)
            cached = (cluster, compile_benchmarks(cluster))
            clusters[scenario.num_boards] = cached
        cluster, apps = cached
        campaign.results.append(run_scenario(
            scenario, with_guard=with_guard,
            guard_config=guard_config, apps=apps, cluster=cluster))
    return campaign
