"""Per-request records and experiment summaries (Section 5.5 metrics).

Response time = wait time (queued for resources) + deployment time
(reconfiguration) + service time (accelerator execution) -- "a widely used
metric to measure the quality of service".  The collector also integrates
the paper's secondary metrics: block utilization (overall and while
requests were waiting, the ">93%" figure), concurrency (the "2.3x more
co-running applications" figure), the fraction of deployments spanning
multiple FPGAs (5~40% in the paper) and the latency-insensitive interface
overhead (<0.03%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.stats import percentile
from repro.sim.events import TimeWeightedValue

__all__ = ["RequestRecord", "SummaryMetrics", "MetricsCollector",
           "per_size_response", "jain_fairness"]


def per_size_response(records: "list[RequestRecord]",
                      ) -> dict[str, float]:
    """Mean response time by accelerator size class (S/M/L).

    Head-of-line effects hit size classes differently: under per-device
    allocation a small app waits exactly as long as a large one, while
    fine-grained sharing lets small apps slip into fragments.
    """
    by_size: dict[str, list[float]] = {}
    for record in records:
        if record.finished:
            by_size.setdefault(record.size, []).append(
                record.response_s)
    return {size: sum(v) / len(v) for size, v in by_size.items()}


def jain_fairness(records: "list[RequestRecord]") -> float:
    """Jain's fairness index over per-request slowdown.

    Slowdown = response / service; 1.0 means every tenant suffered the
    same relative delay, 1/n means one tenant absorbed all of it.
    """
    slowdowns = [r.response_s / r.service_time_s for r in records
                 if r.finished and r.service_time_s > 0]
    if not slowdowns:
        return 1.0
    num = sum(slowdowns) ** 2
    den = len(slowdowns) * sum(s * s for s in slowdowns)
    return num / den


@dataclass(slots=True)
class RequestRecord:
    """Lifecycle timestamps of one request."""

    request_id: int
    app_name: str
    size: str
    num_blocks: int
    arrival_s: float
    deployed_s: float = math.nan
    completed_s: float = math.nan
    boards: int = 0
    spans_boards: bool = False
    comm_slowdown: float = 1.0
    latency_overhead_fraction: float = 0.0
    reconfig_time_s: float = 0.0
    service_time_s: float = 0.0
    # availability accounting (zero unless a fault schedule ran)
    #: times this request's deployment was evicted by a board failure
    interruptions: int = 0
    #: evictions recovered in place by migration (progress preserved)
    recoveries: int = 0
    #: service-seconds of progress wiped out by evictions (re-queued
    #: attempts restart from zero; migrations lose nothing)
    lost_service_s: float = 0.0
    #: the request could never be (re)placed before the run ended
    permanently_failed: bool = False
    #: shed from the queue by the degraded-mode guard (never deployed
    #: in this run; no progress was lost because none existed)
    shed: bool = False
    #: admitted only because a defragmenter pass consolidated the
    #: cluster right before this request deployed (rejected-request
    #: recovery: the stock controller had just declined it)
    readmitted: bool = False

    @property
    def wait_s(self) -> float:
        return self.deployed_s - self.arrival_s

    @property
    def response_s(self) -> float:
        return self.completed_s - self.arrival_s

    @property
    def finished(self) -> bool:
        return not math.isnan(self.completed_s)


@dataclass(frozen=True, slots=True)
class SummaryMetrics:
    """Aggregates of one experiment run."""

    manager: str
    num_requests: int
    mean_response_s: float
    p50_response_s: float
    p95_response_s: float
    mean_wait_s: float
    mean_service_s: float
    makespan_s: float
    block_utilization: float          # time-avg over the busy period
    block_utilization_pressured: float  # while requests were waiting
    mean_concurrency: float
    peak_concurrency: int
    multi_fpga_fraction: float
    max_latency_overhead: float
    mean_reconfig_s: float
    peak_queue_len: int = 0
    # availability (defaults describe a fault-free run exactly)
    interruptions: float = 0.0
    recoveries: float = 0.0
    permanently_failed: float = 0.0
    mean_time_to_recovery_s: float = 0.0
    #: useful service-seconds / (useful + lost) -- 1.0 means no work
    #: was ever thrown away
    goodput_fraction: float = 1.0
    # SLO accounting (zero unless run_experiment(slo=...) evaluated
    # rules online; the defaults describe an unmonitored run exactly,
    # so traced and untraced summaries stay comparable)
    #: rules evaluated
    slo_rules: float = 0.0
    #: violation episodes (ok -> violated transitions, all rules)
    slo_violations: float = 0.0
    #: simulated seconds spent with >= 1 rule in violation
    slo_violated_s: float = 0.0
    #: episodes that healed before the run ended; a fault-injection run
    #: "recovered within SLO" iff this equals ``slo_violations``
    slo_recovered: float = 0.0
    # degraded-mode control (zero unless a guard / fault schedule ran;
    # the defaults describe an unguarded fault-free run exactly)
    #: queued requests shed by the guard instead of served
    shed_requests: float = 0.0
    #: boards quarantined by the per-board circuit breaker
    quarantines: float = 0.0
    #: quarantined boards re-admitted on probation
    probations: float = 0.0
    #: simulated seconds the substrate spent degraded (failed boards,
    #: degraded/flaky segments, slow ICAPs, or open breakers)
    degraded_s: float = 0.0
    # live migration / defragmentation (zero unless the controller
    # migrated or run_experiment(defrag=...) ran; the defaults
    # describe a migration-free run exactly)
    #: live migrations executed (defrag passes + proactive recovery)
    migrations: float = 0.0
    #: total pause seconds charged to migrated requests
    migration_pause_s: float = 0.0
    #: requests admitted right after a defrag pass consolidated the
    #: cluster (rejected-request recovery vs. static allocation)
    readmitted_requests: float = 0.0

    def normalized_response(self, baseline: "SummaryMetrics") -> float:
        if baseline.mean_response_s == 0:
            return math.inf
        return self.mean_response_s / baseline.mean_response_s


class MetricsCollector:
    """Accumulates records and time-weighted state during a run."""

    def __init__(self, manager_name: str, capacity_blocks: float) -> None:
        self.manager_name = manager_name
        self.capacity_blocks = capacity_blocks
        self.records: dict[int, RequestRecord] = {}
        self.busy_blocks = TimeWeightedValue()
        self.running_apps = TimeWeightedValue()
        self.queue_len = TimeWeightedValue()
        self.first_arrival = math.inf
        self.last_completion = 0.0
        #: running maxima, maintained per state snapshot so summarize()
        #: does not rescan the full step-function histories
        self._peak_running = 0
        self._peak_queue = 0
        #: eviction-to-redeployment durations (fault runs only)
        self.recovery_durations: list[float] = []

    # ------------------------------------------------------------------
    def add_request(self, record: RequestRecord) -> None:
        self.records[record.request_id] = record
        self.first_arrival = min(self.first_arrival, record.arrival_s)

    def record_state(self, now: float, busy_blocks: float,
                     running: int, queued: int) -> None:
        self.busy_blocks.record(now, busy_blocks)
        self.running_apps.record(now, running)
        self.queue_len.record(now, queued)
        if running > self._peak_running:
            self._peak_running = int(running)
        if queued > self._peak_queue:
            self._peak_queue = int(queued)

    def complete(self, request_id: int, now: float) -> None:
        self.records[request_id].completed_s = now
        self.last_completion = max(self.last_completion, now)

    def record_recovery(self, duration_s: float) -> None:
        """One eviction healed: time from eviction until the
        replacement deployment was in place (programmed)."""
        self.recovery_durations.append(duration_s)

    def export_metrics(self, registry) -> None:
        """Feed end-of-run aggregates into a
        :class:`repro.obs.metrics.MetricsRegistry`.

        Gauges carry the summary's headline figures; the reconfiguration
        and service-time distributions are folded into histograms so the
        Prometheus export carries percentiles, not just means.  Labeled
        by manager, so several runs share one registry.
        """
        summary = self.summarize()
        label = {"manager": self.manager_name}
        gauges = {
            "block_utilization": (
                "time-averaged busy fraction over the run",
                summary.block_utilization),
            "block_utilization_pressured": (
                "busy fraction while requests were waiting",
                summary.block_utilization_pressured),
            "mean_concurrency": ("time-averaged co-running apps",
                                 summary.mean_concurrency),
            "peak_concurrency": ("max co-running apps",
                                 float(summary.peak_concurrency)),
            "peak_queue_len": ("max queued requests",
                               float(summary.peak_queue_len)),
            "makespan_seconds": ("first arrival to last completion",
                                 summary.makespan_s),
            "goodput_fraction": ("useful / (useful + lost) service",
                                 summary.goodput_fraction),
            "multi_fpga_fraction": ("deployments spanning boards",
                                    summary.multi_fpga_fraction),
        }
        for name, (help_text, value) in gauges.items():
            registry.gauge(name, help_text, **label).set(value)
        reconfig = registry.histogram(
            "reconfig_seconds", "per-request reconfiguration time",
            **label)
        service = registry.histogram(
            "service_seconds", "per-request service time", **label)
        for record in self.records.values():
            if record.finished:
                reconfig.observe(record.reconfig_time_s)
                service.observe(record.service_time_s)

    # ------------------------------------------------------------------
    def summarize(self) -> SummaryMetrics:
        done = [r for r in self.records.values() if r.finished]
        if not done:
            raise RuntimeError("no request completed; nothing to report")
        responses = sorted(r.response_s for r in done)
        every = list(self.records.values())
        useful = sum(r.service_time_s for r in done)
        lost = sum(r.lost_service_s for r in every)
        goodput = useful / (useful + lost) if useful + lost else 1.0
        mttr = (sum(self.recovery_durations)
                / len(self.recovery_durations)
                if self.recovery_durations else 0.0)
        t0 = self.first_arrival
        t1 = self.last_completion
        peak = self._peak_running
        return SummaryMetrics(
            manager=self.manager_name,
            num_requests=len(done),
            mean_response_s=sum(responses) / len(responses),
            p50_response_s=percentile(responses, 0.50),
            p95_response_s=percentile(responses, 0.95),
            mean_wait_s=sum(r.wait_s for r in done) / len(done),
            mean_service_s=(sum(r.service_time_s for r in done)
                            / len(done)),
            makespan_s=t1 - t0,
            block_utilization=(self.busy_blocks.average(t0, t1)
                               / self.capacity_blocks),
            block_utilization_pressured=(
                self.busy_blocks.average_where(self.queue_len, t0, t1)
                / self.capacity_blocks),
            mean_concurrency=self.running_apps.average(t0, t1),
            peak_concurrency=peak,
            multi_fpga_fraction=(sum(1 for r in done if r.spans_boards)
                                 / len(done)),
            max_latency_overhead=max(
                (r.latency_overhead_fraction for r in done), default=0.0),
            mean_reconfig_s=(sum(r.reconfig_time_s for r in done)
                             / len(done)),
            peak_queue_len=self._peak_queue,
            interruptions=float(sum(r.interruptions for r in every)),
            recoveries=float(sum(r.recoveries for r in every)),
            permanently_failed=float(
                sum(1 for r in every if r.permanently_failed)),
            mean_time_to_recovery_s=mttr,
            goodput_fraction=goodput,
            shed_requests=float(sum(1 for r in every if r.shed)),
            readmitted_requests=float(
                sum(1 for r in every if r.readmitted)),
        )
