"""The System-Layer experiment loop (Fig. 9 / Fig. 10 driver).

``run_experiment`` replays one workload set against one manager:

- arrivals enter a FIFO queue;
- whenever resources change (arrival or completion) the queue head is
  offered to the manager; strict FIFO order preserves fairness across
  managers (optionally ``backfill=True`` lets later requests jump a
  blocked head, an ablation);
- a successful deployment schedules its completion after reconfiguration
  plus (communication-adjusted) service time;
- managers may impose ``corunner_penalties`` (AmorphOS's full-device
  reconfiguration pauses co-residents), applied via lazy event
  invalidation;
- a :class:`repro.faults.FaultSchedule` may be injected
  (``faults=...``): board fail-stops evict running deployments (the
  progress of re-queued victims is lost and recorded; migrated victims
  resume), completions on dead boards are invalidated lazily, degraded
  ring segments feed the service model of later placements, and the
  summary grows availability accounting (interruptions, recoveries,
  mean time to recovery, goodput).  With no schedule the fault machinery
  is entirely dormant -- results are bit-identical to the pre-fault
  code path.

``compare_managers`` runs all managers over replicated workload sets and
averages -- the paper's methodology.
"""

from __future__ import annotations

import gc
from bisect import insort
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.baselines.amorphos import AmorphOSManager
from repro.baselines.base import ClusterManager
from repro.baselines.per_device import PerDeviceManager
from repro.baselines.slot_based import SlotBasedManager
from repro.cluster.cluster import FPGACluster, make_cluster
from repro.compiler.bitstream import CompiledApp
from repro.compiler.cache import CompileCache
from repro.compiler.service import CompileService
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryPolicy, \
    resolve_recovery_policy
from repro.faults.schedule import FaultSchedule
from repro.hls.kernels import all_benchmarks
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.obs.timeline import TimelineAggregator
from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.runtime.defrag import DefragConfig, Defragmenter
from repro.runtime.resource_db import ResourceDB
from repro.sim.events import ArrayEventQueue, EventQueue
from repro.sim.metrics import MetricsCollector, RequestRecord, \
    SummaryMetrics
from repro.sim.workload import Request

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "compile_benchmarks",
    "compare_managers",
    "MANAGER_FACTORIES",
]


def compile_benchmarks(cluster: FPGACluster,
                       specs=None,
                       cache: "CompileCache | None" = None,
                       jobs: int = 1,
                       tracer: Tracer | None = None,
                       ) -> dict[str, CompiledApp]:
    """Offline-compile the benchmark set against the cluster's abstraction.

    One compile per application -- this is the ViTAL story; the same
    artifacts also drive the baselines, which in reality would each need
    their own (and in AmorphOS's case, combinatorial) compilation.

    ``cache`` reuses previously compiled artifacts (one compile per
    (spec, abstraction, flow config), ever); ``jobs`` fans cache misses
    out across worker processes.  Both default to the sequential
    uncached path, which is bit-identical to what they produce.
    """
    specs = specs if specs is not None else all_benchmarks()
    service = CompileService(fabric=cluster.partition, cache=cache,
                             tracer=tracer)
    return service.compile_many(specs, jobs=jobs)


@dataclass(slots=True)
class ExperimentResult:
    """One (manager, workload set) run."""

    manager_name: str
    summary: SummaryMetrics
    records: list[RequestRecord] = field(default_factory=list)
    extras: dict[str, float] = field(default_factory=dict)


class _ExperimentMetrics:
    """Event-loop instruments of one run, labels bound once up front."""

    __slots__ = ("registry", "manager", "arrivals", "deploys",
                 "completions", "faults", "evictions", "recoveries",
                 "wait_s", "response_s")

    def __init__(self, registry: MetricsRegistry, manager: str) -> None:
        self.registry = registry
        self.manager = manager
        label = {"manager": manager}
        self.arrivals = registry.counter(
            "requests_total", "requests that entered the queue",
            **label)
        self.deploys = registry.counter(
            "deploys_total", "successful deployments (incl. redeploys)",
            **label)
        self.completions = registry.counter(
            "completions_total", "requests that finished", **label)
        self.faults = registry.counter(
            "fault_events_total", "fault-schedule events applied",
            **label)
        self.evictions = registry.counter(
            "evictions_total", "deployments evicted by board failures",
            **label)
        self.recoveries = registry.counter(
            "recoveries_total", "evictions healed by migration",
            **label)
        self.wait_s = registry.histogram(
            "wait_seconds", "arrival-to-deployment wait", **label)
        self.response_s = registry.histogram(
            "response_seconds", "arrival-to-completion response",
            **label)

    def finish(self, collector: MetricsCollector) -> None:
        """Fold the collector's end-of-run aggregates into the registry."""
        collector.export_metrics(self.registry)


def run_experiment(manager: ClusterManager, requests: list[Request],
                   apps: dict[str, CompiledApp],
                   backfill: bool = False,
                   discipline: str | None = None,
                   faults: FaultSchedule | None = None,
                   recovery: "RecoveryPolicy | str | None" = None,
                   tracer: Tracer | None = None,
                   metrics: MetricsRegistry | None = None,
                   timeline: TimelineAggregator | None = None,
                   slo: SLOEngine | None = None,
                   guard=None,
                   probe: "Callable[[float, ClusterManager], None] | None"
                   = None,
                   defrag: "Defragmenter | DefragConfig | bool | None"
                   = None,
                   profile=None,
                   engine: str = "array",
                   ) -> ExperimentResult:
    """Replay ``requests`` against ``manager``; see module docstring.

    ``discipline`` selects the queueing policy: ``"fifo"`` (default,
    strict head-of-line), ``"backfill"`` (later requests may jump a
    blocked head), or ``"sjf"`` (shortest nominal service first --
    starvation-prone, provided for the scheduling ablation).  The legacy
    ``backfill=True`` flag is equivalent to ``discipline="backfill"``.

    ``faults`` injects a deterministic fault schedule; ``recovery``
    picks what happens to evicted deployments (``"requeue"``, the
    default, or ``"migrate"`` / a :class:`RecoveryPolicy` instance).

    ``tracer`` records the event loop's decisions (arrivals, deploys,
    completions, faults, evictions) with sim-time timestamps; if the
    manager can carry a tracer (``attach_tracer`` or a ``tracer``
    attribute, as :class:`SystemController` and its policy do), it is
    attached for the run so controller-level decisions land in the same
    stream.  ``metrics`` accumulates counters/histograms labeled by
    manager name.  Both default to ``None`` -- the simulation's results
    are identical with or without them; they only observe.

    ``timeline`` streams the run into a
    :class:`~repro.obs.timeline.TimelineAggregator` (configured from
    the manager's own capacity if the caller left it bare) and ``slo``
    evaluates :class:`~repro.obs.slo.SLOEngine` rules at every bucket
    close, emitting ``slo.violation`` / ``slo.recovered`` events into
    the trace and folding totals into the summary's ``slo_*`` fields.
    Either implies the other's plumbing: health monitoring without an
    explicit ``tracer`` uses an internal non-retaining tracer, so
    memory stays O(1) in trace length.  Like the tracer, both only
    observe -- simulation results are bit-identical with health
    monitoring on or off.

    ``guard`` attaches a
    :class:`~repro.runtime.guard.DegradedModeGuard` when the manager
    supports one (``attach_guard``; others ignore it): quarantined
    boards leave the allocatable set, reconfig retries use the guard's
    jittered budget, and after every arrival or fault the guard may
    shed queued requests (recorded per request and in the summary's
    ``shed_requests``).  If ``slo`` is also given, sustained SLO
    violations become a shedding trigger.  ``probe(now, manager)``
    is called after every processed event -- the chaos harness uses it
    to assert invariants mid-run; it must not mutate anything.

    ``defrag`` attaches a background
    :class:`~repro.runtime.defrag.Defragmenter` when the manager
    supports live migration (``migrate``; baselines ignore it): after
    each drain the defragmenter may consolidate the cluster toward the
    queue head's footprint, its migration pauses land on the moved
    requests as rescheduled completions, and a request that deploys
    right after a pass is counted in ``readmitted_requests``.  Pass
    ``True`` for defaults, a :class:`DefragConfig` to tune, or a
    prebuilt :class:`Defragmenter`.  ``None`` (default) leaves the run
    bit-identical to a defrag-free build.

    ``profile`` attaches a :class:`~repro.obs.profile.PhaseProfiler`:
    the drain / defrag / fault sections accumulate as nested phases
    (``sim.admit`` / ``sim.defrag`` / ``sim.fault`` -- these overlap,
    since faults drain and drains defrag, which is why they are nested
    and excluded from the top-level coverage sum), every popped event
    bumps ``events_popped`` and advances the simulated makespan, and
    the profiler subscribes to the trace stream for op counters.  Like
    every other observer, it never changes results.

    ``engine`` selects the event queue: ``"array"`` (default), the
    struct-of-arrays :class:`~repro.sim.events.ArrayEventQueue` whose
    pop order is provably identical to the heapq oracle's, or
    ``"heapq"``, the original :class:`~repro.sim.events.EventQueue`
    (the differential oracle the equivalence tests replay).  Results
    are byte-identical across engines; additionally, *unobserved*
    array runs (no tracer / timeline / SLO engine, strict FIFO, no
    guard / defragmenter / probe) take a cohort fast path: once the
    queue head is blocked, nothing before the next completion or fault
    can unblock it, so the pending run of arrivals is popped and
    enqueued in one pass without re-running the (provably futile)
    policy search per arrival.  The skipped searches would all have
    failed, so deployments, traces-when-enabled, metrics and summaries
    are unchanged -- only the controller's internal audit log records
    fewer redundant retry rejections.  The same observability gate
    also enables a vectorized admission prefilter for ``backfill``
    scans: a one-shot :meth:`~repro.runtime.resource_db.ResourceDB`
    capacity bound culls queued requests that cannot fit anywhere
    before their per-request policy search runs.
    """
    if engine not in ("array", "heapq"):
        raise ValueError(f"unknown event engine {engine!r}")
    if discipline is None:
        discipline = "backfill" if backfill else "fifo"
    if discipline not in ("fifo", "backfill", "sjf"):
        raise ValueError(f"unknown discipline {discipline!r}")
    backfill = discipline == "backfill"
    # computed before the internal tracer plumbing below: timeline /
    # SLO monitoring create a non-retaining tracer with *event sinks*
    # that must see every event, which disables the fast paths; a
    # profile-only internal tracer merely folds op counters and keeps
    # them enabled (fewer redundant searches is the point)
    trace_observed = (tracer is not None or timeline is not None
                      or slo is not None)

    if slo is not None and timeline is None:
        timeline = TimelineAggregator()
    if timeline is not None:
        if tracer is None:
            # stream head only: forwards to the timeline/SLO sinks
            # without retaining entries
            tracer = Tracer(retain=False)
        if not timeline.configured:
            cluster = getattr(manager, "cluster", None)
            timeline.configure(
                manager.capacity_blocks(),
                num_boards=len(cluster.boards)
                if cluster is not None else None)
        # sink order matters: the timeline closes bucket k when the
        # first event past its boundary arrives, and the SLO engine's
        # own sink must not have seen that event yet when it evaluates
        # bucket k -- timeline first, SLO second (via bind)
        tracer.add_sink(timeline.on_record)
        if slo is not None:
            slo.bind(timeline, tracer)

    if profile is not None:
        if tracer is None:
            # counters only: a non-retaining stream head feeds the
            # profiler's sink without accumulating entries
            tracer = Tracer(retain=False)
        profile.attach_tracer(tracer)

    if tracer is not None:
        if hasattr(manager, "attach_tracer"):
            manager.attach_tracer(tracer)
        elif hasattr(manager, "tracer"):
            manager.tracer = tracer
    if metrics is not None and hasattr(manager, "attach_metrics"):
        manager.attach_metrics(metrics)
    if guard is not None:
        if hasattr(manager, "attach_guard"):
            manager.attach_guard(guard)
            if slo is not None:
                guard.bind_slo(slo)
        else:
            guard = None  # managers without guard hooks ignore it
    defragmenter: Defragmenter | None = None
    if defrag is not None and defrag is not False:
        if isinstance(defrag, Defragmenter):
            defragmenter = defrag
        elif hasattr(manager, "migrate"):
            config = defrag if isinstance(defrag, DefragConfig) \
                else None
            defragmenter = Defragmenter(manager, config)
    mx = _ExperimentMetrics(metrics, manager.name) if metrics is not None \
        else None

    # fast-path gates (see the ``engine`` docs above).  The admission
    # prefilter needs the flat ResourceDB mirrors (the rescan oracle
    # subclass recomputes them; keep it on the audited path) and no
    # observer of the per-request search stream.
    db = getattr(manager, "resource_db", None)
    prefilter_db = db if (not trace_observed
                          and type(db) is ResourceDB) else None
    policy_max_boards = getattr(getattr(manager, "policy", None),
                                "max_boards", None)

    events = ArrayEventQueue() if engine == "array" else EventQueue()
    events.push_many((request.arrival_s, "arrival", request)
                     for request in requests)

    fault_schedule = faults if faults else None
    injector: FaultInjector | None = None
    recovery_policy = None
    if fault_schedule is not None:
        injector = FaultInjector(manager)
        recovery_policy = resolve_recovery_policy(recovery)
        events.push_many((fault.time_s, "fault", fault)
                         for fault in fault_schedule)

    collector = MetricsCollector(manager.name, manager.capacity_blocks())
    # sjf keeps the queue as a plain list ordered by (nominal service,
    # request id) -- maintained incrementally by insort on admit instead
    # of re-sorting the whole queue on every drain.  The secondary key
    # reproduces the old stable re-sort exactly: request ids are issued
    # in arrival order, so (service, id) == the old sort's tie-break.
    queue: "deque[Request] | list[Request]" = \
        [] if discipline == "sjf" else deque()
    sjf_key = (lambda r: (r.spec.service_time_s(), r.request_id)) \
        if discipline == "sjf" else None
    live: dict[int, object] = {}          # request id -> Deployment
    completion_at: dict[int, float] = {}  # authoritative completion time
    request_of: dict[int, Request] = {}   # for re-queueing evictions
    evicted_at: dict[int, float] = {}     # open recoveries (for MTTR)
    pending_readmit: set[int] = set()     # defrag just cleared a path

    def state_snapshot(now: float) -> None:
        collector.record_state(now, manager.busy_blocks(), len(live),
                               len(queue))

    def schedule_completion(request_id: int, when: float) -> None:
        completion_at[request_id] = when
        events.push(when, "completion", request_id)

    def maybe_shed(now: float) -> None:
        if guard is None or not queue:
            return
        victims = guard.shed_victims(now, queue)
        for request in victims:
            queue.remove(request)
            record = collector.records[request.request_id]
            record.shed = True
            # an open recovery dies with the shed: the request will
            # never redeploy, so there is no MTTR sample to close
            evicted_at.pop(request.request_id, None)
            if tracer:
                tracer.event("sim.shed", t=now,
                             request=request.request_id,
                             app=record.app_name,
                             reason="load-shed")

    def try_drain(now: float) -> None:
        while queue:
            progressed = False
            if backfill and prefilter_db is not None and len(queue) > 2:
                # vectorized admission prefilter: one capacity bound
                # over the whole cohort culls requests that cannot fit
                # anywhere (more blocks than free, or more than the
                # policy's max_boards fullest boards hold) before their
                # per-request policy search runs.  The bound is
                # optimistic -- quotas, guards and adjacency only
                # shrink feasibility -- so every culled search would
                # have failed; recomputed per pass since deploys free
                # nothing but consume capacity monotonically.
                needed = np.fromiter(
                    (apps[r.spec.name].num_blocks for r in queue),
                    dtype=np.int64, count=len(queue))
                scan = np.nonzero(
                    prefilter_db.fit_mask_requests(
                        needed, policy_max_boards))[0]
            else:
                scan = range(len(queue)) if backfill else range(1)
            for i in scan:
                request = queue[i]
                app = apps[request.spec.name]
                deployment = manager.try_deploy(app, request.request_id,
                                                now)
                if deployment is None:
                    continue
                del queue[i]
                live[request.request_id] = deployment
                record = collector.records[request.request_id]
                if request.request_id in pending_readmit:
                    # a defrag pass consolidated right before this
                    # deploy: the stock controller had just declined it
                    record.readmitted = True
                    pending_readmit.discard(request.request_id)
                record.deployed_s = now
                record.num_blocks = deployment.num_blocks
                record.boards = deployment.placement.num_boards
                record.spans_boards = deployment.spans_boards
                record.comm_slowdown = deployment.comm_slowdown
                record.latency_overhead_fraction = \
                    deployment.latency_overhead_fraction
                if tracer:
                    # payload reuses the record's freshly computed
                    # fields -- no second pass over the placement
                    tracer.event(
                        "sim.deploy", t=now,
                        request=request.request_id,
                        app=record.app_name,
                        wait_s=now - request.arrival_s,
                        blocks=record.num_blocks,
                        boards=record.boards,
                        spans=record.spans_boards,
                        # lets a trace consumer (the SLO engine) close
                        # an open recovery the way the collector does:
                        # at deploy + programming time
                        reconfig_s=deployment.reconfig_time_s)
                if mx is not None:
                    mx.deploys.inc()
                    mx.wait_s.observe(now - request.arrival_s)
                # accumulate (like the migration path does): a re-queued
                # eviction victim redeploys through here, and its earlier
                # attempts' reconfigurations were real ICAP time
                record.reconfig_time_s += deployment.reconfig_time_s
                record.service_time_s = deployment.service_time_s
                if request.request_id in evicted_at:
                    # an evicted request is back on silicon: recovery
                    # completes when its blocks finish programming
                    collector.record_recovery(
                        now + deployment.reconfig_time_s
                        - evicted_at.pop(request.request_id))
                schedule_completion(request.request_id,
                                    deployment.completion_time)
                for rid, penalty in \
                        deployment.corunner_penalties.items():
                    if rid in completion_at:
                        schedule_completion(rid,
                                            completion_at[rid] + penalty)
                progressed = True
                break
            if not progressed:
                return

    def run_defrag(now: float) -> None:
        """One background consolidation opportunity, queue permitting.

        The drain loop just stalled on the queue head (or the queue is
        empty and only the threshold trigger applies); the defragmenter
        decides whether a pass is warranted and affordable.  Migration
        pauses reschedule the moved requests' completions exactly like
        ``corunner_penalties``, then the head gets one more chance.
        """
        if defragmenter is None:
            return
        head = queue[0] if queue else None
        needed = apps[head.spec.name].num_blocks \
            if head is not None else None
        penalties = defragmenter.maybe_pass(now, needed_blocks=needed)
        if not penalties:
            return
        for rid, penalty in penalties.items():
            if rid in completion_at:
                schedule_completion(rid, completion_at[rid] + penalty)
        if head is not None:
            pending_readmit.add(head.request_id)
        try_drain(now)
        if head is not None and head.request_id not in live:
            # the pass didn't get it on silicon; a later natural deploy
            # is not a readmission
            pending_readmit.discard(head.request_id)

    def on_fault(fault, now: float) -> None:
        if tracer:
            tracer.event("sim.fault", t=now,
                         fault=type(fault).__name__,
                         board=getattr(fault, "board", None),
                         segment=getattr(fault, "segment", None))
        if mx is not None:
            mx.faults.inc()
        evicted = injector.apply(fault, now)
        requeue: list[Request] = []
        for deployment in evicted:
            rid = deployment.request_id
            if rid not in live:
                continue
            del live[rid]
            # lazy invalidation: the stale completion event finds no
            # matching authoritative time and is skipped
            completion_at.pop(rid, None)
            record = collector.records[rid]
            record.interruptions += 1
            progress = max(0.0, now - (record.deployed_s
                                       + record.reconfig_time_s))
            progress = min(progress, record.service_time_s)
            if mx is not None:
                mx.evictions.inc()
            replacement = recovery_policy.recover(manager, deployment,
                                                  now)
            if replacement is not None:
                # progress survives the move; the new placement may
                # run at a different (spanning-adjusted) rate
                frac_done = (progress / record.service_time_s
                             if record.service_time_s > 0 else 1.0)
                remaining = (1.0 - frac_done) \
                    * replacement.service_time_s
                live[rid] = replacement
                record.recoveries += 1
                record.num_blocks = replacement.num_blocks
                record.boards = replacement.placement.num_boards
                record.spans_boards = (record.spans_boards
                                       or replacement.spans_boards)
                record.comm_slowdown = max(record.comm_slowdown,
                                           replacement.comm_slowdown)
                record.reconfig_time_s += replacement.reconfig_time_s
                record.service_time_s = replacement.service_time_s
                collector.record_recovery(replacement.reconfig_time_s)
                if tracer:
                    tracer.event("sim.evict", t=now, request=rid,
                                 reason="migrated",
                                 progress_kept_s=progress,
                                 recovery_s=replacement.reconfig_time_s)
                if mx is not None:
                    mx.recoveries.inc()
                schedule_completion(
                    rid, now + replacement.reconfig_time_s + remaining)
            else:
                # re-queue: every service-second of this attempt is lost
                record.lost_service_s += progress
                evicted_at[rid] = now
                requeue.append(request_of[rid])
                if tracer:
                    tracer.event("sim.evict", t=now, request=rid,
                                 reason="requeued",
                                 progress_lost_s=progress)
        if requeue:
            # evictees re-enter in original arrival order (they are
            # older than anything currently queued); under sjf the
            # merge restores the queue's (service, id) sort invariant
            merged = sorted(list(queue) + requeue,
                            key=sjf_key or (lambda r: r.request_id))
            queue.clear()
            queue.extend(merged)
        try_drain(now)
        run_defrag(now)
        maybe_shed(now)

    if profile is not None:
        # rebind the section closures through the profiler; name
        # lookup happens at call time, so faults that drain (and
        # drains that defrag) charge the inner phase too -- the
        # sections overlap by design, hence nested=True throughout
        _drain_raw, _defrag_raw, _fault_raw = \
            try_drain, run_defrag, on_fault

        def try_drain(now: float) -> None:
            with profile.phase("sim.admit", nested=True, sim_t=now):
                _drain_raw(now)

        def run_defrag(now: float) -> None:
            with profile.phase("sim.defrag", nested=True, sim_t=now):
                _defrag_raw(now)

        def on_fault(fault, now: float) -> None:
            with profile.phase("sim.fault", nested=True, sim_t=now):
                _fault_raw(fault, now)

    # degraded-time integral: simulated seconds with any fault live on
    # the substrate or any breaker open.  Sampled per processed event
    # (the substrate only changes at events); zero cost when neither
    # fault machinery nor guard is active.
    degraded_s = 0.0
    monitor_degraded = injector is not None or guard is not None
    was_degraded = False
    prev_t = 0.0

    # cohort fast path (array engine only): under strict FIFO with no
    # guard / defragmenter / probe and nothing observing the trace
    # stream, a non-empty queue after any event means the head is
    # blocked, and arrivals never free resources -- so the pending run
    # of arrivals can be enqueued in bulk without the per-arrival
    # (provably futile) drain.  See the ``engine`` docs above.
    fast_cohorts = (engine == "array" and discipline == "fifo"
                    and not trace_observed and guard is None
                    and defragmenter is None and probe is None)

    # Pause automatic garbage collection for the duration of the event
    # loop.  A long run accumulates hundreds of thousands of long-lived
    # containers (audit entries, request records, step-function points),
    # and every full generational collection rescans that entire heap --
    # a superlinear tax that dominated million-request runs (~1.6x wall
    # at 1024 boards x 100k requests).  The loop allocates no reference
    # cycles of its own; anything cyclic is reclaimed once collection
    # resumes after the loop, so observable behavior is unchanged.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while events:
            now, kind, payload = events.pop3()
            if tracer:
                tracer.now = now
            if profile is not None:
                profile.count("events_popped")
                profile.mark_sim(now)
            if monitor_degraded and was_degraded:
                degraded_s += now - prev_t
            if kind == "arrival":
                request: Request = payload
                app_name = request.spec.name
                size = request.spec.size.value
                collector.add_request(RequestRecord(
                    request_id=request.request_id,
                    app_name=app_name,
                    size=size,
                    num_blocks=0,
                    arrival_s=request.arrival_s,
                ))
                if fault_schedule is not None:
                    request_of[request.request_id] = request
                if sjf_key is not None:
                    insort(queue, request, key=sjf_key)
                else:
                    queue.append(request)
                if tracer:
                    tracer.event("sim.arrival", t=now,
                                 request=request.request_id,
                                 app=app_name, size=size)
                if mx is not None:
                    mx.arrivals.inc()
                try_drain(now)
                run_defrag(now)
                maybe_shed(now)
            elif kind == "completion":
                request_id: int = payload
                if completion_at.get(request_id) != now:
                    continue  # superseded by a penalty reschedule
                deployment = live.pop(request_id)
                del completion_at[request_id]
                manager.release(deployment, now)
                collector.complete(request_id, now)
                if tracer:
                    record = collector.records[request_id]
                    tracer.event("sim.complete", t=now,
                                 request=request_id,
                                 response_s=record.response_s,
                                 service_s=record.service_time_s)
                if mx is not None:
                    mx.completions.inc()
                    mx.response_s.observe(
                        collector.records[request_id].response_s)
                try_drain(now)
                run_defrag(now)
            elif kind == "fault":
                on_fault(payload, now)
            state_snapshot(now)
            if monitor_degraded:
                was_degraded = (
                    (injector is not None
                     and injector.substrate_degraded())
                    or (guard is not None and guard.degraded()))
                prev_t = now
            if probe is not None:
                probe(now, manager)
            if fast_cohorts and queue:
                # head blocked -- bulk-enqueue the pending arrival run
                # (bounded by the next completion/fault, which is the
                # only thing that can unblock it).  Per-arrival
                # bookkeeping mirrors the branch above exactly: the
                # degraded integral telescopes in the same float order,
                # and record_state sees the same (constant) busy /
                # running values at every arrival timestamp.
                run = events.pop_arrival_run()
                if run:
                    busy = manager.busy_blocks()
                    running = len(live)
                    qlen = len(queue)
                    for request in run:
                        t = request.arrival_s
                        if monitor_degraded and was_degraded:
                            degraded_s += t - prev_t
                        collector.add_request(RequestRecord(
                            request_id=request.request_id,
                            app_name=request.spec.name,
                            size=request.spec.size.value,
                            num_blocks=0,
                            arrival_s=t,
                        ))
                        if fault_schedule is not None:
                            request_of[request.request_id] = request
                        queue.append(request)
                        if mx is not None:
                            mx.arrivals.inc()
                        qlen += 1
                        collector.record_state(t, busy, running, qlen)
                        if monitor_degraded:
                            prev_t = t
                    if profile is not None:
                        profile.count("events_popped", len(run))
                        profile.count("arrival_cohorts")
                        profile.mark_sim(run[-1].arrival_s)
    finally:
        if gc_was_enabled:
            gc.enable()
        if injector is not None:
            # heal the (shared) substrate so the next experiment on
            # this cluster starts fault-free
            injector.reset(collector.last_completion)

    if live:
        raise RuntimeError(
            f"{manager.name}: {len(queue)} queued / {len(live)} live "
            "requests never completed (manager starvation bug)")
    if queue:
        if fault_schedule is None:
            raise RuntimeError(
                f"{manager.name}: {len(queue)} queued requests never "
                "completed (manager starvation bug)")
        # capacity died under them and never came back: graceful
        # degradation, recorded rather than raised
        for request in queue:
            collector.records[request.request_id] \
                .permanently_failed = True
            if tracer:
                tracer.event("sim.permanent_failure",
                             t=collector.last_completion,
                             request=request.request_id,
                             reason="capacity-never-recovered")
        queue.clear()

    finalize = profile.phase("sim.finalize", nested=True) \
        if profile is not None else None
    if finalize is not None:
        finalize.__enter__()
    if mx is not None:
        mx.finish(collector)
    summary = collector.summarize()
    if timeline is not None:
        # closing the tail buckets also drives the SLO engine's final
        # evaluations (it listens on bucket close)
        timeline.finish(collector.last_completion)
    if slo is not None:
        slo.finalize(collector.last_completion)
        summary = replace(
            summary,
            slo_rules=float(len(slo.rules)),
            slo_violations=float(slo.total_violations()),
            slo_violated_s=slo.total_violated_s(),
            slo_recovered=float(slo.total_recovered()))
    if degraded_s:
        summary = replace(summary, degraded_s=degraded_s)
    if guard is not None:
        summary = replace(
            summary,
            quarantines=float(guard.quarantine_count),
            probations=float(guard.probation_count))
    migrations = float(getattr(manager, "migrations_performed", 0) or 0)
    if migrations or defragmenter is not None:
        summary = replace(
            summary,
            migrations=migrations,
            migration_pause_s=float(
                getattr(manager, "migration_pause_s", 0.0) or 0.0))
    result = ExperimentResult(manager_name=manager.name,
                              summary=summary,
                              records=list(collector.records.values()))
    if isinstance(manager, AmorphOSManager):
        result.extras["combinations"] = float(manager.combination_count)
    if finalize is not None:
        finalize.__exit__(None, None, None)
    return result


#: Default manager lineup of the Fig. 9 / Fig. 10 experiments.
MANAGER_FACTORIES: dict[str, Callable[[FPGACluster], ClusterManager]] = {
    "per-device": PerDeviceManager,
    "slot-based": SlotBasedManager,
    "amorphos-ht": AmorphOSManager,
    "vital": SystemController,
}


def compare_managers(workload_sets: dict[int, list[list[Request]]],
                     cluster: FPGACluster | None = None,
                     apps: dict[str, CompiledApp] | None = None,
                     managers: dict[str, Callable[[FPGACluster],
                                                  ClusterManager]]
                     | None = None,
                     cache: "CompileCache | None" = None,
                     jobs: int = 1,
                     ) -> dict[str, dict[int, SummaryMetrics]]:
    """Run every manager over every workload set (averaging replicas).

    ``workload_sets`` maps set index -> list of replica request lists.
    Returns ``{manager: {set_index: averaged summary}}``; summaries are
    averaged field-wise over replicas.  When ``apps`` is not supplied,
    the benchmark set is compiled through ``cache`` / ``jobs`` (see
    :func:`compile_benchmarks`).
    """
    cluster = cluster or make_cluster()
    apps = apps or compile_benchmarks(cluster, cache=cache, jobs=jobs)
    managers = managers or MANAGER_FACTORIES

    out: dict[str, dict[int, SummaryMetrics]] = {}
    for mgr_name, factory in managers.items():
        per_set: dict[int, SummaryMetrics] = {}
        for set_index, replicas in workload_sets.items():
            summaries = []
            for requests in replicas:
                manager = factory(cluster)
                summaries.append(
                    run_experiment(manager, requests, apps).summary)
            per_set[set_index] = _average_summaries(summaries)
        out[mgr_name] = per_set
    return out


def _average_summaries(summaries: list[SummaryMetrics]) -> SummaryMetrics:
    n = len(summaries)
    if n == 1:
        return summaries[0]
    mean = lambda attr: sum(getattr(s, attr) for s in summaries) / n
    return SummaryMetrics(
        manager=summaries[0].manager,
        # averaged like every other field: under fault schedules the
        # replicas complete different numbers of requests (permanent
        # failures), and replica 0's count misstates the set
        num_requests=mean("num_requests"),
        mean_response_s=mean("mean_response_s"),
        p50_response_s=mean("p50_response_s"),
        p95_response_s=mean("p95_response_s"),
        mean_wait_s=mean("mean_wait_s"),
        mean_service_s=mean("mean_service_s"),
        makespan_s=mean("makespan_s"),
        block_utilization=mean("block_utilization"),
        block_utilization_pressured=mean("block_utilization_pressured"),
        mean_concurrency=mean("mean_concurrency"),
        peak_concurrency=max(s.peak_concurrency for s in summaries),
        multi_fpga_fraction=mean("multi_fpga_fraction"),
        max_latency_overhead=max(s.max_latency_overhead
                                 for s in summaries),
        mean_reconfig_s=mean("mean_reconfig_s"),
        peak_queue_len=max(s.peak_queue_len for s in summaries),
        interruptions=mean("interruptions"),
        recoveries=mean("recoveries"),
        permanently_failed=mean("permanently_failed"),
        mean_time_to_recovery_s=mean("mean_time_to_recovery_s"),
        goodput_fraction=mean("goodput_fraction"),
        slo_rules=mean("slo_rules"),
        slo_violations=mean("slo_violations"),
        slo_violated_s=mean("slo_violated_s"),
        slo_recovered=mean("slo_recovered"),
        shed_requests=mean("shed_requests"),
        quarantines=mean("quarantines"),
        probations=mean("probations"),
        degraded_s=mean("degraded_s"),
        migrations=mean("migrations"),
        migration_pause_s=mean("migration_pause_s"),
        readmitted_requests=mean("readmitted_requests"),
    )
