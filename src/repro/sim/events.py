"""Discrete-event primitives.

:class:`EventQueue` is a stable priority queue of timestamped events --
ties break in insertion order, so simulations are deterministic.
:class:`ArrayEventQueue` is the flat-array engine behind the same pop
order: the static schedule (arrivals, faults) lives in struct-of-arrays
form sorted once up front, only the dynamic events (completions) pay
heap costs, and consecutive same-timestamp-range arrivals can be popped
as one cohort.  :class:`TimeWeightedValue` integrates a step function
over time, which is how the collector computes time-averaged
utilization, concurrency and queue pressure.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Event", "EventQueue", "ArrayEventQueue",
           "TimeWeightedValue"]


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence."""

    time: float
    kind: str
    payload: Any = None


class EventQueue:
    """Stable min-heap of events ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def push_many(self, items) -> None:
        """Bulk-load ``(time, kind, payload)`` triples.

        One heapify over the appended tail instead of a sift per push:
        O(n) against O(n log n), which matters when the experiment loop
        front-loads a 100k-request arrival schedule.  Pop order is
        identical to sequential pushes -- both orders are exactly
        (time, insertion order).
        """
        heap = self._heap
        seq = self._seq
        for time, kind, payload in items:
            if time < 0:
                raise ValueError("event time must be non-negative")
            heap.append(
                (time, seq, Event(time=time, kind=kind,
                                  payload=payload)))
            seq += 1
        self._seq = seq
        heapq.heapify(heap)

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[2]

    def pop3(self) -> tuple[float, str, Any]:
        """Pop as a bare ``(time, kind, payload)`` triple.

        Same order as :meth:`pop`; the experiment loop uses this shape
        so both engines feed it without allocating :class:`Event`
        objects on the array path.
        """
        if not self._heap:
            raise IndexError("pop from empty event queue")
        event = heapq.heappop(self._heap)[2]
        return event.time, event.kind, event.payload

    def peek_time(self) -> float:
        if not self._heap:
            raise IndexError("peek into empty event queue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class ArrayEventQueue:
    """Struct-of-arrays event engine; pop order identical to
    :class:`EventQueue`.

    Events arrive in two phases:

    - **static** -- everything known before the first pop
      (:meth:`push_many`: the arrival schedule, then the fault
      schedule).  Stored as parallel arrays and sorted *once* with a
      stable argsort, so the (time, insertion order) pop key costs an
      array read per pop instead of a heap sift;
    - **dynamic** -- events scheduled while running
      (:meth:`push`: completions, penalty reschedules).  These go
      through a plain tuple heap.

    Why the merged order is exactly the heapq oracle's: both queues
    order by ``(time, seq)`` where ``seq`` is global insertion order.
    Static events are all inserted before any dynamic event, so every
    static seq is smaller than every dynamic seq; a time tie between
    the static head and the dynamic head therefore always resolves to
    the static event, which is what :meth:`pop3` implements with a
    plain ``<=`` on times.  Within each side, the stable argsort
    (static) and the ``(time, seq)`` heap tuples (dynamic) preserve
    insertion order on ties.  The randomized property tests replay
    interleaved push/pop sequences against the oracle to pin this.

    :meth:`pop_arrival_run` additionally exposes the *cohort* view the
    batched experiment loop wants: the maximal run of consecutive
    ``"arrival"`` events that all pop before the next fault or dynamic
    event, returned as one payload slice.
    """

    #: kind-code table (int8 in the sorted kinds array); kinds outside
    #: the table map to OTHER and simply never batch
    _ARRIVAL = 0
    _OTHER = 1

    def __init__(self) -> None:
        # staged static events, (time, kind, payload) in push order
        self._stage_t: list[float] = []
        self._stage_kind: list[str] = []
        self._stage_payload: list[Any] = []
        self._sealed = False
        # sealed static schedule (filled by _seal)
        self._times: "np.ndarray | None" = None    # float64, sorted
        self._kinds: list[str] = []                # same order
        self._payloads: list[Any] = []             # same order
        self._ptr = 0
        #: sorted positions of non-arrival static events, for O(log n)
        #: cohort-boundary lookups
        self._non_arrival: "np.ndarray | None" = None
        # dynamic (time, seq, kind, payload) heap; seqs continue after
        # the static block so ties resolve static-first
        self._dyn: list[tuple[float, int, str, Any]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    def push_many(self, items) -> None:
        """Bulk-load ``(time, kind, payload)`` triples.

        Before the first pop these land in the static schedule (one
        stable argsort at seal time); afterwards they fall back to
        per-item dynamic pushes, preserving :class:`EventQueue`'s
        semantics either way.
        """
        if self._sealed:
            for time, kind, payload in items:
                self.push(time, kind, payload)
            return
        for time, kind, payload in items:
            if time < 0:
                raise ValueError("event time must be non-negative")
            self._stage_t.append(time)
            self._stage_kind.append(kind)
            self._stage_payload.append(payload)

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        """Schedule one dynamic event (seals the static schedule)."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        if not self._sealed:
            self._seal()
        heapq.heappush(self._dyn, (time, self._seq, kind, payload))
        self._seq += 1

    def _seal(self) -> None:
        n = len(self._stage_t)
        times = np.asarray(self._stage_t, dtype=np.float64)
        # stable sort == order by (time, insertion seq), the oracle key
        order = np.argsort(times, kind="stable")
        self._times = times[order]
        order_list = order.tolist()
        kinds = self._stage_kind
        payloads = self._stage_payload
        self._kinds = [kinds[i] for i in order_list]
        self._payloads = [payloads[i] for i in order_list]
        codes = np.fromiter(
            (self._ARRIVAL if k == "arrival" else self._OTHER
             for k in self._kinds),
            dtype=np.int8, count=n)
        self._non_arrival = np.nonzero(codes != self._ARRIVAL)[0]
        self._stage_t = []
        self._stage_kind = []
        self._stage_payload = []
        self._seq = n
        self._sealed = True

    # ------------------------------------------------------------------
    def pop3(self) -> tuple[float, str, Any]:
        """Pop the next event as ``(time, kind, payload)``."""
        if not self._sealed:
            self._seal()
        ptr = self._ptr
        have_static = ptr < len(self._kinds)
        if self._dyn:
            # static wins time ties: every static seq < every dyn seq
            if have_static and self._times[ptr] <= self._dyn[0][0]:
                self._ptr = ptr + 1
                return (float(self._times[ptr]), self._kinds[ptr],
                        self._payloads[ptr])
            time, _, kind, payload = heapq.heappop(self._dyn)
            return time, kind, payload
        if not have_static:
            raise IndexError("pop from empty event queue")
        self._ptr = ptr + 1
        return (float(self._times[ptr]), self._kinds[ptr],
                self._payloads[ptr])

    def pop_arrival_run(self) -> list:
        """Pop the maximal pending run of ``"arrival"`` events.

        Returns their payloads in pop order -- possibly empty, when the
        next event is not an arrival.  The run ends at the first static
        non-arrival event and at the first position whose time exceeds
        the dynamic head's (a time *tie* with the dynamic head stays in
        the run: the static event pops first anyway).
        """
        if not self._sealed:
            self._seal()
        ptr = self._ptr
        n = len(self._kinds)
        if ptr >= n or self._kinds[ptr] != "arrival":
            return []
        cut = np.searchsorted(self._non_arrival, ptr)
        end = int(self._non_arrival[cut]) \
            if cut < len(self._non_arrival) else n
        if self._dyn:
            end = min(end, int(np.searchsorted(
                self._times, self._dyn[0][0], side="right")))
        if end <= ptr:
            return []
        run = self._payloads[ptr:end]
        self._ptr = end
        return run

    def peek_time(self) -> float:
        if not self._sealed:
            self._seal()
        have_static = self._ptr < len(self._kinds)
        if self._dyn:
            if have_static:
                return min(float(self._times[self._ptr]),
                           self._dyn[0][0])
            return self._dyn[0][0]
        if not have_static:
            raise IndexError("peek into empty event queue")
        return float(self._times[self._ptr])

    def __len__(self) -> int:
        if not self._sealed:
            return len(self._stage_t) + len(self._dyn)
        return (len(self._kinds) - self._ptr) + len(self._dyn)

    def __bool__(self) -> bool:
        return len(self) > 0


class TimeWeightedValue:
    """Step-function integrator.

    ``record(t, v)`` says the value became ``v`` at time ``t``;
    ``average(t0, t1)`` is the time-weighted mean over the window, and
    ``average_where(mask, t0, t1)`` restricts to intervals where the
    (step-function) mask is truthy -- e.g. "utilization while requests
    were waiting".
    """

    def __init__(self, initial: float = 0.0) -> None:
        self._points: list[tuple[float, float]] = [(0.0, initial)]

    def record(self, t: float, value: float) -> None:
        last_t, last_v = self._points[-1]
        if t < last_t:
            raise ValueError(f"time went backwards: {t} < {last_t}")
        if value == last_v:
            return
        self._points.append((t, value))

    def value_at(self, t: float) -> float:
        value = self._points[0][1]
        for pt, pv in self._points:
            if pt > t:
                break
            value = pv
        return value

    def _segments(self, t0: float, t1: float):
        """Yield (duration, value) pieces covering [t0, t1]."""
        points = self._points
        for i, (pt, pv) in enumerate(points):
            seg_start = max(pt, t0)
            seg_end = points[i + 1][0] if i + 1 < len(points) else t1
            seg_end = min(seg_end, t1)
            if seg_end > seg_start:
                yield seg_end - seg_start, pv

    def average(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return self.value_at(t0)
        points = self._points
        if len(points) > 4096:
            # long runs accumulate one point per state change (hundreds
            # of thousands at 1M requests); integrate the step function
            # as three array ops instead of a Python generator sweep
            arr = np.asarray(points)
            starts = np.maximum(arr[:, 0], t0)
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:]
            ends[-1] = t1
            np.minimum(ends, t1, out=ends)
            durations = np.maximum(ends - starts, 0.0)
            return float(durations @ arr[:, 1]) / (t1 - t0)
        total = sum(d * v for d, v in self._segments(t0, t1))
        return total / (t1 - t0)

    def average_where(self, mask: "TimeWeightedValue", t0: float,
                      t1: float) -> float:
        """Average of self over sub-intervals where ``mask`` > 0."""
        if t1 <= t0:
            return self.value_at(t0)
        # One synchronized sweep over the merged breakpoints of both
        # step functions.  Both point lists are time-sorted by
        # construction, so the current value of each can be carried
        # along instead of re-scanning from the head per interval;
        # the accumulated terms (and their order) are unchanged.
        mine, theirs = self._points, mask._points
        bounds = (t0, t1)
        i = j = k = 0
        cur_self = mine[0][1]
        cur_mask = theirs[0][1]
        weighted = 0.0
        duration = 0.0
        prev: float | None = None
        prev_self = prev_mask = 0.0
        while i < len(mine) or j < len(theirs) or k < len(bounds):
            t = math.inf
            if i < len(mine):
                t = mine[i][0]
            if j < len(theirs) and theirs[j][0] < t:
                t = theirs[j][0]
            if k < len(bounds) and bounds[k] < t:
                t = bounds[k]
            # absorb every point at exactly t (later points win, as in
            # value_at)
            while i < len(mine) and mine[i][0] == t:
                cur_self = mine[i][1]
                i += 1
            while j < len(theirs) and theirs[j][0] == t:
                cur_mask = theirs[j][1]
                j += 1
            while k < len(bounds) and bounds[k] == t:
                k += 1
            if prev is not None:
                a, b = prev, t
                if not (b <= t0 or a >= t1):
                    lo, hi = max(a, t0), min(b, t1)
                    if hi > lo and prev_mask > 0:
                        weighted += prev_self * (hi - lo)
                        duration += hi - lo
            prev, prev_self, prev_mask = t, cur_self, cur_mask
        return weighted / duration if duration else 0.0
