"""Discrete-event primitives.

:class:`EventQueue` is a stable priority queue of timestamped events --
ties break in insertion order, so simulations are deterministic.
:class:`TimeWeightedValue` integrates a step function over time, which is
how the collector computes time-averaged utilization, concurrency and
queue pressure.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any

__all__ = ["Event", "EventQueue", "TimeWeightedValue"]


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence."""

    time: float
    kind: str
    payload: Any = None


class EventQueue:
    """Stable min-heap of events ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def push_many(self, items) -> None:
        """Bulk-load ``(time, kind, payload)`` triples.

        One heapify over the appended tail instead of a sift per push:
        O(n) against O(n log n), which matters when the experiment loop
        front-loads a 100k-request arrival schedule.  Pop order is
        identical to sequential pushes -- both orders are exactly
        (time, insertion order).
        """
        heap = self._heap
        seq = self._seq
        for time, kind, payload in items:
            if time < 0:
                raise ValueError("event time must be non-negative")
            heap.append(
                (time, seq, Event(time=time, kind=kind,
                                  payload=payload)))
            seq += 1
        self._seq = seq
        heapq.heapify(heap)

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> float:
        if not self._heap:
            raise IndexError("peek into empty event queue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class TimeWeightedValue:
    """Step-function integrator.

    ``record(t, v)`` says the value became ``v`` at time ``t``;
    ``average(t0, t1)`` is the time-weighted mean over the window, and
    ``average_where(mask, t0, t1)`` restricts to intervals where the
    (step-function) mask is truthy -- e.g. "utilization while requests
    were waiting".
    """

    def __init__(self, initial: float = 0.0) -> None:
        self._points: list[tuple[float, float]] = [(0.0, initial)]

    def record(self, t: float, value: float) -> None:
        last_t, last_v = self._points[-1]
        if t < last_t:
            raise ValueError(f"time went backwards: {t} < {last_t}")
        if value == last_v:
            return
        self._points.append((t, value))

    def value_at(self, t: float) -> float:
        value = self._points[0][1]
        for pt, pv in self._points:
            if pt > t:
                break
            value = pv
        return value

    def _segments(self, t0: float, t1: float):
        """Yield (duration, value) pieces covering [t0, t1]."""
        points = self._points
        for i, (pt, pv) in enumerate(points):
            seg_start = max(pt, t0)
            seg_end = points[i + 1][0] if i + 1 < len(points) else t1
            seg_end = min(seg_end, t1)
            if seg_end > seg_start:
                yield seg_end - seg_start, pv

    def average(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return self.value_at(t0)
        total = sum(d * v for d, v in self._segments(t0, t1))
        return total / (t1 - t0)

    def average_where(self, mask: "TimeWeightedValue", t0: float,
                      t1: float) -> float:
        """Average of self over sub-intervals where ``mask`` > 0."""
        if t1 <= t0:
            return self.value_at(t0)
        # One synchronized sweep over the merged breakpoints of both
        # step functions.  Both point lists are time-sorted by
        # construction, so the current value of each can be carried
        # along instead of re-scanning from the head per interval;
        # the accumulated terms (and their order) are unchanged.
        mine, theirs = self._points, mask._points
        bounds = (t0, t1)
        i = j = k = 0
        cur_self = mine[0][1]
        cur_mask = theirs[0][1]
        weighted = 0.0
        duration = 0.0
        prev: float | None = None
        prev_self = prev_mask = 0.0
        while i < len(mine) or j < len(theirs) or k < len(bounds):
            t = math.inf
            if i < len(mine):
                t = mine[i][0]
            if j < len(theirs) and theirs[j][0] < t:
                t = theirs[j][0]
            if k < len(bounds) and bounds[k] < t:
                t = bounds[k]
            # absorb every point at exactly t (later points win, as in
            # value_at)
            while i < len(mine) and mine[i][0] == t:
                cur_self = mine[i][1]
                i += 1
            while j < len(theirs) and theirs[j][0] == t:
                cur_mask = theirs[j][1]
                j += 1
            while k < len(bounds) and bounds[k] == t:
                k += 1
            if prev is not None:
                a, b = prev, t
                if not (b <= t0 or a >= t1):
                    lo, hi = max(a, t0), min(b, t1)
                    if hi > lo and prev_mask > 0:
                        weighted += prev_self * (hi - lo)
                        duration += hi - lo
            prev, prev_self, prev_mask = t, cur_self, cur_mask
        return weighted / duration if duration else 0.0
