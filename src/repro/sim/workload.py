"""Workload-set generation (Table 3, Section 5.1).

"Each workload set comprises a sequence of DNN benchmarks (from the second
benchmark set), and the requests for deploying these benchmarks are issued
with a random time interval to emulate the dynamic cloud environment.  For
each condition (composition and time interval), multiple workload sets are
generated and the average result is reported."

The ten compositions are Table 3 verbatim (set 7's published row reads
"33% S + 33% L + 34% L", an obvious typo for S/M/L).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hls.kernels import BENCHMARKS, KernelSpec, SizeClass, benchmark

__all__ = ["COMPOSITIONS", "Request", "WorkloadGenerator"]

_S, _M, _L = SizeClass.SMALL, SizeClass.MEDIUM, SizeClass.LARGE

#: Table 3: set index -> (share of S, share of M, share of L).
COMPOSITIONS: dict[int, tuple[float, float, float]] = {
    1: (1.00, 0.00, 0.00),
    2: (0.00, 1.00, 0.00),
    3: (0.00, 0.00, 1.00),
    4: (0.50, 0.50, 0.00),
    5: (0.50, 0.00, 0.50),
    6: (0.00, 0.50, 0.50),
    7: (0.33, 0.33, 0.34),
    8: (0.20, 0.20, 0.60),
    9: (0.20, 0.60, 0.20),
    10: (0.60, 0.20, 0.20),
}


@dataclass(frozen=True, slots=True)
class Request:
    """One deployment request of a workload set."""

    request_id: int
    spec: KernelSpec
    arrival_s: float
    #: load-shedding rank: lower sheds first (0 = best-effort default;
    #: the degraded-mode guard never sheds running deployments, only
    #: queued requests, lowest priority first)
    priority: int = 0


class WorkloadGenerator:
    """Deterministic workload-set factory."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(self, set_index: int, num_requests: int = 120,
                 mean_interarrival_s: float = 4.0,
                 replica: int = 0,
                 arrival_process=None) -> list[Request]:
        """One workload set of Table 3's composition ``set_index``.

        ``replica`` varies the RNG stream so "multiple workload sets are
        generated and the average result is reported" is reproducible.
        ``arrival_process`` (an :class:`repro.sim.arrivals
        .ArrivalProcess`) replaces the default Poisson stream.
        """
        if set_index not in COMPOSITIONS:
            raise KeyError(f"unknown workload set {set_index}; "
                           f"Table 3 defines {sorted(COMPOSITIONS)}")
        if num_requests < 1:
            raise ValueError("a workload set needs at least one request")
        shares = COMPOSITIONS[set_index]
        rng = random.Random(f"{self.seed}/{set_index}/{replica}")
        families = sorted(BENCHMARKS)
        sizes = (_S, _M, _L)

        if arrival_process is None:
            from repro.sim.arrivals import PoissonArrivals
            arrival_process = PoissonArrivals(mean_interarrival_s)
        arrivals = arrival_process.times(num_requests, rng)

        requests = []
        for rid, arrival in enumerate(arrivals):
            size = rng.choices(sizes, weights=shares, k=1)[0]
            family = rng.choice(families)
            requests.append(Request(
                request_id=rid,
                spec=benchmark(family, size),
                arrival_s=arrival,
            ))
        return requests

    def replicas(self, set_index: int, count: int,
                 num_requests: int = 120,
                 mean_interarrival_s: float = 4.0,
                 ) -> list[list[Request]]:
        """Several independent sets of one composition (for averaging)."""
        return [self.generate(set_index, num_requests,
                              mean_interarrival_s, replica=i)
                for i in range(count)]
