"""Arrival processes beyond Poisson.

The paper issues requests "with a random time interval"; exponential
interarrivals are the baseline assumption, but cloud arrival streams are
famously burstier.  These processes plug into the workload generator so
the robustness of the Fig. 9 conclusions under realistic arrival shapes
can be checked (the sensitivity bench does exactly that).

Every process is a pure function from (count, rng) to a sorted list of
arrival times with the same *mean* rate, so sweeps vary shape and load
independently.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol

__all__ = ["ArrivalProcess", "PoissonArrivals", "BurstyArrivals",
           "DiurnalArrivals", "FlashCrowdArrivals"]


class ArrivalProcess(Protocol):
    """Generates ``count`` arrival timestamps."""

    def times(self, count: int, rng: random.Random) -> list[float]:
        ...


@dataclass(frozen=True, slots=True)
class PoissonArrivals:
    """Exponential interarrivals (the paper's implied default)."""

    mean_interarrival_s: float

    def times(self, count: int, rng: random.Random) -> list[float]:
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean interarrival must be positive")
        now = 0.0
        out = []
        for _ in range(count):
            now += rng.expovariate(1.0 / self.mean_interarrival_s)
            out.append(now)
        return out


@dataclass(frozen=True, slots=True)
class BurstyArrivals:
    """Requests arrive in bursts (batch-Poisson).

    Bursts of ``burst_size`` requests land within ``intra_burst_s`` of
    each other; burst epochs are Poisson with a mean chosen so the
    overall request rate equals ``1 / mean_interarrival_s``.
    """

    mean_interarrival_s: float
    burst_size: int = 4
    intra_burst_s: float = 0.5

    def times(self, count: int, rng: random.Random) -> list[float]:
        if self.burst_size < 1:
            raise ValueError("burst size must be >= 1")
        burst_gap = self.mean_interarrival_s * self.burst_size
        out: list[float] = []
        epoch = 0.0
        while len(out) < count:
            epoch += rng.expovariate(1.0 / burst_gap)
            for _ in range(min(self.burst_size, count - len(out))):
                out.append(epoch + rng.uniform(0, self.intra_burst_s))
        out.sort()
        return out


@dataclass(frozen=True, slots=True)
class DiurnalArrivals:
    """Sinusoidally modulated rate (day/night load swing).

    Rate(t) = base * (1 + amplitude * sin(2 pi t / period)); generated
    by thinning a faster Poisson stream, preserving the mean rate.
    """

    mean_interarrival_s: float
    period_s: float = 600.0
    amplitude: float = 0.8

    def times(self, count: int, rng: random.Random) -> list[float]:
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        peak_rate = (1 + self.amplitude) / self.mean_interarrival_s
        now = 0.0
        out: list[float] = []
        while len(out) < count:
            now += rng.expovariate(peak_rate)
            rate = (1 + self.amplitude
                    * math.sin(2 * math.pi * now / self.period_s)) \
                / self.mean_interarrival_s
            if rng.random() < rate / peak_rate:
                out.append(now)
        return out


@dataclass(frozen=True, slots=True)
class FlashCrowdArrivals:
    """A steady Poisson baseline with one flash crowd on top.

    ``crowd_fraction`` of the requests slam in within a single
    ``crowd_window_s``-wide window placed ``crowd_at_fraction`` of the
    way into the baseline stream -- a product launch or retry storm on
    an otherwise ordinary day.  The baseline keeps the nominal mean
    rate, so the crowd is pure excess load while it lasts.
    """

    mean_interarrival_s: float
    crowd_fraction: float = 0.4
    crowd_at_fraction: float = 0.3
    crowd_window_s: float = 5.0

    def times(self, count: int, rng: random.Random) -> list[float]:
        if not 0 <= self.crowd_fraction <= 1:
            raise ValueError("crowd fraction must be in [0, 1]")
        if not 0 <= self.crowd_at_fraction <= 1:
            raise ValueError("crowd position must be in [0, 1]")
        if self.crowd_window_s <= 0:
            raise ValueError("crowd window must be positive")
        crowd = int(round(count * self.crowd_fraction))
        baseline = count - crowd
        now = 0.0
        out: list[float] = []
        for _ in range(baseline):
            now += rng.expovariate(1.0 / self.mean_interarrival_s)
            out.append(now)
        # the crowd lands relative to the baseline span so the shape
        # survives changes to count and mean rate
        span = now if baseline else self.mean_interarrival_s * count
        start = self.crowd_at_fraction * span
        out.extend(start + rng.uniform(0, self.crowd_window_s)
                   for _ in range(crowd))
        out.sort()
        return out
