"""Synthesis front-end: kernel specification -> primitive netlist.

Step 1 of the ViTAL compilation flow (Section 3.3) reuses the commercial
front-end to turn high-level code into a netlist of primitives.  Our
substitute builds a DNNWeaver-shaped accelerator netlist directly from the
kernel's resource footprint: DMA engines, double-buffered weight and
activation memories, a PE array holding the DSPs, an accumulator with a
feedback loop, and a control FSM -- wired as the dataflow pipeline those
generators emit.  The resulting netlist's total resource usage equals the
specification's footprint, and its module-local connectivity gives the
partitioner (Section 4) realistic structure to exploit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.fabric.resources import ResourceVector
from repro.hls.kernels import KernelSpec
from repro.netlist.generator import NetlistBuilder
from repro.netlist.netlist import Netlist

__all__ = ["HLSFrontend", "synthesize"]


#: How an accelerator's footprint is apportioned among its modules.
#: Fractions per resource type: (lut, dff, dsp, bram).
_MODULE_SHARES: dict[str, tuple[float, float, float, float]] = {
    "input_dma":   (0.06, 0.06, 0.00, 0.02),
    "weight_buf":  (0.08, 0.08, 0.00, 0.52),
    "act_buf":     (0.08, 0.08, 0.00, 0.26),
    "pe_array":    (0.52, 0.52, 0.88, 0.08),
    "accumulator": (0.12, 0.12, 0.12, 0.08),
    "control":     (0.08, 0.08, 0.00, 0.02),
    "output_dma":  (0.06, 0.06, 0.00, 0.02),
}


def _module_resources(total: ResourceVector, shares: tuple[float, ...],
                      ) -> ResourceVector:
    lut_s, dff_s, dsp_s, bram_s = shares
    return ResourceVector(lut=total.lut * lut_s, dff=total.dff * dff_s,
                          dsp=total.dsp * dsp_s,
                          bram_mb=total.bram_mb * bram_s)


@dataclass(slots=True)
class HLSFrontend:
    """Configuration for the synthesis substitute.

    Attributes:
        macro_lut: LUTs bundled per macro primitive (netlist granularity).
        seed: base RNG seed; the kernel name is mixed in so each design is
            deterministic yet distinct.
    """

    macro_lut: int = 512
    seed: int = 2020

    def synthesize(self, spec: KernelSpec) -> Netlist:
        """Produce the post-synthesis netlist of ``spec``."""
        # stable across processes (built-in hash() varies with
        # PYTHONHASHSEED, which would make compilations irreproducible)
        seed = zlib.crc32(f"{self.seed}/{spec.name}".encode())
        builder = NetlistBuilder(name=spec.name, seed=seed,
                                 macro_lut=self.macro_lut)
        modules = {
            mod: builder.add_module(
                mod,
                _module_resources(spec.resources, shares),
                feedback=(mod == "accumulator"),
            )
            for mod, shares in _MODULE_SHARES.items()
        }
        wide = spec.stream_width_bits
        # dataflow pipeline
        builder.connect(modules["input_dma"], modules["act_buf"],
                        width_bits=wide, links=2)
        builder.connect(modules["weight_buf"], modules["pe_array"],
                        width_bits=wide * 4, links=4)
        builder.connect(modules["act_buf"], modules["pe_array"],
                        width_bits=wide * 2, links=4)
        builder.connect(modules["pe_array"], modules["accumulator"],
                        width_bits=wide * 2, links=4)
        builder.connect(modules["accumulator"], modules["output_dma"],
                        width_bits=wide, links=2)
        # control fans out thin command buses to every datapath module
        for mod in ("input_dma", "weight_buf", "act_buf", "pe_array",
                    "accumulator", "output_dma"):
            builder.connect(modules["control"], modules[mod],
                            width_bits=8, links=1)
        builder.add_input_stream("s_axis_data", modules["input_dma"],
                                 width_bits=wide)
        builder.add_input_stream("s_axis_weights", modules["weight_buf"],
                                 width_bits=wide)
        builder.add_output_stream("m_axis_result", modules["output_dma"],
                                  width_bits=wide)
        return builder.build()


def synthesize(spec: KernelSpec, macro_lut: int = 512,
               seed: int = 2020) -> Netlist:
    """Convenience wrapper: synthesize one kernel specification."""
    return HLSFrontend(macro_lut=macro_lut, seed=seed).synthesize(spec)
