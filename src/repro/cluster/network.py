"""The inter-FPGA ring network.

The platform's four boards "share access to a 100 Gbps bidirectional ring"
(Section 5.2).  The model exposes what the runtime policy and the service
time model need: hop distances, per-segment bandwidth, and end-to-end
latency.  Traffic between non-adjacent boards traverses intermediate
segments, so the policy's preference for few, adjacent boards directly
reduces both latency and segment contention.

Topology is immutable after construction, so every topology query is
memoized: pairwise distances are precomputed, and path segments / subset
span costs are cached on first use.  The caches matter because the
communication-aware policy evaluates ``span_cost`` for many candidate
board subsets per allocation, and the same subsets recur across the
thousands of allocations of a System-Layer experiment.  Flow occupancy is
likewise tracked per segment incrementally instead of rescanned per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RingNetwork"]


@dataclass(slots=True)
class RingNetwork:
    """A bidirectional ring over ``num_nodes`` boards.

    Besides topology queries, the ring tracks *registered flows* (one per
    board-spanning deployment): traffic between non-adjacent boards holds
    every segment along its path, and co-resident flows on a segment share
    its bandwidth -- the contention the communication-aware policy's
    span-minimization avoids.
    """

    num_nodes: int
    segment_bandwidth_gbps: float = 100.0
    hop_latency_us: float = 1.0
    _flows: "dict[object, list[int]]" = None  # type: ignore[assignment]
    #: segment id -> remaining capacity fraction (absent == 1.0, healthy)
    _segment_scale: "dict[int, float]" = None  # type: ignore[assignment]
    #: segment id -> transient drop probability (absent == 0.0, stable)
    _segment_drop: "dict[int, float]" = None  # type: ignore[assignment]
    #: per-segment registered-flow counts, one preallocated int64 slot
    #: per ring segment (the dict it replaced churned keys on every
    #: register/release at 1024 boards)
    _flow_counts: "np.ndarray" = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]
    #: pairwise ring distances as an (n, n) int64 matrix; row/fancy
    #: indexing feeds the policy's vectorized span bounds
    _dist: "np.ndarray" = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]
    _path_cache: "dict[tuple[int, int], list[int]]" = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]
    _span_cache: "dict[tuple[int, ...], int]" = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]
    _members_segments_cache: "dict[tuple[int, ...], set[int]]" = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]
    #: members tuple -> segment ids as an int64 array (vector gather for
    #: contention_factor / timeline peak-flow queries)
    _members_segments_arr: "dict[tuple[int, ...], np.ndarray]" = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("ring needs at least one node")
        self._flows = {}
        self._segment_scale = {}
        self._segment_drop = {}
        n = self.num_nodes
        self._flow_counts = np.zeros(n, dtype=np.int64)
        idx = np.arange(n)
        around = np.abs(idx[:, None] - idx[None, :])
        self._dist = np.minimum(around, n - around)
        self._path_cache = {}
        self._span_cache = {}
        self._members_segments_cache = {}
        self._members_segments_arr = {}

    # ------------------------------------------------------------------
    def distance(self, a: int, b: int) -> int:
        """Hop count along the shorter ring direction."""
        self._check(a)
        self._check(b)
        return int(self._dist[a, b])

    def path_latency_us(self, a: int, b: int) -> float:
        return self.distance(a, b) * self.hop_latency_us

    def bandwidth_between(self, a: int, b: int) -> float:
        """End-to-end bandwidth of the shorter path (segment-limited)."""
        if self.distance(a, b) == 0:
            return float("inf")
        scale = min((self._effective_scale(s)
                     for s in self.segments_on_path(a, b)), default=1.0)
        return self.segment_bandwidth_gbps * scale

    def span_cost(self, boards: "list[int] | set[int]") -> int:
        """Total pairwise hop count of a board set.

        The communication-aware policy minimizes this when forced to
        split an application across boards.  Memoized per subset: the
        topology never changes, and the policy re-evaluates the same
        subsets across allocations.
        """
        members = sorted(set(boards))
        key = tuple(members)
        cached = self._span_cache.get(key)
        if cached is not None:
            return cached
        for m in members:
            self._check(m)
        rows = np.asarray(members, dtype=np.intp)
        # full symmetric sum, halved: one vector gather instead of the
        # O(k^2) Python pair loop
        total = int(self._dist[np.ix_(rows, rows)].sum()) // 2
        self._span_cache[key] = total
        return total

    # ------------------------------------------------------------------
    # flow registry (segment contention)
    # ------------------------------------------------------------------
    def segments_on_path(self, a: int, b: int) -> list[int]:
        """Segment ids of the shorter path (segment i joins node i and
        node (i+1) mod n); ties resolve clockwise."""
        self._check(a)
        self._check(b)
        cached = self._path_cache.get((a, b))
        if cached is not None:
            return list(cached)
        if a == b:
            path: list[int] = []
        else:
            clockwise = (b - a) % self.num_nodes
            counter = (a - b) % self.num_nodes
            if clockwise <= counter:
                path = [(a + i) % self.num_nodes
                        for i in range(clockwise)]
            else:
                path = [(a - 1 - i) % self.num_nodes
                        for i in range(counter)]
        self._path_cache[(a, b)] = path
        return list(path)

    def _segments_of_members(self, members: "tuple[int, ...]") -> set[int]:
        """Union of path segments over all member pairs (memoized)."""
        cached = self._members_segments_cache.get(members)
        if cached is None:
            cached = set()
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    cached.update(self.segments_on_path(a, b))
            self._members_segments_cache[members] = cached
        return cached

    def _segments_arr(self, members: "tuple[int, ...]") -> "np.ndarray":
        """The member set's segment union as a sorted index array."""
        cached = self._members_segments_arr.get(members)
        if cached is None:
            cached = np.fromiter(
                sorted(self._segments_of_members(members)),
                dtype=np.intp)
            self._members_segments_arr[members] = cached
        return cached

    def register_flow(self, flow_id: object, boards: "list[int]") -> None:
        """Claim the segments a deployment's traffic traverses.

        ``boards`` is the deployment's board set; the flow holds every
        segment on the pairwise shorter paths between them.
        """
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id} already registered")
        members = tuple(sorted(set(boards)))
        segments = self._segments_arr(members)
        self._flows[flow_id] = segments
        # segment ids within one flow are unique, so fancy-index
        # increment touches each slot exactly once
        self._flow_counts[segments] += 1

    def release_flow(self, flow_id: object) -> None:
        segments = self._flows.pop(flow_id, None)
        if segments is None or not len(segments):
            return
        self._flow_counts[segments] -= 1

    def flows_on_segment(self, segment: int) -> int:
        return int(self._flow_counts[segment])

    def peak_segment_flows(self) -> int:
        """Registered-flow count of the busiest segment (O(segments)
        as one vector max; the timeline samples this per bucket)."""
        return int(self._flow_counts.max())

    def contention_factor(self, boards: "list[int]") -> float:
        """Effective oversubscription of the busiest segment a
        prospective flow over ``boards`` would use; >= 1.

        With healthy links this is an integer flow count (including the
        prospective flow).  A degraded segment serves its flows at a
        fraction of nominal bandwidth, which is indistinguishable from
        proportionally more flows sharing a healthy segment -- so the
        count is divided by the segment's capacity fraction and the
        result feeds the service model unchanged.
        """
        members = tuple(sorted(set(boards)))
        segments = self._segments_arr(members)
        if not len(segments):
            return 1
        if not self._segment_scale and not self._segment_drop:
            # healthy-ring fast path: identical to the pre-fault model
            return 1 + int(self._flow_counts[segments].max())
        return max((1 + int(self._flow_counts[s]))
                   / self._effective_scale(s) for s in segments)

    # ------------------------------------------------------------------
    # link degradation (fault model)
    # ------------------------------------------------------------------
    def degrade_segment(self, segment: int,
                        capacity_fraction: float) -> None:
        """Run ``segment`` at ``capacity_fraction`` of nominal bandwidth
        until :meth:`restore_segment`."""
        self._check_segment(segment)
        if not 0.0 < capacity_fraction <= 1.0:
            raise ValueError(
                f"capacity fraction must be in (0, 1], "
                f"got {capacity_fraction}")
        if capacity_fraction == 1.0:
            self._segment_scale.pop(segment, None)
        else:
            self._segment_scale[segment] = capacity_fraction

    def restore_segment(self, segment: int) -> None:
        self._check_segment(segment)
        self._segment_scale.pop(segment, None)

    def restore_all_segments(self) -> None:
        """Heal every degraded or flaky segment (end-of-experiment
        cleanup)."""
        self._segment_scale.clear()
        self._segment_drop.clear()

    def segment_capacity_fraction(self, segment: int) -> float:
        self._check_segment(segment)
        return self._segment_scale.get(segment, 1.0)

    def degraded_segments(self) -> dict[int, float]:
        return dict(self._segment_scale)

    # ------------------------------------------------------------------
    # gray flakiness (transient drops -> retransmission derating)
    # ------------------------------------------------------------------
    def set_segment_flakiness(self, segment: int,
                              drop_probability: float) -> None:
        """``segment`` drops a ``drop_probability`` fraction of its
        traffic; retransmissions derate effective bandwidth to
        ``1 - drop_probability`` of whatever the segment's (possibly
        degraded) capacity is, until :meth:`clear_segment_flakiness`."""
        self._check_segment(segment)
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1), "
                f"got {drop_probability}")
        if drop_probability == 0.0:
            self._segment_drop.pop(segment, None)
        else:
            self._segment_drop[segment] = drop_probability

    def clear_segment_flakiness(self, segment: int) -> None:
        self._check_segment(segment)
        self._segment_drop.pop(segment, None)

    def flaky_segments(self) -> dict[int, float]:
        return dict(self._segment_drop)

    def _effective_scale(self, segment: int) -> float:
        """Capacity fraction after degradation *and* flaky-drop
        derating compose (both absent == 1.0, healthy)."""
        return (self._segment_scale.get(segment, 1.0)
                * (1.0 - self._segment_drop.get(segment, 0.0)))

    def _check_segment(self, segment: int) -> None:
        if not 0 <= segment < self.num_nodes:
            raise IndexError(f"segment {segment} outside ring of "
                             f"{self.num_nodes}")

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} outside ring of "
                             f"{self.num_nodes}")
