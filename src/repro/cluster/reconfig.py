"""Reconfiguration timing.

ViTAL programs one physical block at a time through partial reconfiguration
(Section 3.4) "without affecting other co-running applications"; the
per-device baseline and AmorphOS's high-throughput mode must write a full
device image instead.  Times follow the ICAP/MCAP bandwidth of UltraScale+
parts: roughly 0.8 GB/s of configuration data, plus fixed setup cost per
operation (driver, clearing, reset sequencing).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Reconfigurer"]

#: Full-device configuration image of an XCVU37P-class part, MB.
FULL_DEVICE_BITSTREAM_MB = 180.0


@dataclass(frozen=True, slots=True)
class Reconfigurer:
    """Configuration-port timing model."""

    config_bandwidth_mb_s: float = 800.0
    setup_overhead_s: float = 0.004

    def partial_time_s(self, bitstream_mb: float) -> float:
        """Program one physical block (co-running apps unaffected)."""
        if bitstream_mb <= 0:
            raise ValueError("bitstream size must be positive")
        return self.setup_overhead_s \
            + bitstream_mb / self.config_bandwidth_mb_s

    def partial_time_for_blocks(self, bitstream_mb: float,
                                num_blocks: int) -> float:
        """Program ``num_blocks`` blocks back to back (one config port)."""
        return num_blocks * self.partial_time_s(bitstream_mb)

    def full_device_time_s(self,
                           bitstream_mb: float = FULL_DEVICE_BITSTREAM_MB,
                           ) -> float:
        """Rewrite a whole device (pauses everything on it)."""
        return self.setup_overhead_s \
            + bitstream_mb / self.config_bandwidth_mb_s
