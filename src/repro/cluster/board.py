"""One FPGA board of the cluster.

Matches the Section 5.2 platform: an XCVU37P with two DIMM sites (up to
128 GB DDR4 each) and four 1x4 ganged 28 Gb/s QSFP+ cages.  The board owns
its fabric partition -- the Architecture Layer abstraction its physical
blocks come from -- and exposes the identifiers the runtime's resource
database tracks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.fabric.device import FPGADevice
from repro.fabric.partition import FabricPartition, PhysicalBlock

__all__ = ["BoardHealth", "DimmSite", "FPGABoard"]


class BoardHealth(enum.Enum):
    """Fail-stop health of one board.

    The authoritative health map lives in each controller (boards are
    shared, immutable substrate; several controllers may manage one
    cluster in tests and manager comparisons) -- this enum is the shared
    vocabulary between the controller, the resource database and the
    fault injector.
    """

    HEALTHY = "healthy"
    FAILED = "failed"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class DimmSite:
    """One DDR4 DIMM site."""

    index: int
    capacity_gb: int = 128
    bandwidth_gbps: float = 153.6  # DDR4-2400 x72

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_gb * (1 << 30)


@dataclass(slots=True)
class FPGABoard:
    """A board: device + partition + peripherals."""

    board_id: int
    device: FPGADevice
    partition: FabricPartition
    dimms: list[DimmSite] = field(default_factory=list)
    qsfp_cages: int = 4
    qsfp_lane_gbps: float = 28.0

    def __post_init__(self) -> None:
        if not self.dimms:
            self.dimms = [DimmSite(0), DimmSite(1)]
        if self.partition.device is not self.device:
            raise ValueError("partition must target this board's device")

    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.partition.num_blocks

    @property
    def blocks(self) -> list[PhysicalBlock]:
        return self.partition.blocks

    @property
    def dram_capacity_bytes(self) -> int:
        return sum(d.capacity_bytes for d in self.dimms)

    @property
    def network_bandwidth_gbps(self) -> float:
        """Aggregate optical bandwidth of the ganged QSFP cages."""
        return self.qsfp_cages * 4 * self.qsfp_lane_gbps

    def block(self, index: int) -> PhysicalBlock:
        return self.partition.blocks[index]

    def __str__(self) -> str:
        return (f"board{self.board_id}({self.device.name}, "
                f"{self.num_blocks} blocks, "
                f"{self.dram_capacity_bytes >> 30} GB DRAM)")
