"""The FPGA cluster: boards plus ring network.

``make_cluster()`` builds the paper's platform -- four XCVU37P boards,
each carrying the optimal fabric partition from the Section 5.3 DSE -- and
is the starting point of every System-Layer experiment and example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.board import FPGABoard
from repro.cluster.network import RingNetwork
from repro.cluster.reconfig import Reconfigurer
from repro.fabric.devices import device_by_name, make_xcvu37p
from repro.fabric.partition import FabricPartition, PartitionPlanner

__all__ = ["FPGACluster", "make_cluster", "make_heterogeneous_cluster"]

#: Global block address: (board id, physical block index).
BlockAddress = tuple[int, int]


@dataclass(slots=True)
class FPGACluster:
    """A set of boards on a ring.

    The common case is a homogeneous cluster (every board exposes the same
    physical-block footprint, so every image relocates anywhere).  The
    paper's conclusion notes ViTAL "can be extended to virtualize a
    heterogeneous FPGA cluster comprising different types of FPGAs";
    passing ``allow_heterogeneous=True`` permits mixed footprints, which
    :class:`repro.runtime.hetero.HeterogeneousController` manages by
    compiling applications once per footprint group.
    """

    boards: list[FPGABoard]
    network: RingNetwork
    reconfigurer: Reconfigurer = field(default_factory=Reconfigurer)
    allow_heterogeneous: bool = False

    def __post_init__(self) -> None:
        if not self.boards:
            raise ValueError("cluster needs at least one board")
        footprints = {b.partition.blocks[0].footprint for b in self.boards}
        if len(footprints) != 1 and not self.allow_heterogeneous:
            raise ValueError(
                "cluster boards must share one block footprint so images "
                f"relocate anywhere; got {footprints} "
                "(pass allow_heterogeneous=True for mixed clusters)")

    # ------------------------------------------------------------------
    @property
    def num_boards(self) -> int:
        return len(self.boards)

    @property
    def blocks_per_board(self) -> int:
        return self.boards[0].num_blocks

    @property
    def total_blocks(self) -> int:
        return sum(b.num_blocks for b in self.boards)

    @property
    def partition(self) -> FabricPartition:
        """The (shared) fabric partition of every board."""
        return self.boards[0].partition

    @property
    def footprint(self) -> str:
        """The single block footprint of a homogeneous cluster."""
        footprints = self.footprints()
        if len(footprints) != 1:
            raise ValueError(
                "heterogeneous cluster has no single footprint; "
                f"use footprints(): {sorted(footprints)}")
        return next(iter(footprints))

    def footprints(self) -> set[str]:
        return {b.partition.blocks[0].footprint for b in self.boards}

    def boards_with_footprint(self, footprint: str) -> list[FPGABoard]:
        return [b for b in self.boards
                if b.partition.blocks[0].footprint == footprint]

    def board(self, board_id: int) -> FPGABoard:
        return self.boards[board_id]

    def block_at(self, address: BlockAddress):
        board_id, block_index = address
        return self.boards[board_id].block(block_index)

    def all_addresses(self) -> list[BlockAddress]:
        return [(b.board_id, i)
                for b in self.boards for i in range(b.num_blocks)]

    def __str__(self) -> str:
        return (f"cluster of {self.num_boards}x"
                f"{self.boards[0].device.name}, "
                f"{self.total_blocks} physical blocks")


def make_cluster(num_boards: int = 4,
                 partition: FabricPartition | None = None) -> FPGACluster:
    """Build the paper's evaluation platform.

    One fabric partition is planned once and shared across boards (they
    are identical devices); pass ``partition`` to experiment with other
    partitions.
    """
    boards = []
    for board_id in range(num_boards):
        if partition is not None and board_id == 0:
            device = partition.device
            part = partition
        elif partition is not None:
            # clone the reference partition onto this board's own
            # (identical) device instance
            device = make_xcvu37p()
            part = partition.clone_for(device)
        else:
            device = make_xcvu37p()
            part = PartitionPlanner(device).plan()
        boards.append(FPGABoard(board_id=board_id, device=device,
                                partition=part))
    return FPGACluster(
        boards=boards,
        network=RingNetwork(num_nodes=num_boards),
    )


def make_heterogeneous_cluster(device_names: list[str]) -> FPGACluster:
    """A mixed cluster, one board per named device (Section 7).

    Boards of the same device type share a cloned partition (and hence a
    footprint); different types form separate footprint groups that the
    heterogeneous controller compiles for independently.
    """
    if not device_names:
        raise ValueError("need at least one device")
    reference: dict[str, FabricPartition] = {}
    boards = []
    for board_id, name in enumerate(device_names):
        device = device_by_name(name)
        if name in reference:
            part = reference[name].clone_for(device)
        else:
            part = PartitionPlanner(device).plan()
            reference[name] = part
        boards.append(FPGABoard(board_id=board_id, device=device,
                                partition=part))
    return FPGACluster(
        boards=boards,
        network=RingNetwork(num_nodes=len(device_names)),
        allow_heterogeneous=True,
    )
