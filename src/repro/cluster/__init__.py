"""FPGA cluster substrate.

Models the paper's custom-built evaluation platform (Section 5.2): four
Xilinx UltraScale+ XCVU37P boards, each with two DDR4 DIMM sites and four
QSFP cages, sharing a 100 Gb/s bidirectional ring.

- :mod:`repro.cluster.board` -- one board (device + partition + DRAM +
  transceivers);
- :mod:`repro.cluster.network` -- the bidirectional ring;
- :mod:`repro.cluster.cluster` -- the cluster and its factory;
- :mod:`repro.cluster.reconfig` -- partial and full reconfiguration
  timing.
"""

from repro.cluster.board import DimmSite, FPGABoard
from repro.cluster.network import RingNetwork
from repro.cluster.cluster import FPGACluster, make_cluster
from repro.cluster.reconfig import Reconfigurer

__all__ = [
    "DimmSite",
    "FPGABoard",
    "RingNetwork",
    "FPGACluster",
    "make_cluster",
    "Reconfigurer",
]
