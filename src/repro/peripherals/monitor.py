"""The access monitor of the service region.

Section 3.2: "The memory access from applications are monitored to ensure
a secure execution environment."  The monitor wraps a
:class:`~repro.peripherals.dram.VirtualMemory`, audits every access, and
keeps an immutable record of faults so operators (and the isolation tests)
can verify that no tenant ever reached another tenant's memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.peripherals.dram import ProtectionError, VirtualMemory

__all__ = ["AccessRecord", "AccessMonitor"]


@dataclass(frozen=True, slots=True)
class AccessRecord:
    """One audited access."""

    tenant: str
    vaddr: int
    paddr: int | None
    is_write: bool
    faulted: bool


class AccessMonitor:
    """Audit layer between user logic and the DRAM translation unit."""

    def __init__(self, memory: VirtualMemory,
                 record_successes: bool = False,
                 max_records: int | None = None) -> None:
        """``max_records`` bounds the audit ring: with
        ``record_successes=True`` a long simulation would otherwise grow
        ``records`` without limit.  When the bound is hit the *oldest*
        records are dropped (``dropped_records`` counts them) while
        ``access_count``/``fault_count`` stay exact.  ``None`` (the
        default) keeps the original unbounded behavior.
        """
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1 (or None)")
        self.memory = memory
        self.record_successes = record_successes
        self.max_records = max_records
        self.records: deque[AccessRecord] = deque(maxlen=max_records)
        self.dropped_records = 0
        self.access_count = 0
        self.fault_count = 0

    def _append(self, record: AccessRecord) -> None:
        if self.max_records is not None \
                and len(self.records) == self.max_records:
            self.dropped_records += 1  # deque evicts the oldest
        self.records.append(record)

    def access(self, tenant: str, vaddr: int,
               is_write: bool = False) -> int:
        """Translate one access; faults are recorded and re-raised."""
        self.access_count += 1
        try:
            paddr = self.memory.translate(tenant, vaddr)
        except ProtectionError:
            self.fault_count += 1
            self._append(AccessRecord(
                tenant=tenant, vaddr=vaddr, paddr=None,
                is_write=is_write, faulted=True))
            raise
        if self.record_successes:
            self._append(AccessRecord(
                tenant=tenant, vaddr=vaddr, paddr=paddr,
                is_write=is_write, faulted=False))
        return paddr

    def faults_of(self, tenant: str) -> list[AccessRecord]:
        return [r for r in self.records if r.faulted
                and r.tenant == tenant]

    def fault_rate(self) -> float:
        if self.access_count == 0:
            return 0.0
        return self.fault_count / self.access_count
