"""Max-min fair bandwidth arbitration for shared peripherals.

The service region shares each board's DRAM interface among all resident
physical blocks (Fig. 7, region 4).  When residents' aggregate demand
exceeds the DIMM bandwidth, the arbiter allocates max-min fair shares:
every tenant gets its full demand if possible; otherwise the scarce
capacity is water-filled so no tenant that could use more is starved in
favor of a larger one.
"""

from __future__ import annotations

__all__ = ["BandwidthArbiter"]


class BandwidthArbiter:
    """Max-min fair allocator over one shared link."""

    def __init__(self, capacity_gbps: float) -> None:
        if capacity_gbps <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_gbps = capacity_gbps
        self._demand: dict[str, float] = {}

    # ------------------------------------------------------------------
    def attach(self, tenant: str, demand_gbps: float) -> None:
        if demand_gbps < 0:
            raise ValueError("demand cannot be negative")
        if tenant in self._demand:
            raise ValueError(f"tenant {tenant!r} already attached")
        self._demand[tenant] = demand_gbps

    def detach(self, tenant: str) -> None:
        self._demand.pop(tenant, None)

    def add_demand(self, tenant: str, demand_gbps: float) -> None:
        """Accumulate demand (a tenant may hold several deployments)."""
        if demand_gbps < 0:
            raise ValueError("demand cannot be negative")
        self._demand[tenant] = self._demand.get(tenant, 0.0) \
            + demand_gbps

    def remove_demand(self, tenant: str, demand_gbps: float) -> None:
        """Subtract one deployment's demand; drops the tenant at zero."""
        current = self._demand.get(tenant)
        if current is None:
            return
        remaining = current - demand_gbps
        if remaining <= 1e-9:
            del self._demand[tenant]
        else:
            self._demand[tenant] = remaining

    def tenants(self) -> list[str]:
        return list(self._demand)

    def total_demand(self) -> float:
        return sum(self._demand.values())

    # ------------------------------------------------------------------
    def shares(self) -> dict[str, float]:
        """Max-min fair share per tenant (water-filling)."""
        remaining = dict(self._demand)
        shares = {t: 0.0 for t in remaining}
        capacity = self.capacity_gbps
        while remaining and capacity > 1e-12:
            level = capacity / len(remaining)
            satisfied = {t: d for t, d in remaining.items()
                         if d <= level}
            if not satisfied:
                for t in remaining:
                    shares[t] += level
                capacity = 0.0
                break
            for t, d in satisfied.items():
                shares[t] += d
                capacity -= d
                del remaining[t]
        return shares

    def share_of(self, tenant: str) -> float:
        return self.shares()[tenant]

    def slowdown_of(self, tenant: str) -> float:
        """How much longer the tenant's memory-bound phases take.

        1.0 when the tenant receives its full demand; demand/share when
        throttled.  Tenants with zero demand are never slowed.
        """
        demand = self._demand[tenant]
        if demand == 0:
            return 1.0
        share = self.share_of(tenant)
        if share <= 0:
            return float("inf")
        return max(1.0, demand / share)

    def is_oversubscribed(self) -> bool:
        return self.total_demand() > self.capacity_gbps + 1e-9
