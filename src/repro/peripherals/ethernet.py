"""Virtualized Ethernet.

The abstract gives "on-board DRAM and Ethernet" as the peripherals ViTAL
virtualizes.  The model is an SR-IOV-style NIC: tenants get virtual ports
with weighted shares of the physical port's bandwidth, traffic is
accounted per port, and a tenant can never observe (or exhaust) another
tenant's traffic -- the isolation property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VirtualPort", "VirtualNIC"]


@dataclass(slots=True)
class VirtualPort:
    """One tenant's slice of the physical port."""

    tenant: str
    weight: float
    tx_bytes: int = 0
    rx_bytes: int = 0
    _frames: list[bytes] = field(default_factory=list, repr=False)

    def deliver(self, frame: bytes) -> None:
        self._frames.append(frame)
        self.rx_bytes += len(frame)

    def drain(self) -> list[bytes]:
        frames, self._frames = self._frames, []
        return frames


class VirtualNIC:
    """Weighted-share multiplexer over one physical Ethernet port."""

    def __init__(self, port_bandwidth_gbps: float = 100.0) -> None:
        self.port_bandwidth_gbps = port_bandwidth_gbps
        self._ports: dict[str, VirtualPort] = {}

    # ------------------------------------------------------------------
    def attach(self, tenant: str, weight: float = 1.0) -> VirtualPort:
        if tenant in self._ports:
            raise ValueError(f"tenant {tenant!r} already attached")
        if weight <= 0:
            raise ValueError("weight must be positive")
        port = VirtualPort(tenant=tenant, weight=weight)
        self._ports[tenant] = port
        return port

    def detach(self, tenant: str) -> None:
        self._ports.pop(tenant, None)

    def port_of(self, tenant: str) -> VirtualPort:
        return self._ports[tenant]

    def tenants(self) -> list[str]:
        return list(self._ports)

    # ------------------------------------------------------------------
    def bandwidth_share_gbps(self, tenant: str) -> float:
        """The tenant's weighted fair share of the physical port."""
        port = self._ports[tenant]
        total = sum(p.weight for p in self._ports.values())
        return self.port_bandwidth_gbps * port.weight / total

    def send(self, tenant: str, dst_tenant: str, frame: bytes) -> None:
        """Tenant-to-tenant frame delivery through the switch.

        Unknown destinations are dropped (counted on the sender), never
        misdelivered -- a tenant cannot address another tenant's traffic
        except through an attached port.
        """
        src = self._ports[tenant]   # KeyError = not attached, a real bug
        src.tx_bytes += len(frame)
        dst = self._ports.get(dst_tenant)
        if dst is not None:
            dst.deliver(frame)

    def transfer_time_s(self, tenant: str, nbytes: int) -> float:
        """Time to move ``nbytes`` at the tenant's current share."""
        share = self.bandwidth_share_gbps(tenant)
        return nbytes * 8 / (share * 1e9)
