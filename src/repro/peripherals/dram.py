"""Virtual memory over the on-board DRAM.

Every tenant addresses DRAM through a private virtual address space
starting at zero; the service region's translation unit maps it onto
physical segments and faults on anything outside the tenant's allocation.
Segments are allocated first-fit over the physical space with no overlap
-- the isolation property the tests assert -- and freed wholesale when the
tenant leaves (no per-page reclamation is needed for accelerator-style
workloads, which allocate at deploy time).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProtectionError", "MemorySegment", "VirtualMemory"]

#: Allocation granularity: 2 MB superpages, typical for FPGA shells.
PAGE_BYTES = 2 << 20


class ProtectionError(RuntimeError):
    """A tenant touched memory outside its allocation."""


@dataclass(frozen=True, slots=True)
class MemorySegment:
    """A contiguous physical range owned by one tenant."""

    tenant: str
    virt_base: int
    phys_base: int
    length: int

    @property
    def virt_end(self) -> int:
        return self.virt_base + self.length

    @property
    def phys_end(self) -> int:
        return self.phys_base + self.length

    def contains_virt(self, vaddr: int) -> bool:
        return self.virt_base <= vaddr < self.virt_end


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


class VirtualMemory:
    """Per-board translation unit with first-fit physical allocation."""

    def __init__(self, capacity_bytes: int,
                 page_bytes: int = PAGE_BYTES) -> None:
        if capacity_bytes < page_bytes:
            raise ValueError("capacity smaller than one page")
        self.capacity_bytes = capacity_bytes
        self.page_bytes = page_bytes
        self._segments: dict[str, list[MemorySegment]] = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, tenant: str, size_bytes: int) -> MemorySegment:
        """Give ``tenant`` a fresh segment of at least ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError("allocation must be positive")
        length = _round_up(size_bytes, self.page_bytes)
        phys_base = self._find_gap(length)
        if phys_base is None:
            raise MemoryError(
                f"DRAM exhausted: {length} bytes requested, "
                f"{self.free_bytes()} contiguous-free not available")
        virt_base = sum(s.length for s in self._segments.get(tenant, []))
        segment = MemorySegment(tenant=tenant, virt_base=virt_base,
                                phys_base=phys_base, length=length)
        self._segments.setdefault(tenant, []).append(segment)
        return segment

    def release(self, tenant: str) -> None:
        """Free everything the tenant owns (idempotent)."""
        self._segments.pop(tenant, None)

    def release_segment(self, segment: MemorySegment) -> None:
        """Free one specific segment (a tenant with several deployments
        keeps the others); idempotent."""
        owned = self._segments.get(segment.tenant)
        if not owned:
            return
        remaining = [s for s in owned if s != segment]
        if remaining:
            self._segments[segment.tenant] = remaining
        else:
            del self._segments[segment.tenant]

    # ------------------------------------------------------------------
    # translation / protection
    # ------------------------------------------------------------------
    def translate(self, tenant: str, vaddr: int) -> int:
        """Virtual -> physical; raises :class:`ProtectionError` on any
        access outside the tenant's segments."""
        for segment in self._segments.get(tenant, ()):
            if segment.contains_virt(vaddr):
                return segment.phys_base + (vaddr - segment.virt_base)
        raise ProtectionError(
            f"tenant {tenant!r}: fault at virtual address {vaddr:#x}")

    def owner_of_physical(self, paddr: int) -> str | None:
        for tenant, segments in self._segments.items():
            for segment in segments:
                if segment.phys_base <= paddr < segment.phys_end:
                    return tenant
        return None

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def segments_of(self, tenant: str) -> list[MemorySegment]:
        return list(self._segments.get(tenant, ()))

    def tenants(self) -> list[str]:
        return list(self._segments)

    def used_bytes(self) -> int:
        return sum(s.length for segs in self._segments.values()
                   for s in segs)

    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes()

    def check_isolation(self) -> None:
        """Assert no two segments overlap physically (defense in depth)."""
        spans = sorted(
            (s.phys_base, s.phys_end, s.tenant)
            for segs in self._segments.values() for s in segs)
        for (a_start, a_end, a_t), (b_start, _b_end, b_t) in zip(
                spans, spans[1:]):
            if b_start < a_end:
                raise ProtectionError(
                    f"segments of {a_t!r} and {b_t!r} overlap "
                    f"at {b_start:#x}")

    # ------------------------------------------------------------------
    def _find_gap(self, length: int) -> int | None:
        """First-fit search for a free physical range."""
        spans = [(s.phys_base, s.phys_end)
                 for segs in self._segments.values() for s in segs]
        if not spans:
            return 0 if self.capacity_bytes >= length else None
        if len(spans) > 1:
            spans.sort()
        cursor = 0
        for start, end in spans:
            if start - cursor >= length:
                return cursor
            cursor = max(cursor, end)
        if self.capacity_bytes - cursor >= length:
            return cursor
        return None
