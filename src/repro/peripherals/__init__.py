"""Peripheral virtualization (Service Region circuits).

Section 3.2: "ViTAL also provides virtualization support for the peripheral
devices attached to the physical FPGAs.  For instance, ViTAL provides a
virtual memory support to share the off-chip DRAM... The memory access
from applications are monitored to ensure a secure execution environment."

- :mod:`repro.peripherals.dram` -- segment-based virtual memory over the
  board DRAM with translation and hard protection;
- :mod:`repro.peripherals.monitor` -- the access monitor that audits every
  translation and records violations;
- :mod:`repro.peripherals.ethernet` -- a virtualized NIC multiplexing the
  optical port among tenants with bandwidth shares.
"""

from repro.peripherals.dram import (
    MemorySegment,
    ProtectionError,
    VirtualMemory,
)
from repro.peripherals.monitor import AccessMonitor, AccessRecord
from repro.peripherals.ethernet import VirtualNIC, VirtualPort
from repro.peripherals.bandwidth import BandwidthArbiter

__all__ = [
    "MemorySegment",
    "ProtectionError",
    "VirtualMemory",
    "AccessMonitor",
    "AccessRecord",
    "VirtualNIC",
    "VirtualPort",
    "BandwidthArbiter",
]
