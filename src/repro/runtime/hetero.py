"""Heterogeneous-cluster management (the Section 7 extension).

"ViTAL can be extended to virtualize a heterogeneous FPGA cluster
comprising different types of FPGAs."  The extension is natural under the
abstraction: each device type yields its own physical-block footprint, so
the cluster decomposes into footprint groups; an application is compiled
once *per footprint* (still independent of location within the group),
and the runtime places it on whichever group has room.

``HeterogeneousStack`` wraps the compile-per-footprint bookkeeping;
``HeterogeneousController`` restricts each placement to boards whose
footprint matches the artifact being deployed, reusing the base
controller's relocation/reconfiguration/memory path unchanged.
"""

from __future__ import annotations

from repro.cluster.cluster import FPGACluster
from repro.compiler.bitstream import CompiledApp
from repro.compiler.flow import CompilationFlow
from repro.hls.kernels import KernelSpec
from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.controller import SystemController
from repro.runtime.policy import AllocationPolicy
from repro.runtime.types import Deployment

__all__ = ["HeterogeneousController", "HeterogeneousStack",
           "HeterogeneousManagerAdapter"]


class HeterogeneousController(SystemController):
    """System controller over a mixed-footprint cluster."""

    name = "vital-hetero"

    def __init__(self, cluster: FPGACluster,
                 policy: AllocationPolicy | None = None) -> None:
        super().__init__(cluster, policy=policy)
        # replace the homogeneous controller's single-footprint DB with
        # one bitstream database per footprint group
        self._databases = {fp: BitstreamDB(fp)
                           for fp in cluster.footprints()}
        # footprint -> boards *outside* that group (fast-path mask);
        # the topology is immutable, so compute once
        all_boards = {b.board_id for b in cluster.boards}
        self._outside_group = {
            fp: tuple(sorted(all_boards - {
                b.board_id
                for b in cluster.boards_with_footprint(fp)}))
            for fp in cluster.footprints()}

    # ------------------------------------------------------------------
    def register(self, app: CompiledApp) -> None:
        db = self._databases.get(app.footprint)
        if db is None:
            raise ValueError(
                f"{app.name}: footprint {app.footprint!r} matches no "
                f"board group; cluster has {sorted(self._databases)}")
        db.register(app)

    def _register_if_needed(self, app: CompiledApp) -> None:
        db = self._databases.get(app.footprint)
        if db is None:
            raise ValueError(
                f"{app.name}: compiled for unknown footprint "
                f"{app.footprint!r}")
        if app.name not in db:
            db.register(app)

    def _allocatable_blocks(self, app: CompiledApp,
                            ) -> dict[int, list[int]]:
        """Only boards whose footprint matches the artifact (and which
        health / guard quarantine have not taken out of service)."""
        group = {b.board_id
                 for b in self.cluster.boards_with_footprint(
                     app.footprint)}
        return self._filter_unavailable(
            {board: blocks
             for board, blocks in
             self.resource_db.free_by_board().items()
             if board in group})

    def _fast_excluded(self, app: CompiledApp) -> tuple:
        """Fast-path mask: out-of-group boards plus any quarantines."""
        outside = self._outside_group.get(app.footprint, ())
        excluded = super()._fast_excluded(app)
        return outside + tuple(b for b in excluded
                               if b not in outside)


class HeterogeneousStack:
    """Compile-per-footprint front door over a mixed cluster."""

    def __init__(self, cluster: FPGACluster,
                 policy: AllocationPolicy | None = None,
                 seed: int = 0) -> None:
        self.cluster = cluster
        self.controller = HeterogeneousController(cluster, policy=policy)
        self._flows = {
            fp: CompilationFlow(
                fabric=cluster.boards_with_footprint(fp)[0].partition,
                seed=seed)
            for fp in cluster.footprints()}
        #: kernel name -> footprint -> artifact
        self._apps: dict[str, dict[str, CompiledApp]] = {}
        self._next_request_id = 0

    # ------------------------------------------------------------------
    def compile(self, spec: KernelSpec) -> dict[str, CompiledApp]:
        """One artifact per footprint group (each position-independent
        within its group)."""
        if spec.name not in self._apps:
            artifacts = {}
            for fp, flow in self._flows.items():
                app = flow.compile(spec)
                self.controller.register(app)
                artifacts[fp] = app
            self._apps[spec.name] = artifacts
        return self._apps[spec.name]

    def deploy(self, spec: KernelSpec,
               now: float = 0.0) -> Deployment | None:
        """Place on the footprint group with the most free blocks."""
        artifacts = self.compile(spec)
        request_id = self._next_request_id
        self._next_request_id += 1
        free = self.controller.resource_db.free_by_board()
        group_free = {
            fp: sum(len(free[b.board_id]) for b in
                    self.cluster.boards_with_footprint(fp))
            for fp in artifacts}
        for fp in sorted(artifacts, key=lambda f: -group_free[f]):
            deployment = self.controller.try_deploy(
                artifacts[fp], request_id, now)
            if deployment is not None:
                return deployment
        return None

    def release(self, deployment: Deployment,
                now: float = 0.0) -> None:
        self.controller.release(deployment, now)


class HeterogeneousManagerAdapter:
    """Drives a mixed cluster through the simulator's manager protocol.

    The simulator hands over homogeneous-cluster artifacts; this adapter
    re-keys by kernel *specification*, compiles per footprint group on
    first sight, and delegates to the heterogeneous stack -- so the same
    Table 3 workloads replay unchanged on mixed clusters.
    """

    name = "vital-hetero"

    def __init__(self, cluster: FPGACluster) -> None:
        self.stack = HeterogeneousStack(cluster)

    def try_deploy(self, app: CompiledApp, request_id: int,
                   now: float) -> Deployment | None:
        artifacts = self.stack.compile(app.spec)
        controller = self.stack.controller
        free = controller.resource_db.free_by_board()
        group_free = {
            fp: sum(len(free[b.board_id]) for b in
                    self.stack.cluster.boards_with_footprint(fp))
            for fp in artifacts}
        for fp in sorted(artifacts, key=lambda f: -group_free[f]):
            deployment = controller.try_deploy(artifacts[fp],
                                               request_id, now)
            if deployment is not None:
                return deployment
        return None

    def release(self, deployment: Deployment, now: float) -> None:
        self.stack.controller.release(deployment, now)

    def busy_blocks(self) -> float:
        return self.stack.controller.busy_blocks()

    def capacity_blocks(self) -> float:
        return self.stack.controller.capacity_blocks()
