"""Bitstream-database persistence.

The system controller's bitstream database (Fig. 6) is the artifact store
of offline compilation; in production it outlives any controller process.
This module serializes compiled applications to a versioned JSON document
and restores them, refusing documents whose footprint does not match the
loading cluster -- the same guarantee the live database enforces.

The per-application payload is the canonical deterministic form defined
by :meth:`repro.compiler.bitstream.CompiledApp.to_dict`, shared with the
compile cache so a persisted artifact round-trips byte-identically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.compiler.bitstream import CompiledApp
from repro.runtime.bitstream_db import BitstreamDB

__all__ = ["save_bitstream_db", "load_bitstream_db",
           "app_to_dict", "app_from_dict"]

_FORMAT_VERSION = 1


def app_to_dict(app: CompiledApp) -> dict:
    """Serialize one compiled application (canonical form)."""
    return app.to_dict()


def app_from_dict(data: dict) -> CompiledApp:
    """Reconstruct a compiled application; validates before returning."""
    return CompiledApp.from_dict(data)


def save_bitstream_db(db: BitstreamDB, path: "str | Path") -> None:
    """Write every registered application to ``path`` (JSON)."""
    payload = {
        "format": "vital-bitstream-db",
        "version": _FORMAT_VERSION,
        "footprint": db.footprint,
        "apps": [app_to_dict(db.lookup(name)) for name in db.names()],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_bitstream_db(path: "str | Path",
                      expected_footprint: str) -> BitstreamDB:
    """Restore a database, enforcing the loading cluster's footprint."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "vital-bitstream-db":
        raise ValueError("not a bitstream database document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported version {payload.get('version')!r}")
    if payload["footprint"] != expected_footprint:
        raise ValueError(
            f"database targets footprint {payload['footprint']!r}, "
            f"cluster uses {expected_footprint!r} -- recompile")
    db = BitstreamDB(expected_footprint)
    for entry in payload["apps"]:
        db.register(app_from_dict(entry))
    return db
