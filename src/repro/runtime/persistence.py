"""Bitstream-database persistence.

The system controller's bitstream database (Fig. 6) is the artifact store
of offline compilation; in production it outlives any controller process.
This module serializes compiled applications to a versioned JSON document
and restores them, refusing documents whose footprint does not match the
loading cluster -- the same guarantee the live database enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.compiler.bitstream import CompiledApp, VirtualBlockImage
from repro.compiler.interface_gen import (
    ChannelSpec,
    LatencyInsensitiveInterface,
)
from repro.compiler.timing import CompileTimeBreakdown
from repro.fabric.resources import ResourceVector
from repro.hls.kernels import KernelSpec, SizeClass
from repro.runtime.bitstream_db import BitstreamDB

__all__ = ["save_bitstream_db", "load_bitstream_db",
           "app_to_dict", "app_from_dict"]

_FORMAT_VERSION = 1


def _vec_to_dict(vec: ResourceVector) -> dict:
    return vec.as_dict()


def _vec_from_dict(data: dict) -> ResourceVector:
    return ResourceVector(**data)


def app_to_dict(app: CompiledApp) -> dict:
    """Serialize one compiled application."""
    return {
        "spec": {
            "family": app.spec.family,
            "size": app.spec.size.value,
            "resources": _vec_to_dict(app.spec.resources),
            "work_gops": app.spec.work_gops,
            "stream_width_bits": app.spec.stream_width_bits,
            "paper_blocks": app.spec.paper_blocks,
        },
        "footprint": app.footprint,
        "fmax_mhz": app.fmax_mhz,
        "cut_bandwidth_bits": app.cut_bandwidth_bits,
        "flows": [[src, dst, bits]
                  for (src, dst), bits in sorted(app.flows.items())],
        "images": [
            {
                "virtual_block": img.virtual_block,
                "usage": _vec_to_dict(img.usage),
                "fmax_mhz": img.fmax_mhz,
                "size_mb": img.size_mb,
            }
            for img in app.images
        ],
        "channels": [
            {
                "src": ch.src_block,
                "dst": ch.dst_block,
                "payload_bits": ch.payload_bits,
                "fifo_depth": ch.fifo_depth,
                "width_bits": ch.width_bits,
                "init_tokens": ch.init_tokens,
            }
            for ch in app.interface.channels
        ],
        "breakdown": app.breakdown.as_dict()
        | {"measured_custom_s": app.breakdown.measured_custom_s},
    }


def app_from_dict(data: dict) -> CompiledApp:
    """Reconstruct a compiled application; validates before returning."""
    spec_data = data["spec"]
    spec = KernelSpec(
        family=spec_data["family"],
        size=SizeClass(spec_data["size"]),
        resources=_vec_from_dict(spec_data["resources"]),
        work_gops=spec_data["work_gops"],
        stream_width_bits=spec_data["stream_width_bits"],
        paper_blocks=spec_data["paper_blocks"],
    )
    images = [
        VirtualBlockImage(
            app_name=spec.name,
            virtual_block=img["virtual_block"],
            footprint=data["footprint"],
            usage=_vec_from_dict(img["usage"]),
            fmax_mhz=img["fmax_mhz"],
            size_mb=img["size_mb"],
        )
        for img in data["images"]
    ]
    channels = [
        ChannelSpec(
            src_block=ch["src"], dst_block=ch["dst"],
            payload_bits=ch["payload_bits"],
            fifo_depth=ch["fifo_depth"],
            width_bits=ch["width_bits"],
            init_tokens=ch["init_tokens"],
        )
        for ch in data["channels"]
    ]
    interface = LatencyInsensitiveInterface(
        app_name=spec.name, channels=channels,
        num_blocks=len(images))
    b = data["breakdown"]
    breakdown = CompileTimeBreakdown(
        synthesis_s=b["synthesis_s"],
        partition_s=b["partition_s"],
        interface_gen_s=b["interface_gen_s"],
        local_pnr_s=b["local_pnr_s"],
        relocation_s=b["relocation_s"],
        global_pnr_s=b["global_pnr_s"],
        measured_custom_s=b.get("measured_custom_s", 0.0),
    )
    app = CompiledApp(
        spec=spec,
        images=images,
        interface=interface,
        fmax_mhz=data["fmax_mhz"],
        footprint=data["footprint"],
        breakdown=breakdown,
        cut_bandwidth_bits=data["cut_bandwidth_bits"],
        flows={(src, dst): bits
               for src, dst, bits in data["flows"]},
    )
    app.validate()
    return app


def save_bitstream_db(db: BitstreamDB, path: "str | Path") -> None:
    """Write every registered application to ``path`` (JSON)."""
    payload = {
        "format": "vital-bitstream-db",
        "version": _FORMAT_VERSION,
        "footprint": db.footprint,
        "apps": [app_to_dict(db.lookup(name)) for name in db.names()],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_bitstream_db(path: "str | Path",
                      expected_footprint: str) -> BitstreamDB:
    """Restore a database, enforcing the loading cluster's footprint."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "vital-bitstream-db":
        raise ValueError("not a bitstream database document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported version {payload.get('version')!r}")
    if payload["footprint"] != expected_footprint:
        raise ValueError(
            f"database targets footprint {payload['footprint']!r}, "
            f"cluster uses {expected_footprint!r} -- recompile")
    db = BitstreamDB(expected_footprint)
    for entry in payload["apps"]:
        db.register(app_from_dict(entry))
    return db
