"""Isolation invariants (Section 3.4).

"Consequently, one physical block is not shared among multiple virtual
blocks in ViTAL.  This enables a complete isolation and effectively
protects applications from different types of attack."

These checks are intentionally independent re-derivations: they inspect
the controller's state from the outside rather than trusting its own
bookkeeping, so a controller bug that breaks isolation is caught even if
its internal counters look consistent.
"""

from __future__ import annotations

from repro.runtime.controller import SystemController

__all__ = ["verify_isolation", "IsolationViolation"]


class IsolationViolation(AssertionError):
    """A tenant could observe or affect another tenant."""


def verify_isolation(controller: SystemController) -> None:
    """Raise :class:`IsolationViolation` on any sharing between tenants.

    Checks, in order:

    1. no physical block hosts more than one deployment;
    2. every block the resource DB marks allocated belongs to exactly the
       deployment the controller reports (no orphans, no ghosts);
    3. per-board DRAM segments of distinct tenants never overlap.
    """
    seen: dict[tuple[int, int], int] = {}
    for deployment in controller.running():
        for address in deployment.placement.addresses:
            if address in seen:
                raise IsolationViolation(
                    f"block {address} shared by requests "
                    f"{seen[address]} and {deployment.request_id}")
            seen[address] = deployment.request_id

    db = controller.resource_db
    # re-derive allocation from the DB and cross-check
    allocated = {addr for addr in controller.cluster.all_addresses()
                 if db.owner_of(addr) is not None}
    if allocated != set(seen):
        ghosts = allocated - set(seen)
        orphans = set(seen) - allocated
        raise IsolationViolation(
            f"resource DB and deployments disagree: ghosts={ghosts}, "
            f"orphans={orphans}")
    for addr, owner in seen.items():
        if db.owner_of(addr) != owner:
            raise IsolationViolation(
                f"block {addr}: DB owner {db.owner_of(addr)} != "
                f"deployment {owner}")

    for board_id, memory in controller.memories.items():
        memory.check_isolation()
