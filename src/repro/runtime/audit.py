"""Structured audit log of runtime events.

A multi-tenant controller is an accountable system: operators need to
answer "which blocks did tenant X hold at time T" and "what caused this
pause" after the fact.  The audit log records every deploy, release,
rejection and migration as an immutable, timestamped entry, queryable by
tenant, request and time window -- and the isolation tests replay it to
cross-check the controller's live state (a divergent log is itself a
bug).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = ["AuditEvent", "AuditEntry", "AuditLog"]


class AuditEvent(enum.Enum):
    DEPLOY = "deploy"
    REJECT = "reject"
    RELEASE = "release"
    MIGRATE = "migrate"
    ISOLATION_CHECK = "isolation-check"
    #: a board fail-stopped (request id -1: board-scoped, not a tenant's)
    FAIL = "fail"
    #: a deployment was torn down because its board failed
    EVICT = "evict"
    #: a failed board returned to service
    REPAIR = "repair"
    #: an evicted deployment was re-placed on healthy boards
    RECOVER = "recover"
    #: an ICAP programming attempt failed transiently and was retried
    RETRY = "retry"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class AuditEntry:
    """One immutable log record."""

    sequence: int
    time_s: float
    event: AuditEvent
    request_id: int
    tenant: str
    detail: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({
            "seq": self.sequence,
            "t": self.time_s,
            "event": self.event.value,
            "request": self.request_id,
            "tenant": self.tenant,
            "detail": self.detail,
        })


class AuditLog:
    """Append-only event store with simple queries.

    ``strict=True`` rejects out-of-order timestamps; the default clamps
    them to the last recorded time (and keeps the reported value in the
    entry detail), since library callers may release with a stale clock
    while the log itself must stay monotonic to be replayable.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._entries: list[AuditEntry] = []

    # ------------------------------------------------------------------
    def record(self, time_s: float, event: AuditEvent, request_id: int,
               tenant: str, **detail) -> AuditEntry:
        if self._entries and time_s < self._entries[-1].time_s:
            if self.strict:
                raise ValueError(
                    f"audit time went backwards: {time_s} < "
                    f"{self._entries[-1].time_s}")
            detail = dict(detail, reported_t=time_s)
            time_s = self._entries[-1].time_s
        # ``detail`` is this call's own kwargs dict -- fresh per call,
        # so storing it directly is safe and skips a copy per entry
        entry = AuditEntry(
            sequence=len(self._entries),
            time_s=time_s,
            event=event,
            request_id=request_id,
            tenant=tenant,
            detail=detail,
        )
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[AuditEntry]:
        return list(self._entries)

    def by_tenant(self, tenant: str) -> list[AuditEntry]:
        return [e for e in self._entries if e.tenant == tenant]

    def by_request(self, request_id: int) -> list[AuditEntry]:
        return [e for e in self._entries
                if e.request_id == request_id]

    def window(self, t0: float, t1: float) -> list[AuditEntry]:
        return [e for e in self._entries if t0 <= e.time_s <= t1]

    def counts(self) -> dict[AuditEvent, int]:
        out: dict[AuditEvent, int] = {}
        for entry in self._entries:
            out[entry.event] = out.get(entry.event, 0) + 1
        return out

    # ------------------------------------------------------------------
    def live_requests(self) -> set[int]:
        """Requests with a DEPLOY and no later RELEASE or EVICT --
        re-derived purely from the log, for cross-checking the
        controller."""
        live: set[int] = set()
        for entry in self._entries:
            if entry.event is AuditEvent.DEPLOY:
                live.add(entry.request_id)
            elif entry.event in (AuditEvent.RELEASE, AuditEvent.EVICT):
                live.discard(entry.request_id)
        return live

    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self._entries)
