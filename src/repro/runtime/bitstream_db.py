"""The bitstream database (Section 3.4, Fig. 6).

"...and a bitstream database to store the mapping results of user
applications."  Keys are application names; values the
:class:`~repro.compiler.bitstream.CompiledApp` artifacts of the
compilation flow.  The database refuses artifacts whose footprint differs
from the cluster's -- a compiled image for a different block geometry can
never be deployed, and catching that at registration keeps deploy-time
errors out of the hot path.
"""

from __future__ import annotations

from repro.compiler.bitstream import CompiledApp

__all__ = ["BitstreamDB"]


class BitstreamDB:
    """Compiled-application store keyed by application name."""

    def __init__(self, footprint: str) -> None:
        self.footprint = footprint
        self._apps: dict[str, CompiledApp] = {}

    def register(self, app: CompiledApp, replace: bool = False) -> None:
        """Store one artifact under its application name.

        Re-registering the *same* artifact is an idempotent no-op (the
        offline service may legitimately hand the database a cached
        object twice).  Registering a *different* artifact under a name
        already taken raises -- silently swapping bitstreams under live
        deployments corrupts capacity accounting -- unless the caller
        states the intent with ``replace=True``.
        """
        app.validate()
        if app.footprint != self.footprint:
            raise ValueError(
                f"{app.name}: compiled for footprint {app.footprint!r}, "
                f"cluster uses {self.footprint!r} -- recompile required")
        existing = self._apps.get(app.name)
        if existing is not None and not replace:
            # identical artifact (same object, or same canonical bytes,
            # e.g. reloaded from the cache's disk tier): free no-op
            if existing is app or existing.to_json() == app.to_json():
                return
            raise ValueError(
                f"{app.name}: already registered with a different "
                f"artifact; pass replace=True to overwrite")
        self._apps[app.name] = app

    def lookup(self, name: str) -> CompiledApp:
        try:
            return self._apps[name]
        except KeyError:
            raise KeyError(
                f"no bitstream for {name!r}; offline compilation must run "
                "before deployment") from None

    def __contains__(self, name: str) -> bool:
        return name in self._apps

    def __len__(self) -> int:
        return len(self._apps)

    def names(self) -> list[str]:
        return sorted(self._apps)
