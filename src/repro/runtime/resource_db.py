"""The resource database (Section 3.4, Fig. 6).

"It maintains a resource database to store the status of all physical
blocks."  The database is authoritative: allocation and release go through
it, it rejects double-allocation and foreign frees, and its accessors feed
both the policies (free blocks per board) and the metrics (utilization).

The store keeps two representations of the same state:

- ``_entries`` -- the per-block truth (state + owner), and
- incremental indices over it: O(1) allocated/failed counters, a
  request-id -> owned-blocks index, per-board free-block sets and a
  board-failure set, all maintained on every transition.

The indices exist because the System-Layer simulator queries
``allocated_count``/``free_by_board``/``blocks_of`` on *every* event;
rescanning the whole block table per call is O(total blocks) and dominates
wall-clock on large clusters.  :meth:`verify` cross-checks the indices
against a full rescan (the tests run it after every random transition);
:class:`RescanResourceDB` preserves the original scan-per-query behavior
as a reference implementation for differential tests and for the
scalability benchmark's "before" measurement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import FPGACluster
from repro.runtime.types import BlockAddress

__all__ = ["BlockState", "ResourceDB", "RescanResourceDB"]


class BlockState(enum.Enum):
    FREE = "free"
    ALLOCATED = "allocated"
    #: the hosting board fail-stopped; the block is out of service and
    #: excluded from every allocation query until the board is repaired
    FAILED = "failed"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class _Entry:
    state: BlockState = BlockState.FREE
    owner: int | None = None  # request id


class ResourceDB:
    """Block-state store over one cluster."""

    def __init__(self, cluster: FPGACluster) -> None:
        self.cluster = cluster
        self._entries: dict[BlockAddress, _Entry] = {
            addr: _Entry() for addr in cluster.all_addresses()}
        self._board_ids: list[int] = [b.board_id for b in cluster.boards]
        self._board_blocks: dict[int, list[BlockAddress]] = {
            b.board_id: [(b.board_id, i) for i in range(b.num_blocks)]
            for b in cluster.boards}
        # ---- incremental indices (see module docstring) --------------
        self._free: dict[int, set[int]] = {
            b.board_id: set(range(b.num_blocks))
            for b in cluster.boards}
        #: per-board sorted view of ``_free``; ``None`` == stale.  The
        #: cached lists are never mutated in place (only rebuilt), so a
        #: view handed out by ``free_by_board`` stays a true snapshot
        #: even across later transitions.
        self._free_view: dict[int, list[int] | None] = {
            b: None for b in self._board_ids}
        self._owned: dict[int, set[BlockAddress]] = {}
        self._allocated = 0
        self._failed = 0
        self._failed_boards: set[int] = set()
        # ---- flat-array mirrors (vectorized policy queries) ----------
        #: board id -> row in the arrays below (ids are usually the
        #: contiguous 0..n-1, but the mapping is kept explicit)
        self._row_of: dict[int, int] = {
            b: row for row, b in enumerate(self._board_ids)}
        self._ids_arr = np.asarray(self._board_ids, dtype=np.int64)
        self._capacity_arr = np.asarray(
            [b.num_blocks for b in cluster.boards], dtype=np.int64)
        #: per-board free-block counts as one int64 vector -- the batched
        #: fit test the communication-aware policy's array kernel runs is
        #: a comparison against this vector instead of a dict walk
        self._free_counts = self._capacity_arr.copy()
        #: per-footprint-class free-block bitmap rows: class name ->
        #: rows of the boards in that class (one entry on homogeneous
        #: clusters); lets heterogeneous fit tests gather one slice
        self._class_rows: dict[str, np.ndarray] = {}
        by_class: dict[str, list[int]] = {}
        for row, board in enumerate(cluster.boards):
            by_class.setdefault(
                board.partition.blocks[0].footprint, []).append(row)
        for footprint, rows in by_class.items():
            self._class_rows[footprint] = np.asarray(rows,
                                                     dtype=np.intp)
        #: (boards, max blocks/board) free-block bitmap; padding columns
        #: of short boards stay False forever
        max_blocks = int(self._capacity_arr.max())
        self._free_mask = np.zeros(
            (len(self._board_ids), max_blocks), dtype=bool)
        for row, board in enumerate(cluster.boards):
            self._free_mask[row, :board.num_blocks] = True
        self._total_free = int(self._free_counts.sum())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def total_blocks(self) -> int:
        return len(self._entries)

    def state_of(self, address: BlockAddress) -> BlockState:
        return self._entries[address].state

    def owner_of(self, address: BlockAddress) -> int | None:
        return self._entries[address].owner

    def _free_sorted(self, board: int) -> list[int]:
        view = self._free_view[board]
        if view is None:
            view = self._free_view[board] = sorted(self._free[board])
        return view

    def free_blocks(self) -> list[BlockAddress]:
        return [(board, block) for board in self._board_ids
                for block in self._free_sorted(board)]

    def free_by_board(self) -> dict[int, list[int]]:
        """Board id -> free physical-block indices (policy input)."""
        return {board: self._free_sorted(board)
                for board in self._board_ids}

    def free_by_board_one(self, board: int) -> list[int]:
        """One board's sorted free-block indices (snapshot view).

        The policy's array fast path resolves concrete block indices
        only for the boards a winning allocation actually uses, instead
        of materializing the whole candidate map up front.
        """
        return self._free_sorted(board)

    def free_counts_by_board(self) -> dict[int, int]:
        """Healthy board id -> free-block count (fragmentation input).

        O(boards) with no sorting or copying -- cheap enough to call on
        every allocate/release to keep a live gauge current.  Failed
        boards are excluded: their blocks are out of service, not free,
        and counting them would overstate fragmentation during outages.
        """
        return {board: len(self._free[board])
                for board in self._board_ids
                if board not in self._failed_boards}

    def allocated_count(self) -> int:
        return self._allocated

    def failed_count(self) -> int:
        return self._failed

    def failed_boards(self) -> set[int]:
        return set(self._failed_boards)

    def utilization(self) -> float:
        """Fraction of physical blocks currently allocated."""
        return self.allocated_count() / self.total_blocks

    def blocks_of(self, request_id: int) -> list[BlockAddress]:
        return sorted(self._owned.get(request_id, ()))

    # ------------------------------------------------------------------
    # flat-array queries (the policy's array kernel reads these)
    # ------------------------------------------------------------------
    def free_counts_vector(self) -> "np.ndarray":
        """Per-board free-block counts, row order = board order.

        Returns the live vector (no copy): callers must treat it as
        read-only and copy before masking boards out.  Failed boards
        read zero (their free sets are cleared on failure).
        """
        return self._free_counts

    def board_ids_array(self) -> "np.ndarray":
        """Board id of each row of :meth:`free_counts_vector`."""
        return self._ids_arr

    def board_row(self, board_id: int) -> int:
        return self._row_of[board_id]

    def class_rows(self, footprint: str) -> "np.ndarray":
        """Rows of the boards whose blocks carry ``footprint``."""
        return self._class_rows[footprint]

    def free_mask(self) -> "np.ndarray":
        """The (boards, max blocks) free-block bitmap (read-only)."""
        return self._free_mask

    def fit_mask(self, needed: int,
                 footprint: "str | None" = None) -> "np.ndarray":
        """Batched fit test: per-board ``free >= needed`` booleans.

        With ``footprint``, boards outside that class read False -- the
        heterogeneous controller's per-class candidate filter as one
        vector compare instead of a per-board dict walk.
        """
        fits = self._free_counts >= needed
        if footprint is not None:
            class_fits = np.zeros(len(self._board_ids), dtype=bool)
            rows = self._class_rows.get(footprint)
            if rows is not None:
                class_fits[rows] = fits[rows]
            return class_fits
        return fits

    def total_free_blocks(self) -> int:
        """Cluster-wide free blocks, O(1) (failed blocks excluded)."""
        return self._total_free

    def fit_capacity(self, max_boards: "int | None" = None) -> int:
        """Most blocks any single allocation could possibly obtain.

        ``None`` (no spanning limit): the cluster-wide free count.
        With ``max_boards``, the sum of the ``max_boards`` largest
        per-board free counts.  This is an *optimistic* bound -- it
        ignores tenant quotas, quarantines, and adjacency -- so
        ``needed > fit_capacity()`` proves a placement search would
        fail, while the converse proves nothing.
        """
        if max_boards is None or max_boards >= len(self._board_ids):
            return self._total_free
        if max_boards <= 0:
            return 0
        top = np.partition(self._free_counts, -max_boards)[-max_boards:]
        return int(top.sum())

    def fit_mask_requests(self, needed_counts: "np.ndarray",
                          max_boards: "int | None" = None,
                          ) -> "np.ndarray":
        """Batched admission prefilter over a queue of block demands.

        ``needed_counts[i]`` is request *i*'s block count; the returned
        boolean vector is False exactly where the demand exceeds
        :meth:`fit_capacity` -- those placement searches are provably
        futile and the experiment loop skips them.
        """
        return needed_counts <= self.fit_capacity(max_boards)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def allocate(self, request_id: int,
                 addresses: list[BlockAddress]) -> None:
        """Atomically claim ``addresses`` for ``request_id``."""
        for address in addresses:
            entry = self._entries[address]
            if entry.state is BlockState.FAILED:
                raise RuntimeError(
                    f"block {address} is on a failed board")
            if entry.state is not BlockState.FREE:
                raise RuntimeError(
                    f"block {address} already allocated to "
                    f"request {entry.owner}")
        if len(set(addresses)) != len(addresses):
            raise RuntimeError(
                f"request {request_id} lists a block twice")
        owned = self._owned.setdefault(request_id, set())
        entries = self._entries
        # mutate per entry, but touch the numpy mirrors once per board:
        # element-wise ndarray writes cost more than the dict walk, and
        # a placement's addresses usually share one board
        by_board: dict[int, list[int]] = {}
        for address in addresses:
            entry = entries[address]
            entry.state = BlockState.ALLOCATED
            entry.owner = request_id
            board, block = address
            by_board.setdefault(board, []).append(block)
            owned.add(address)
        row_of = self._row_of
        for board, blocks in by_board.items():
            self._free[board].difference_update(blocks)
            self._free_view[board] = None
            row = row_of[board]
            self._free_mask[row, blocks] = False
            self._free_counts[row] -= len(blocks)
        self._allocated += len(addresses)
        self._total_free -= len(addresses)

    def release(self, request_id: int) -> list[BlockAddress]:
        """Free every block of ``request_id``; error if it owns none."""
        owned = self._owned.pop(request_id, None)
        if not owned:
            raise RuntimeError(
                f"request {request_id} owns no blocks to release")
        freed = sorted(owned)
        entries = self._entries
        by_board: dict[int, list[int]] = {}
        for address in freed:
            entry = entries[address]
            entry.state = BlockState.FREE
            entry.owner = None
            board, block = address
            by_board.setdefault(board, []).append(block)
        row_of = self._row_of
        for board, blocks in by_board.items():
            self._free[board].update(blocks)
            self._free_view[board] = None
            row = row_of[board]
            self._free_mask[row, blocks] = True
            self._free_counts[row] += len(blocks)
        self._allocated -= len(freed)
        self._total_free += len(freed)
        return freed

    def set_board_failed(self, board_id: int) -> None:
        """Take every block of ``board_id`` out of service.

        The caller (the controller's ``fail_board``) must have evicted
        the board's deployments first: failing a board that still owns
        allocated blocks would silently orphan their owners' bookkeeping,
        so it raises instead.
        """
        on_board = self._board_blocks.get(board_id)
        if not on_board:
            raise KeyError(f"no blocks on board {board_id}")
        for address in on_board:
            entry = self._entries[address]
            if entry.state is BlockState.ALLOCATED:
                raise RuntimeError(
                    f"block {address} still allocated to request "
                    f"{entry.owner}; evict deployments before failing "
                    "the board")
        for address in on_board:
            entry = self._entries[address]
            if entry.state is BlockState.FREE:
                self._failed += 1
            entry.state = BlockState.FAILED
        self._free[board_id].clear()
        self._free_view[board_id] = None
        self._failed_boards.add(board_id)
        row = self._row_of[board_id]
        self._total_free -= int(self._free_counts[row])
        self._free_counts[row] = 0
        self._free_mask[row, :] = False

    def set_board_repaired(self, board_id: int) -> None:
        """Return a failed board's blocks to the free pool."""
        row = self._row_of.get(board_id)
        for address in self._board_blocks.get(board_id, ()):
            entry = self._entries[address]
            if entry.state is BlockState.FAILED:
                entry.state = BlockState.FREE
                entry.owner = None
                self._failed -= 1
                self._free[board_id].add(address[1])
                self._free_mask[row, address[1]] = True
                self._free_counts[row] += 1
                self._total_free += 1
        self._free_view[board_id] = None
        self._failed_boards.discard(board_id)

    # ------------------------------------------------------------------
    # consistency cross-check
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Cross-check every incremental index against a full rescan.

        Raises ``RuntimeError`` naming the first divergence; used by the
        randomized property tests after every transition, and available
        to callers that want a paranoia check after unusual sequences.
        """
        allocated = sum(1 for e in self._entries.values()
                        if e.state is BlockState.ALLOCATED)
        if allocated != self._allocated:
            raise RuntimeError(
                f"allocated counter {self._allocated} != rescan "
                f"{allocated}")
        failed = sum(1 for e in self._entries.values()
                     if e.state is BlockState.FAILED)
        if failed != self._failed:
            raise RuntimeError(
                f"failed counter {self._failed} != rescan {failed}")
        failed_boards = {board for (board, _), e in self._entries.items()
                         if e.state is BlockState.FAILED}
        if failed_boards != self._failed_boards:
            raise RuntimeError(
                f"failed-board set {sorted(self._failed_boards)} != "
                f"rescan {sorted(failed_boards)}")
        free: dict[int, set[int]] = {b: set() for b in self._board_ids}
        owned: dict[int, set[BlockAddress]] = {}
        for address, entry in self._entries.items():
            if entry.state is BlockState.FREE:
                free[address[0]].add(address[1])
            if entry.owner is not None:
                owned.setdefault(entry.owner, set()).add(address)
            if (entry.owner is not None) \
                    != (entry.state is BlockState.ALLOCATED):
                raise RuntimeError(
                    f"block {address}: state {entry.state} inconsistent "
                    f"with owner {entry.owner}")
        if free != self._free:
            diff = {b for b in free if free[b] != self._free[b]}
            raise RuntimeError(
                f"free sets diverge on boards {sorted(diff)}")
        owners = {rid: blocks for rid, blocks in self._owned.items()
                  if blocks}
        if owned != owners:
            raise RuntimeError(
                f"owner index diverges: rescan {sorted(owned)} vs "
                f"index {sorted(owners)}")
        for board, view in self._free_view.items():
            if view is not None and view != sorted(self._free[board]):
                raise RuntimeError(
                    f"stale free view on board {board}")
        # ---- flat-array mirrors vs. the same rescan ------------------
        for board, row in self._row_of.items():
            count = int(self._free_counts[row])
            if count != len(free[board]):
                raise RuntimeError(
                    f"free-count vector says {count} on board "
                    f"{board}, rescan {len(free[board])}")
            mask_blocks = set(np.nonzero(self._free_mask[row])[0]
                              .tolist())
            if mask_blocks != free[board]:
                raise RuntimeError(
                    f"free-mask bitmap diverges on board {board}")
        if self._total_free != sum(len(s) for s in free.values()):
            raise RuntimeError(
                f"total-free counter {self._total_free} != rescan "
                f"{sum(len(s) for s in free.values())}")


class RescanResourceDB(ResourceDB):
    """The pre-incremental reference implementation.

    Every query rescans ``_entries`` exactly as the original database
    did (transitions still maintain the indices, so the two
    implementations can be compared in place).  Used as the differential
    oracle in the property tests and as the "before" code path of
    ``benchmarks/test_scalability.py``.
    """

    def free_blocks(self) -> list[BlockAddress]:
        return [a for a, e in self._entries.items()
                if e.state is BlockState.FREE]

    def free_by_board(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {
            b.board_id: [] for b in self.cluster.boards}
        for (board, block), entry in self._entries.items():
            if entry.state is BlockState.FREE:
                out[board].append(block)
        return out

    def allocated_count(self) -> int:
        return sum(1 for e in self._entries.values()
                   if e.state is BlockState.ALLOCATED)

    def failed_count(self) -> int:
        return sum(1 for e in self._entries.values()
                   if e.state is BlockState.FAILED)

    def failed_boards(self) -> set[int]:
        return {board for (board, _), e in self._entries.items()
                if e.state is BlockState.FAILED}

    def blocks_of(self, request_id: int) -> list[BlockAddress]:
        return [a for a, e in self._entries.items()
                if e.owner == request_id]

    def release(self, request_id: int) -> list[BlockAddress]:
        # pay the original scan cost, then transition through the
        # index-maintaining path so both representations stay usable
        self.blocks_of(request_id)
        return super().release(request_id)
