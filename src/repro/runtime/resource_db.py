"""The resource database (Section 3.4, Fig. 6).

"It maintains a resource database to store the status of all physical
blocks."  The database is authoritative: allocation and release go through
it, it rejects double-allocation and foreign frees, and its accessors feed
both the policies (free blocks per board) and the metrics (utilization).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.cluster import FPGACluster
from repro.runtime.types import BlockAddress

__all__ = ["BlockState", "ResourceDB"]


class BlockState(enum.Enum):
    FREE = "free"
    ALLOCATED = "allocated"
    #: the hosting board fail-stopped; the block is out of service and
    #: excluded from every allocation query until the board is repaired
    FAILED = "failed"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class _Entry:
    state: BlockState = BlockState.FREE
    owner: int | None = None  # request id


class ResourceDB:
    """Block-state store over one cluster."""

    def __init__(self, cluster: FPGACluster) -> None:
        self.cluster = cluster
        self._entries: dict[BlockAddress, _Entry] = {
            addr: _Entry() for addr in cluster.all_addresses()}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def total_blocks(self) -> int:
        return len(self._entries)

    def state_of(self, address: BlockAddress) -> BlockState:
        return self._entries[address].state

    def owner_of(self, address: BlockAddress) -> int | None:
        return self._entries[address].owner

    def free_blocks(self) -> list[BlockAddress]:
        return [a for a, e in self._entries.items()
                if e.state is BlockState.FREE]

    def free_by_board(self) -> dict[int, list[int]]:
        """Board id -> free physical-block indices (policy input)."""
        out: dict[int, list[int]] = {
            b.board_id: [] for b in self.cluster.boards}
        for (board, block), entry in self._entries.items():
            if entry.state is BlockState.FREE:
                out[board].append(block)
        return out

    def allocated_count(self) -> int:
        return sum(1 for e in self._entries.values()
                   if e.state is BlockState.ALLOCATED)

    def failed_count(self) -> int:
        return sum(1 for e in self._entries.values()
                   if e.state is BlockState.FAILED)

    def failed_boards(self) -> set[int]:
        return {board for (board, _), e in self._entries.items()
                if e.state is BlockState.FAILED}

    def utilization(self) -> float:
        """Fraction of physical blocks currently allocated."""
        return self.allocated_count() / self.total_blocks

    def blocks_of(self, request_id: int) -> list[BlockAddress]:
        return [a for a, e in self._entries.items()
                if e.owner == request_id]

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def allocate(self, request_id: int,
                 addresses: list[BlockAddress]) -> None:
        """Atomically claim ``addresses`` for ``request_id``."""
        for address in addresses:
            entry = self._entries[address]
            if entry.state is BlockState.FAILED:
                raise RuntimeError(
                    f"block {address} is on a failed board")
            if entry.state is not BlockState.FREE:
                raise RuntimeError(
                    f"block {address} already allocated to "
                    f"request {entry.owner}")
        for address in addresses:
            entry = self._entries[address]
            entry.state = BlockState.ALLOCATED
            entry.owner = request_id

    def release(self, request_id: int) -> list[BlockAddress]:
        """Free every block of ``request_id``; error if it owns none."""
        owned = self.blocks_of(request_id)
        if not owned:
            raise RuntimeError(
                f"request {request_id} owns no blocks to release")
        for address in owned:
            entry = self._entries[address]
            entry.state = BlockState.FREE
            entry.owner = None
        return owned

    def set_board_failed(self, board_id: int) -> None:
        """Take every block of ``board_id`` out of service.

        The caller (the controller's ``fail_board``) must have evicted
        the board's deployments first: failing a board that still owns
        allocated blocks would silently orphan their owners' bookkeeping,
        so it raises instead.
        """
        on_board = [(addr, e) for addr, e in self._entries.items()
                    if addr[0] == board_id]
        if not on_board:
            raise KeyError(f"no blocks on board {board_id}")
        for address, entry in on_board:
            if entry.state is BlockState.ALLOCATED:
                raise RuntimeError(
                    f"block {address} still allocated to request "
                    f"{entry.owner}; evict deployments before failing "
                    "the board")
        for _, entry in on_board:
            entry.state = BlockState.FAILED

    def set_board_repaired(self, board_id: int) -> None:
        """Return a failed board's blocks to the free pool."""
        for address, entry in self._entries.items():
            if address[0] == board_id \
                    and entry.state is BlockState.FAILED:
                entry.state = BlockState.FREE
                entry.owner = None
