"""Live defragmentation through runtime relocation.

Section 3.4 closes with "further exploration on more comprehensive runtime
policy will be our future work"; the relocation primitive (compilation
step 5) makes one obvious extension possible.  The communication-aware
policy already *tolerates* fragmentation by spanning boards, but spanning
consumes ring bandwidth and inter-FPGA channels.  Because every physical
block accepts every image, a fragmented cluster can instead be
*consolidated*: migrate small running deployments off one board until the
incoming application fits there whole.

Two consumers share :meth:`SystemController.migrate` (the checkpoint /
transplant / resume primitive):

- :class:`DefragmentingController` consolidates *at deploy time*, when
  the placement probe for an incoming request would span boards (or find
  nothing at all) while enough total free space exists;
- :class:`Defragmenter` runs *in the background* of an experiment,
  watching the live ``fragmentation_index`` gauge and the reject stream,
  and consolidating under a migration budget so pause time never
  monopolizes the cluster.

Each migrated deployment pays the full checkpoint/restore pause (DRAM
copy + FIFO drain/refill, see ``StateCheckpoint``) plus relocation
rewrite and partial reconfiguration (returned as ``corunner_penalties``
so the simulator charges the pause), which is why both planners move as
little as possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import FPGACluster
from repro.compiler.bitstream import CompiledApp
from repro.obs.stats import fragmentation_index
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation
from repro.runtime.policy import AllocationPolicy
from repro.runtime.types import Deployment

__all__ = ["MigrationPlan", "DefragmentingController",
           "DefragConfig", "Defragmenter"]


@dataclass(slots=True)
class MigrationPlan:
    """Deployments to move so ``target_board`` gains enough free blocks."""

    target_board: int
    needed_blocks: int
    moves: list[Deployment] = field(default_factory=list)

    @property
    def moved_blocks(self) -> int:
        return sum(d.num_blocks for d in self.moves)


class DefragmentingController(SystemController):
    """A system controller that consolidates before spanning.

    ``try_deploy`` probes the normal communication-aware placement; when
    the probe would span boards (or fail outright on a fragmented
    cluster), the controller looks for a cheap consolidation (migrating
    whole single-board deployments off one board), executes it through
    :meth:`SystemController.migrate`, and places the request on a single
    board.  If no cheap-enough plan exists it falls back to the spanning
    placement -- behavior is never worse than the base controller's.
    """

    name = "vital-defrag"

    def __init__(self, cluster: FPGACluster,
                 policy: AllocationPolicy | None = None,
                 max_moved_blocks: int = 8) -> None:
        super().__init__(cluster, policy=policy)
        self.max_moved_blocks = max_moved_blocks

    # ------------------------------------------------------------------
    def try_deploy(self, app: CompiledApp, request_id: int, now: float,
                   tenant: str | None = None) -> Deployment | None:
        self._register_if_needed(app)
        actual_tenant = tenant or f"tenant-{request_id}"
        if self.guard is not None:
            self.guard.advance(now)
        if not self._within_quota(actual_tenant, app.num_blocks):
            # over quota: no probe (it would clobber the policy's
            # failed-search telemetry for a request that was never
            # going to search); the base class records the reject
            return super().try_deploy(app, request_id, now,
                                      tenant=tenant)

        # probe through the shared availability filter -- failed and
        # quarantined boards must not look placeable -- and shield the
        # policy's last_search tuple: this probe is not the request's
        # real search, and a later ctrl.reject must not report it
        candidates = self._allocatable_blocks(app)
        policy = self.policy
        had_search = hasattr(policy, "last_search")
        saved_search = policy.last_search if had_search else None
        probe = policy.allocate(app, candidates, self.cluster.network)
        if had_search:
            policy.last_search = saved_search

        if probe is not None and not probe.spans_boards:
            # single-board probe: that IS the placement -- finalize it
            # directly instead of searching a second time
            return self._finalize_deploy(app, request_id, now,
                                         actual_tenant, probe,
                                         candidates=candidates)

        penalties: dict[int, float] = {}
        plan = self.plan_migration(app)
        if plan is not None:
            penalties = self.execute_migration(plan, now)
        deployment = super().try_deploy(app, request_id, now,
                                        tenant=tenant)
        if deployment is not None and penalties:
            deployment.corunner_penalties.update(penalties)
        return deployment

    # ------------------------------------------------------------------
    def plan_migration(self, app: CompiledApp) -> MigrationPlan | None:
        """Cheapest set of whole-deployment moves that frees enough
        blocks on one *available* board, or ``None`` when none clears a
        board within ``max_moved_blocks``.

        Candidate targets and donor destinations both come from
        :meth:`_allocatable_blocks`, so failed, quarantined, and (for
        heterogeneous clusters) out-of-footprint boards are neither
        consolidated onto nor counted as destination space.
        """
        needed = app.num_blocks
        free = {b: len(v)
                for b, v in self._allocatable_blocks(app).items()}
        total_free = sum(free.values())
        if total_free < needed:
            return None  # not fragmentation -- genuinely out of space

        best: MigrationPlan | None = None
        for board in sorted(free, key=lambda b: -free[b]):
            deficit = needed - free[board]
            if deficit <= 0:
                continue  # this board already fits the app
            # donors: single-board deployments on this board, smallest
            # first, that fit in OTHER available boards' free space
            movable = sorted(
                (d for d in self.deployments.values()
                 if d.placement.boards == [board]),
                key=lambda d: d.num_blocks)
            other_free = total_free - free[board]
            plan = MigrationPlan(target_board=board,
                                 needed_blocks=needed)
            freed = 0
            for deployment in movable:
                if freed >= deficit:
                    break
                if deployment.num_blocks > other_free:
                    continue
                plan.moves.append(deployment)
                freed += deployment.num_blocks
                other_free -= deployment.num_blocks
            if freed < deficit \
                    or plan.moved_blocks > self.max_moved_blocks:
                continue
            if best is None or plan.moved_blocks < best.moved_blocks:
                best = plan
        return best

    def execute_migration(self, plan: MigrationPlan,
                          now: float) -> dict[int, float]:
        """Move each planned deployment off the target board.

        Every move goes through :meth:`SystemController.migrate`, so the
        destination set is availability-filtered, the pause includes the
        full checkpoint/restore cost, and the move is audited/traced.
        A move that can no longer be placed (space raced away) is
        skipped; the caller's subsequent placement attempt simply sees
        less consolidation.
        """
        penalties: dict[int, float] = {}
        for deployment in plan.moves:
            allowed = [b for b in self._allocatable_blocks(
                           deployment.app)
                       if b != plan.target_board]
            pause = self.migrate(deployment.request_id,
                                 to_boards=allowed, now=now,
                                 reason="defrag-consolidation")
            if pause is None:
                continue
            penalties[deployment.request_id] = penalties.get(
                deployment.request_id, 0.0) + pause
        return penalties


@dataclass(slots=True)
class DefragConfig:
    """Tuning for the background :class:`Defragmenter`."""

    #: run a consolidation pass once the live ``fragmentation_index``
    #: (1 - largest single-board free pool / total free) crosses this
    frag_threshold: float = 0.5
    #: sustained migration budget: blocks moved per sim-second ...
    budget_blocks_per_s: float = 4.0
    #: ... with this much burst headroom (token-bucket capacity)
    budget_burst_blocks: int = 8
    #: minimum spacing between threshold-triggered passes; a
    #: rejection-triggered pass (a request just failed for
    #: spanning-only reasons) bypasses this, budget permitting
    min_interval_s: float = 5.0
    #: per-pass ceiling on blocks moved (also the planner's bound)
    max_moved_blocks: int = 8
    #: re-verify tenant isolation after every executed move (chaos
    #: harness turns this on; costs a full cluster walk per move)
    verify: bool = False


class Defragmenter:
    """Background consolidation driven by the fragmentation gauge.

    The experiment driver calls :meth:`maybe_pass` after its drain step:
    with ``needed_blocks`` (the queue head's size) when a request is
    waiting, without when idle.  A pass triggers on either signal --

    - **rejection**: the waiting request fits total free space but no
      single board, i.e. it is (or will be) rejected for spanning-only
      reasons under a span cap, or placed wide otherwise;
    - **threshold**: the live ``fragmentation_index`` crossed
      ``frag_threshold`` (rate-limited by ``min_interval_s``);

    then plans the cheapest consolidation and executes it through
    :meth:`SystemController.migrate`, spending the token-bucket budget
    (``budget_blocks_per_s`` / ``budget_burst_blocks``) one moved block
    per token.  Works against any :class:`SystemController`; it does
    not require the defragmenting subclass.
    """

    def __init__(self, controller: SystemController,
                 config: DefragConfig | None = None) -> None:
        self.controller = controller
        self.config = config or DefragConfig()
        self._tokens = float(self.config.budget_burst_blocks)
        self._token_t = 0.0
        self._last_pass_t: float | None = None
        self.passes = 0
        self.moves = 0
        self.moved_blocks = 0

    # ------------------------------------------------------------------
    def _refill(self, now: float) -> None:
        if now > self._token_t:
            self._tokens = min(
                float(self.config.budget_burst_blocks),
                self._tokens + (now - self._token_t)
                * self.config.budget_blocks_per_s)
            self._token_t = now

    def _fragmentation(self) -> float:
        return fragmentation_index(
            self.controller.resource_db.free_counts_by_board())

    def maybe_pass(self, now: float,
                   needed_blocks: int | None = None,
                   ) -> dict[int, float]:
        """Run one consolidation pass if a trigger fires; returns the
        per-request pause penalties of any executed moves (empty when
        nothing triggered, nothing was movable, or the budget is dry).
        """
        ctrl = self.controller
        self._refill(now)
        if self._tokens < 1.0:
            return {}

        trigger = None
        target_blocks = needed_blocks
        if needed_blocks is not None:
            free = ctrl._filter_unavailable(
                ctrl.resource_db.free_by_board())
            counts = [len(v) for v in free.values()]
            if sum(counts) >= needed_blocks \
                    and not any(c >= needed_blocks for c in counts):
                trigger = "rejection"
        if trigger is None:
            if self._last_pass_t is not None \
                    and now - self._last_pass_t \
                    < self.config.min_interval_s:
                return {}
            if self._fragmentation() >= self.config.frag_threshold:
                trigger = "threshold"
                target_blocks = None
        if trigger is None:
            return {}

        frag_before = self._fragmentation()
        budget = int(min(self._tokens, self.config.max_moved_blocks))
        plan = self._plan(target_blocks, budget)
        if plan is None or not plan.moves:
            return {}

        penalties: dict[int, float] = {}
        executed = 0
        moved_blocks = 0
        pause_total = 0.0
        for deployment in plan.moves:
            if moved_blocks + deployment.num_blocks > budget:
                continue
            allowed = [
                b for b in ctrl._filter_unavailable(
                    ctrl.resource_db.free_by_board())
                if b != plan.target_board]
            pause = ctrl.migrate(deployment.request_id,
                                 to_boards=allowed, now=now,
                                 reason=f"defrag-{trigger}")
            if pause is None:
                continue
            executed += 1
            moved_blocks += deployment.num_blocks
            pause_total += pause
            penalties[deployment.request_id] = penalties.get(
                deployment.request_id, 0.0) + pause
            if self.config.verify:
                verify_isolation(ctrl)
        if not executed:
            return {}

        self._tokens -= moved_blocks
        self._last_pass_t = now
        self.passes += 1
        self.moves += executed
        self.moved_blocks += moved_blocks
        if ctrl.tracer:
            ctrl.tracer.event(
                "defrag.pass", t=now, trigger=trigger,
                moves=executed, moved_blocks=moved_blocks,
                pause_s=pause_total,
                frag_before=frag_before,
                frag_after=self._fragmentation(),
                budget_left=self._tokens)
        return penalties

    # ------------------------------------------------------------------
    def _plan(self, needed_blocks: int | None,
              budget: int) -> MigrationPlan | None:
        """Cheapest consolidation within ``budget`` moved blocks.

        With ``needed_blocks``, target the board requiring the fewest
        moved blocks to host that many; without (threshold trigger),
        consolidate toward the board with the most free blocks --
        shrinking the fragmentation index directly.
        """
        ctrl = self.controller
        free_map = ctrl._filter_unavailable(
            ctrl.resource_db.free_by_board())
        free = {b: len(v) for b, v in free_map.items()}
        if not free:
            return None
        total_free = sum(free.values())
        if needed_blocks is not None and total_free < needed_blocks:
            return None

        best: MigrationPlan | None = None
        for board in sorted(free, key=lambda b: (-free[b], b)):
            if needed_blocks is not None:
                deficit = needed_blocks - free[board]
                if deficit <= 0:
                    continue
            else:
                # threshold mode: top up the emptiest-loaded target
                # with whatever small donors the budget allows
                deficit = 1
            movable = sorted(
                (d for d in ctrl.deployments.values()
                 if d.placement.boards == [board]),
                key=lambda d: d.num_blocks)
            other_free = total_free - free[board]
            plan = MigrationPlan(
                target_board=board,
                needed_blocks=needed_blocks or free[board])
            freed = 0
            for deployment in movable:
                if freed >= deficit:
                    break
                if deployment.num_blocks > other_free:
                    continue
                if plan.moved_blocks + deployment.num_blocks > budget:
                    continue
                plan.moves.append(deployment)
                freed += deployment.num_blocks
                other_free -= deployment.num_blocks
            if freed < deficit or not plan.moves:
                continue
            if best is None or plan.moved_blocks < best.moved_blocks:
                best = plan
            if needed_blocks is None:
                break  # threshold mode: first (fullest) target wins
        return best
