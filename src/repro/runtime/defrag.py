"""Live defragmentation through runtime relocation.

Section 3.4 closes with "further exploration on more comprehensive runtime
policy will be our future work"; the relocation primitive (compilation
step 5) makes one obvious extension possible.  The communication-aware
policy already *tolerates* fragmentation by spanning boards, but spanning
consumes ring bandwidth and inter-FPGA channels.  Because every physical
block accepts every image, a fragmented cluster can instead be
*consolidated*: migrate small running deployments off one board until the
incoming application fits there whole.

Each migrated deployment pays one partial reconfiguration per moved block
plus the relocation rewrite (returned as ``corunner_penalties`` so the
simulator charges the pause), which is why the planner moves as little as
possible and gives up beyond ``max_moved_blocks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import FPGACluster
from repro.runtime.audit import AuditEvent
from repro.compiler.bitstream import CompiledApp
from repro.runtime.controller import SystemController
from repro.runtime.policy import AllocationPolicy
from repro.runtime.types import Deployment

__all__ = ["MigrationPlan", "DefragmentingController"]


@dataclass(slots=True)
class MigrationPlan:
    """Deployments to move so ``target_board`` gains enough free blocks."""

    target_board: int
    needed_blocks: int
    moves: list[Deployment] = field(default_factory=list)

    @property
    def moved_blocks(self) -> int:
        return sum(d.num_blocks for d in self.moves)


class DefragmentingController(SystemController):
    """A system controller that consolidates before spanning.

    ``try_deploy`` probes the normal communication-aware placement; when
    the probe would span boards, the controller looks for a cheap
    consolidation (migrating whole single-board deployments off one
    board), executes it, and places the request on a single board.  If no
    cheap-enough plan exists it falls back to the spanning placement --
    behavior is never worse than the base controller's.
    """

    name = "vital-defrag"

    def __init__(self, cluster: FPGACluster,
                 policy: AllocationPolicy | None = None,
                 max_moved_blocks: int = 8) -> None:
        super().__init__(cluster, policy=policy)
        self.max_moved_blocks = max_moved_blocks
        self.migrations_performed = 0

    # ------------------------------------------------------------------
    def try_deploy(self, app: CompiledApp, request_id: int, now: float,
                   tenant: str | None = None) -> Deployment | None:
        probe = self.policy.allocate(
            app, self.resource_db.free_by_board(), self.cluster.network)
        penalties: dict[int, float] = {}
        if probe is not None and probe.spans_boards:
            plan = self.plan_migration(app)
            if plan is not None:
                penalties = self.execute_migration(plan, now)
        deployment = super().try_deploy(app, request_id, now,
                                        tenant=tenant)
        if deployment is not None and penalties:
            deployment.corunner_penalties.update(penalties)
        return deployment

    # ------------------------------------------------------------------
    def plan_migration(self, app: CompiledApp) -> MigrationPlan | None:
        """Cheapest set of whole-deployment moves that frees enough
        blocks on one board, or ``None`` when none clears a board within
        ``max_moved_blocks``."""
        needed = app.num_blocks
        free = {b: len(v)
                for b, v in self.resource_db.free_by_board().items()}
        total_free = sum(free.values())
        if total_free < needed:
            return None  # not fragmentation -- genuinely out of space

        best: MigrationPlan | None = None
        for board in sorted(free, key=lambda b: -free[b]):
            deficit = needed - free[board]
            if deficit <= 0:
                continue  # this board already fits the app
            # donors: single-board deployments on this board, smallest
            # first, that fit in OTHER boards' free space
            movable = sorted(
                (d for d in self.deployments.values()
                 if d.placement.boards == [board]),
                key=lambda d: d.num_blocks)
            other_free = total_free - free[board]
            plan = MigrationPlan(target_board=board,
                                 needed_blocks=needed)
            freed = 0
            for deployment in movable:
                if freed >= deficit:
                    break
                if deployment.num_blocks > other_free:
                    continue
                plan.moves.append(deployment)
                freed += deployment.num_blocks
                other_free -= deployment.num_blocks
            if freed < deficit \
                    or plan.moved_blocks > self.max_moved_blocks:
                continue
            if best is None or plan.moved_blocks < best.moved_blocks:
                best = plan
        return best

    def execute_migration(self, plan: MigrationPlan,
                          now: float) -> dict[int, float]:
        """Move each planned deployment off the target board.

        Returns per-request pause penalties.  A move that can no longer
        be placed (space raced away) is skipped; the caller's subsequent
        placement attempt simply sees less consolidation.
        """
        penalties: dict[int, float] = {}
        for deployment in plan.moves:
            free = self.resource_db.free_by_board()
            free.pop(plan.target_board, None)
            new_placement = self.policy.allocate(
                deployment.app, free, self.cluster.network)
            if new_placement is None:
                continue
            rewrite_s = 0.0
            for vb, address in new_placement.mapping.items():
                bound = self.relocator.relocate(
                    deployment.app.images[vb],
                    self.cluster.block_at(address))
                rewrite_s += bound.rewrite_time_s
            self.resource_db.release(deployment.request_id)
            self.resource_db.allocate(deployment.request_id,
                                      new_placement.addresses)
            # memory and bandwidth follow the deployment
            self._release_memory(deployment.request_id)
            self._detach_dram_demand(deployment.tenant,
                                     deployment.placement)
            self.cluster.network.release_flow(
                self._flow_key(deployment.request_id))
            deployment.placement = new_placement
            self._segments_of[deployment.request_id] = \
                self._map_memory(deployment.tenant, new_placement)
            self._attach_dram_demand(deployment.tenant, new_placement)
            if new_placement.spans_boards:
                self.cluster.network.register_flow(
                    self._flow_key(deployment.request_id),
                    new_placement.boards)
            pause = rewrite_s \
                + self.cluster.reconfigurer.partial_time_for_blocks(
                    deployment.app.images[0].size_mb,
                    len(new_placement.mapping))
            penalties[deployment.request_id] = penalties.get(
                deployment.request_id, 0.0) + pause
            self.migrations_performed += 1
            self.audit.record(now, AuditEvent.MIGRATE,
                              deployment.request_id,
                              deployment.tenant,
                              app=deployment.app.name,
                              to_boards=new_placement.boards,
                              pause_s=round(pause, 6))
            if self.tracer:
                self.tracer.event(
                    "ctrl.migrate", t=now,
                    request=deployment.request_id,
                    tenant=deployment.tenant,
                    app=deployment.app.name,
                    reason="defrag-consolidation",
                    from_board=plan.target_board,
                    to_boards=new_placement.boards,
                    pause_s=pause)
        return penalties
