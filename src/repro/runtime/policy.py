"""Allocation policies (Section 3.4).

The paper's **communication-aware runtime management policy** "allocates
the physical blocks in a multi-round manner.  In the first round, it tries
to find a single physical FPGA that has a sufficient amount of physical
blocks...  It then increases the number of physical FPGAs in the following
rounds until a feasible allocation is found."  Within a round it prefers
board sets with the smallest ring span (fewest hops) and the tightest fit
(least leftover, to limit fragmentation).

The paper's 4-board platform tolerates evaluating every board subset per
round; a 64-board cluster does not (C(64, 4) is already ~600k subsets per
blocked request).  The default search is therefore an exact
branch-and-bound over the same key ``(span, leftover, subset)``:

- boards with zero free blocks are dropped up front (a subset containing
  one is either infeasible in round 1 or redundant with an earlier
  round, exactly the cases the exhaustive loop skipped);
- partial subsets are pruned by a capacity bound (the best remaining
  boards cannot reach the needed block count) and by a span lower bound
  (every further board adds at least one hop to every chosen board, so a
  partial span can already exceed the incumbent's);
- pruning only discards subsets whose key is *strictly* greater than the
  incumbent, so the minimum -- including its lexicographic tie-break --
  is the one the exhaustive enumeration would have produced.
  ``CommunicationAwarePolicy(prune=False)`` keeps the original loop as
  the oracle for the equivalence property test and the "before" code
  path of the scalability benchmark.

Two deliberately worse policies are provided for the ablation benches:
``FirstFitPolicy`` ignores board boundaries entirely and ``SpreadPolicy``
scatters blocks round-robin across boards (maximum communication).
"""

from __future__ import annotations

import itertools
from typing import Protocol

from repro.cluster.network import RingNetwork
from repro.compiler.bitstream import CompiledApp
from repro.runtime.types import BlockAddress, Placement

__all__ = [
    "AllocationPolicy",
    "CommunicationAwarePolicy",
    "FirstFitPolicy",
    "SpreadPolicy",
    "split_virtual_blocks",
]


class AllocationPolicy(Protocol):
    """Strategy interface: pick physical blocks for an application."""

    name: str

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        """Return a placement using currently free blocks, or ``None``
        when the application cannot be deployed right now."""
        ...


def split_virtual_blocks(app: CompiledApp,
                         quotas: list[tuple[int, int]],
                         ) -> dict[int, int]:
    """Group an app's virtual blocks onto boards, minimizing cut flow.

    ``quotas`` is an ordered list of ``(board_id, capacity)``.  Greedy
    region growing over the app's inter-block flow graph: each board's
    group is grown by repeatedly pulling in the unassigned virtual block
    with the strongest connection to the group, so heavy channels stay
    board-local.

    Scores are maintained incrementally over a precomputed flow-adjacency
    list: assigning a block updates only its neighbors' scores, instead of
    re-summing the whole flow dict for every candidate of every pick.
    """
    total_quota = sum(q for _, q in quotas)
    n = app.num_blocks
    if total_quota < n:
        raise ValueError("quotas cannot hold the application")

    # symmetric flow-adjacency list between virtual blocks (self-flows
    # never contribute to a cut, so they are dropped)
    adjacency: dict[int, list[tuple[int, float]]] = {
        vb: [] for vb in range(n)}
    weight: dict[tuple[int, int], float] = {}
    for (src, dst), bits in app.flows.items():
        if src == dst:
            continue
        key = (min(src, dst), max(src, dst))
        weight[key] = weight.get(key, 0.0) + bits
    for (a, b), w in weight.items():
        adjacency[a].append((b, w))
        adjacency[b].append((a, w))

    #: flow from each block into the still-unassigned set (seed score)
    unassigned_flow = {
        vb: sum(w for _, w in adjacency[vb]) for vb in range(n)}
    #: flow from each unassigned block into the group being grown
    group_flow = {vb: 0.0 for vb in range(n)}

    unassigned = set(range(n))
    assignment: dict[int, int] = {}

    def assign(vb: int, board_id: int) -> None:
        unassigned.discard(vb)
        assignment[vb] = board_id
        for other, w in adjacency[vb]:
            unassigned_flow[other] -= w
            group_flow[other] += w

    for board_id, quota in quotas:
        if not unassigned:
            break
        for vb in unassigned:
            group_flow[vb] = 0.0
        take = min(quota, len(unassigned))
        for picked in range(take):
            if picked:
                vb = max(unassigned,
                         key=lambda v: (group_flow[v], -v))
            else:
                # seed with the unassigned block of heaviest total flow
                vb = max(unassigned,
                         key=lambda v: (unassigned_flow[v], -v))
            assign(vb, board_id)
    return assignment


def _build_placement(app: CompiledApp,
                     quotas: list[tuple[int, int]],
                     free_by_board: dict[int, list[int]],
                     ) -> Placement:
    """Turn board quotas into a concrete virtual->physical mapping."""
    vb_to_board = split_virtual_blocks(app, quotas)
    cursor = {board: iter(sorted(free_by_board[board]))
              for board, _ in quotas}
    mapping: dict[int, BlockAddress] = {}
    for vb in sorted(vb_to_board):
        board = vb_to_board[vb]
        mapping[vb] = (board, next(cursor[board]))
    placement = Placement(mapping=mapping)
    placement.validate(app.num_blocks)
    return placement


class CommunicationAwarePolicy:
    """The paper's multi-round, span-minimizing policy."""

    name = "communication-aware"

    def __init__(self, prune: bool = True) -> None:
        #: ``False`` restores the exhaustive per-round subset
        #: enumeration (the differential oracle / "before" path)
        self.prune = prune
        #: optional :class:`repro.obs.tracer.Tracer`; when set (and
        #: enabled) each successful ``allocate`` records rounds
        #: attempted and subsets visited vs. pruned -- the
        #: search-effort telemetry the scalability claims lean on.
        #: ``None`` costs one falsy check per call.
        self.tracer = None
        #: failed-search telemetry ``(reason, rounds, visited,
        #: pruned)``, refreshed on every tracing failure.  A saturated
        #: loop rejects the queue head on every event, so failures
        #: deposit a tuple here instead of a trace entry of their own;
        #: the controller folds it into its single ``ctrl.reject``
        #: event.
        self.last_search: tuple | None = None

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        boards = sorted(free_by_board)
        free = {b: len(free_by_board[b]) for b in boards}
        if not self.prune:
            return self._allocate_exhaustive(app, free_by_board, free,
                                             boards, needed, network)

        present = [b for b in boards if free[b] > 0]
        if sum(free[b] for b in present) < needed:
            if self.tracer:
                self.last_search = ("insufficient-capacity", 0, 0, 0)
            return None
        # [visited, pruned] node counters, collected only when tracing
        stats = [0, 0] if self.tracer else None
        for round_k in range(1, len(present) + 1):
            best = self._best_subset(present, free, needed, round_k,
                                     network, stats=stats)
            if best is None:
                continue
            _, _, subset = best
            if self.tracer:
                self.tracer.event(
                    "policy.allocate", app=app.name, needed=needed,
                    found=True, rounds=round_k, boards=subset,
                    span=best[0], leftover=best[1],
                    visited=stats[0], pruned=stats[1])
            quotas = self._quotas(subset, free, needed)
            return _build_placement(app, quotas, free_by_board)
        if self.tracer:
            self.last_search = ("no-feasible-subset", len(present),
                                stats[0], stats[1])
        return None

    @staticmethod
    def _best_subset(present: list[int], free: dict[int, int],
                     needed: int, k: int, network: RingNetwork,
                     stats: list[int] | None = None,
                     ) -> tuple[int, int, tuple[int, ...]] | None:
        """Minimum-key feasible ``k``-subset of ``present`` boards.

        Depth-first enumeration in lexicographic order (so equal-key
        subsets resolve exactly like the exhaustive ``min``), with two
        sound prunes -- see the module docstring.  ``stats`` (tracing
        only) accumulates ``[nodes visited, nodes pruned]``; ``None``
        keeps the search loop free of counting work.
        """
        n = len(present)
        if k > n:
            return None
        # suffix_max[i]: most free blocks on any of present[i:]
        suffix_max = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix_max[i] = max(free[present[i]], suffix_max[i + 1])
        dist = network._dist
        best: tuple[int, int, tuple[int, ...]] | None = None
        chosen: list[int] = []

        def extend(start: int, capacity: int, span: int) -> None:
            nonlocal best
            remaining = k - len(chosen)
            if remaining == 0:
                if capacity < needed:
                    return
                key = (span, capacity - needed, tuple(chosen))
                if best is None or key < best:
                    best = key
                return
            for i in range(start, n - remaining + 1):
                board = present[i]
                if stats is not None:
                    stats[0] += 1
                # capacity bound: even the best boards after ``i``
                # cannot close the gap
                if capacity + free[board] \
                        + (remaining - 1) * suffix_max[i + 1] < needed:
                    if stats is not None:
                        stats[1] += 1
                    continue
                added = span
                for member in chosen:
                    added += dist[member][board]
                if best is not None:
                    # span bound: each of the remaining boards adds at
                    # least one hop to every board already chosen and to
                    # each other; skipping is sound only on a strict
                    # excess (an equal bound could still win on the
                    # leftover tie-break)
                    chosen_after = len(chosen) + 1
                    floor = added + (remaining - 1) * chosen_after \
                        + (remaining - 1) * (remaining - 2) // 2
                    if floor > best[0]:
                        if stats is not None:
                            stats[1] += 1
                        continue
                chosen.append(board)
                extend(i + 1, capacity + free[board], added)
                chosen.pop()

        extend(0, 0, 0)
        return best

    def _allocate_exhaustive(self, app: CompiledApp,
                             free_by_board: dict[int, list[int]],
                             free: dict[int, int], boards: list[int],
                             needed: int, network: RingNetwork,
                             ) -> Placement | None:
        """The original brute-force enumeration (every subset, every
        round); kept as the reference the pruned search must match."""
        visited = 0
        for round_k in range(1, len(boards) + 1):
            best: tuple[float, float, tuple[int, ...]] | None = None
            for subset in itertools.combinations(boards, round_k):
                visited += 1
                capacity = sum(free[b] for b in subset)
                if capacity < needed:
                    continue
                # every board of the subset must contribute, otherwise
                # the same placement exists in an earlier round
                if round_k > 1 and any(free[b] == 0 for b in subset):
                    continue
                span = network.span_cost(list(subset))
                leftover = capacity - needed
                key = (span, leftover, subset)
                if best is None or key < best:
                    best = key
            if best is None:
                continue
            _, _, subset = best
            if self.tracer:
                self.tracer.event(
                    "policy.allocate", app=app.name, needed=needed,
                    found=True, rounds=round_k, boards=subset,
                    span=best[0], leftover=best[1],
                    visited=visited, pruned=0)
            quotas = CommunicationAwarePolicy._quotas(subset, free,
                                                      needed)
            return _build_placement(app, quotas, free_by_board)
        if self.tracer:
            self.last_search = ("no-feasible-subset", len(boards),
                                visited, 0)
        return None

    @staticmethod
    def _quotas(subset: tuple[int, ...], free: dict[int, int],
                needed: int) -> list[tuple[int, int]]:
        """Fill the fullest boards first so leftovers concentrate."""
        order = sorted(subset, key=lambda b: (-free[b], b))
        quotas = []
        remaining = needed
        for board in order:
            take = min(free[board], remaining)
            if take > 0:
                quotas.append((board, take))
                remaining -= take
        return quotas


class FirstFitPolicy:
    """Ablation: grab free blocks in address order, boards ignored."""

    name = "first-fit"

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        pool: list[BlockAddress] = [
            (board, block)
            for board in sorted(free_by_board)
            for block in sorted(free_by_board[board])]
        if len(pool) < needed:
            return None
        chosen = pool[:needed]
        quotas: list[tuple[int, int]] = []
        for board in sorted({b for b, _ in chosen}):
            quotas.append((board, sum(1 for bb, _ in chosen
                                      if bb == board)))
        chosen_by_board = {
            board: [blk for bb, blk in chosen if bb == board]
            for board, _ in quotas}
        return _build_placement(app, quotas, chosen_by_board)


class SpreadPolicy:
    """Ablation: round-robin blocks across boards (max communication)."""

    name = "spread"

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        pools = {b: sorted(blocks)
                 for b, blocks in free_by_board.items() if blocks}
        if sum(len(p) for p in pools.values()) < needed:
            return None
        taken: dict[int, list[int]] = {b: [] for b in pools}
        boards_cycle = itertools.cycle(sorted(pools))
        count = 0
        while count < needed:
            board = next(boards_cycle)
            if pools[board]:
                taken[board].append(pools[board].pop(0))
                count += 1
        quotas = [(b, len(blks)) for b, blks in sorted(taken.items())
                  if blks]
        chosen_by_board = {b: blks for b, blks in taken.items() if blks}
        return _build_placement(app, quotas, chosen_by_board)
