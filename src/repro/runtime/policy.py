"""Allocation policies (Section 3.4).

The paper's **communication-aware runtime management policy** "allocates
the physical blocks in a multi-round manner.  In the first round, it tries
to find a single physical FPGA that has a sufficient amount of physical
blocks...  It then increases the number of physical FPGAs in the following
rounds until a feasible allocation is found."  Within a round it prefers
board sets with the smallest ring span (fewest hops) and the tightest fit
(least leftover, to limit fragmentation).

Two deliberately worse policies are provided for the ablation benches:
``FirstFitPolicy`` ignores board boundaries entirely and ``SpreadPolicy``
scatters blocks round-robin across boards (maximum communication).
"""

from __future__ import annotations

import itertools
from typing import Protocol

from repro.cluster.network import RingNetwork
from repro.compiler.bitstream import CompiledApp
from repro.runtime.types import BlockAddress, Placement

__all__ = [
    "AllocationPolicy",
    "CommunicationAwarePolicy",
    "FirstFitPolicy",
    "SpreadPolicy",
    "split_virtual_blocks",
]


class AllocationPolicy(Protocol):
    """Strategy interface: pick physical blocks for an application."""

    name: str

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        """Return a placement using currently free blocks, or ``None``
        when the application cannot be deployed right now."""
        ...


def split_virtual_blocks(app: CompiledApp,
                         quotas: list[tuple[int, int]],
                         ) -> dict[int, int]:
    """Group an app's virtual blocks onto boards, minimizing cut flow.

    ``quotas`` is an ordered list of ``(board_id, capacity)``.  Greedy
    region growing over the app's inter-block flow graph: each board's
    group is grown by repeatedly pulling in the unassigned virtual block
    with the strongest connection to the group, so heavy channels stay
    board-local.
    """
    total_quota = sum(q for _, q in quotas)
    n = app.num_blocks
    if total_quota < n:
        raise ValueError("quotas cannot hold the application")

    # symmetric flow weights between virtual blocks
    weight: dict[tuple[int, int], float] = {}
    for (src, dst), bits in app.flows.items():
        key = (min(src, dst), max(src, dst))
        weight[key] = weight.get(key, 0.0) + bits

    def flow_to(group: set[int], vb: int) -> float:
        return sum(w for (a, b), w in weight.items()
                   if (a == vb and b in group) or (b == vb and a in group))

    unassigned = set(range(n))
    assignment: dict[int, int] = {}
    for board_id, quota in quotas:
        if not unassigned:
            break
        group: set[int] = set()
        take = min(quota, len(unassigned))
        while len(group) < take:
            if group:
                vb = max(unassigned,
                         key=lambda v: (flow_to(group, v), -v))
            else:
                # seed with the unassigned block of heaviest total flow
                vb = max(unassigned,
                         key=lambda v: (flow_to(unassigned - {v}, v), -v))
            group.add(vb)
            unassigned.discard(vb)
            assignment[vb] = board_id
    return assignment


def _build_placement(app: CompiledApp,
                     quotas: list[tuple[int, int]],
                     free_by_board: dict[int, list[int]],
                     ) -> Placement:
    """Turn board quotas into a concrete virtual->physical mapping."""
    vb_to_board = split_virtual_blocks(app, quotas)
    cursor = {board: iter(sorted(free_by_board[board]))
              for board, _ in quotas}
    mapping: dict[int, BlockAddress] = {}
    for vb in sorted(vb_to_board):
        board = vb_to_board[vb]
        mapping[vb] = (board, next(cursor[board]))
    placement = Placement(mapping=mapping)
    placement.validate(app.num_blocks)
    return placement


class CommunicationAwarePolicy:
    """The paper's multi-round, span-minimizing policy."""

    name = "communication-aware"

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        boards = sorted(free_by_board)
        free = {b: len(free_by_board[b]) for b in boards}

        for round_k in range(1, len(boards) + 1):
            best: tuple[float, float, tuple[int, ...]] | None = None
            for subset in itertools.combinations(boards, round_k):
                capacity = sum(free[b] for b in subset)
                if capacity < needed:
                    continue
                # every board of the subset must contribute, otherwise
                # the same placement exists in an earlier round
                if round_k > 1 and any(free[b] == 0 for b in subset):
                    continue
                span = network.span_cost(list(subset))
                leftover = capacity - needed
                key = (span, leftover, subset)
                if best is None or key < best:
                    best = key
            if best is None:
                continue
            _, _, subset = best
            quotas = self._quotas(subset, free, needed)
            return _build_placement(app, quotas, free_by_board)
        return None

    @staticmethod
    def _quotas(subset: tuple[int, ...], free: dict[int, int],
                needed: int) -> list[tuple[int, int]]:
        """Fill the fullest boards first so leftovers concentrate."""
        order = sorted(subset, key=lambda b: (-free[b], b))
        quotas = []
        remaining = needed
        for board in order:
            take = min(free[board], remaining)
            if take > 0:
                quotas.append((board, take))
                remaining -= take
        return quotas


class FirstFitPolicy:
    """Ablation: grab free blocks in address order, boards ignored."""

    name = "first-fit"

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        pool: list[BlockAddress] = [
            (board, block)
            for board in sorted(free_by_board)
            for block in sorted(free_by_board[board])]
        if len(pool) < needed:
            return None
        chosen = pool[:needed]
        quotas: list[tuple[int, int]] = []
        for board in sorted({b for b, _ in chosen}):
            quotas.append((board, sum(1 for bb, _ in chosen
                                      if bb == board)))
        chosen_by_board = {
            board: [blk for bb, blk in chosen if bb == board]
            for board, _ in quotas}
        return _build_placement(app, quotas, chosen_by_board)


class SpreadPolicy:
    """Ablation: round-robin blocks across boards (max communication)."""

    name = "spread"

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        pools = {b: sorted(blocks)
                 for b, blocks in free_by_board.items() if blocks}
        if sum(len(p) for p in pools.values()) < needed:
            return None
        taken: dict[int, list[int]] = {b: [] for b in pools}
        boards_cycle = itertools.cycle(sorted(pools))
        count = 0
        while count < needed:
            board = next(boards_cycle)
            if pools[board]:
                taken[board].append(pools[board].pop(0))
                count += 1
        quotas = [(b, len(blks)) for b, blks in sorted(taken.items())
                  if blks]
        chosen_by_board = {b: blks for b, blks in taken.items() if blks}
        return _build_placement(app, quotas, chosen_by_board)
