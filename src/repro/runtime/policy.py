"""Allocation policies (Section 3.4).

The paper's **communication-aware runtime management policy** "allocates
the physical blocks in a multi-round manner.  In the first round, it tries
to find a single physical FPGA that has a sufficient amount of physical
blocks...  It then increases the number of physical FPGAs in the following
rounds until a feasible allocation is found."  Within a round it prefers
board sets with the smallest ring span (fewest hops) and the tightest fit
(least leftover, to limit fragmentation).

The paper's 4-board platform tolerates evaluating every board subset per
round; a 64-board cluster does not (C(64, 4) is already ~600k subsets per
blocked request).  The default search is therefore an exact
branch-and-bound over the same key ``(span, leftover, subset)``:

- boards with zero free blocks are dropped up front (a subset containing
  one is either infeasible in round 1 or redundant with an earlier
  round, exactly the cases the exhaustive loop skipped);
- partial subsets are pruned by a capacity bound (the best remaining
  boards cannot reach the needed block count) and by a span lower bound
  (every further board adds at least one hop to every chosen board, so a
  partial span can already exceed the incumbent's);
- pruning only discards subsets whose key is *strictly* greater than the
  incumbent, so the minimum -- including its lexicographic tie-break --
  is the one the exhaustive enumeration would have produced.
  ``CommunicationAwarePolicy(prune=False)`` keeps the original loop as
  the oracle for the equivalence property test and the "before" code
  path of the scalability benchmark.

Two deliberately worse policies are provided for the ablation benches:
``FirstFitPolicy`` ignores board boundaries entirely and ``SpreadPolicy``
scatters blocks round-robin across boards (maximum communication).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Protocol

import numpy as np

from repro.cluster.network import RingNetwork
from repro.compiler.bitstream import CompiledApp
from repro.runtime.types import BlockAddress, Placement

__all__ = [
    "AllocationPolicy",
    "CommunicationAwarePolicy",
    "FirstFitPolicy",
    "SpreadPolicy",
    "split_virtual_blocks",
]


class AllocationPolicy(Protocol):
    """Strategy interface: pick physical blocks for an application."""

    name: str

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        """Return a placement using currently free blocks, or ``None``
        when the application cannot be deployed right now."""
        ...


#: memoized flow-adjacency per CompiledApp instance.  The profiler put
#: ``split_virtual_blocks`` at the top of the surviving hot-path
#: profile, and most of its time was rebuilding the same adjacency:
#: every deploy attempt of every queued request re-splits the same few
#: artifacts.  The adjacency (and the seed scores derived from it) is a
#: pure function of ``app.flows``, so it is built once per app object.
#: Keyed by ``id()`` with the app held strongly and identity-checked on
#: lookup, so a recycled id can never alias a different artifact; the
#: LRU bound keeps long campaigns from pinning dead apps.
_ADJACENCY_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
_ADJACENCY_CACHE_MAX = 64
#: cold constructions, ever (the equivalence test pins cache reuse)
_adjacency_builds = 0

#: sentinel leftover for boards that fail the round-1 fit test
#: (hoisted: ``np.iinfo`` lookups are surprisingly costly per call)
_I64_MAX = np.iinfo(np.int64).max


def _flow_adjacency(app: CompiledApp):
    """``(adjacency, base_flow)`` for ``app``, memoized per instance."""
    global _adjacency_builds
    key = id(app)
    entry = _ADJACENCY_CACHE.get(key)
    if entry is not None and entry[0] is app:
        _ADJACENCY_CACHE.move_to_end(key)
        return entry[1], entry[2]
    _adjacency_builds += 1
    n = app.num_blocks
    # symmetric flow-adjacency list between virtual blocks (self-flows
    # never contribute to a cut, so they are dropped)
    adjacency: dict[int, list[tuple[int, float]]] = {
        vb: [] for vb in range(n)}
    weight: dict[tuple[int, int], float] = {}
    for (src, dst), bits in app.flows.items():
        if src == dst:
            continue
        pair = (min(src, dst), max(src, dst))
        weight[pair] = weight.get(pair, 0.0) + bits
    for (a, b), w in weight.items():
        adjacency[a].append((b, w))
        adjacency[b].append((a, w))
    # flow from each block into the all-unassigned set (seed scores;
    # callers copy before mutating)
    base_flow = {vb: sum(w for _, w in adjacency[vb])
                 for vb in range(n)}
    _ADJACENCY_CACHE[key] = (app, adjacency, base_flow)
    while len(_ADJACENCY_CACHE) > _ADJACENCY_CACHE_MAX:
        _ADJACENCY_CACHE.popitem(last=False)
    return adjacency, base_flow


#: per-app state of the vectorized split kernel: the dense inter-block
#: flow matrix plus the base scores as one float64 vector (the same
#: values :func:`_flow_adjacency` hands the scalar kernel).  Keyed and
#: bounded like ``_ADJACENCY_CACHE``.
_SPLIT_ARRAYS_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
_SPLIT_ARRAYS_CACHE_MAX = 64
#: memoized group shapes: ``(app id, capacity tuple)`` -> per-block
#: quota index.  The greedy grouping depends only on the capacity
#: *sequence* and the app's flows -- board ids are opaque labels -- so
#: one entry serves every placement with the same shape (on a busy
#: cluster the winning boards vary constantly while the shapes repeat).
_SPLIT_RESULT_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_SPLIT_RESULT_CACHE_MAX = 1024
#: cold array-kernel runs, ever (tests pin shape-memo reuse)
_split_kernel_runs = 0


def _clear_split_caches() -> None:
    """Drop every split-path memo (adjacency, arrays, shapes).

    Test hook: the white-box cache tests clear all layers at once so
    build counters start from a provably cold state.
    """
    _ADJACENCY_CACHE.clear()
    _SPLIT_ARRAYS_CACHE.clear()
    _SPLIT_RESULT_CACHE.clear()


def _split_arrays(app: CompiledApp):
    """``(flow matrix, base scores)`` for ``app``, memoized."""
    key = id(app)
    entry = _SPLIT_ARRAYS_CACHE.get(key)
    if entry is not None and entry[0] is app:
        _SPLIT_ARRAYS_CACHE.move_to_end(key)
        return entry[1], entry[2]
    adjacency, base_flow = _flow_adjacency(app)
    n = app.num_blocks
    matrix = np.zeros((n, n), dtype=np.float64)
    for vb, neighbors in adjacency.items():
        for other, w in neighbors:
            matrix[vb, other] = w
    base = np.asarray([base_flow[v] for v in range(n)],
                      dtype=np.float64)
    _SPLIT_ARRAYS_CACHE[key] = (app, matrix, base)
    while len(_SPLIT_ARRAYS_CACHE) > _SPLIT_ARRAYS_CACHE_MAX:
        _SPLIT_ARRAYS_CACHE.popitem(last=False)
    return matrix, base


def _split_array(app: CompiledApp,
                 quotas: list[tuple[int, int]]) -> dict[int, int]:
    """The vectorized split kernel; see :func:`split_virtual_blocks`.

    Float-exact with the scalar kernel: each assignment applies exactly
    one ``-=`` / ``+=`` per score cell (non-neighbors move by zero,
    which is an IEEE no-op), in the same order the scalar per-neighbor
    walk does, so every score the selection reads is bit-equal; and
    ``argmax`` over ``where(avail, score, -inf)`` returns the *first*
    maximum, which is the scalar ``max(..., key=(score, -v))``
    tie-break.
    """
    global _split_kernel_runs
    n = app.num_blocks
    caps = tuple(q for _, q in quotas)
    key = (id(app), caps)
    entry = _SPLIT_RESULT_CACHE.get(key)
    if entry is not None and entry[0] is app:
        _SPLIT_RESULT_CACHE.move_to_end(key)
        groups = entry[1]
        return {vb: quotas[g][0] for vb, g in enumerate(groups)}
    _split_kernel_runs += 1
    if caps and caps[0] >= n:
        # single-board placement (the common case on an unsaturated
        # cluster): every region-growing pick lands on the one board,
        # so the scores never matter
        groups = [0] * n
    else:
        matrix, base = _split_arrays(app)
        unassigned_flow = base.copy()
        group_flow = np.zeros(n, dtype=np.float64)
        avail = np.ones(n, dtype=bool)
        groups = [0] * n
        left = n
        for g, (_board, quota) in enumerate(quotas):
            if not left:
                break
            group_flow[:] = 0.0
            for picked in range(min(quota, left)):
                score = group_flow if picked else unassigned_flow
                vb = int(np.argmax(np.where(avail, score, -np.inf)))
                avail[vb] = False
                groups[vb] = g
                row = matrix[vb]
                unassigned_flow -= row
                group_flow += row
                left -= 1
    _SPLIT_RESULT_CACHE[key] = (app, groups)
    while len(_SPLIT_RESULT_CACHE) > _SPLIT_RESULT_CACHE_MAX:
        _SPLIT_RESULT_CACHE.popitem(last=False)
    return {vb: quotas[g][0] for vb, g in enumerate(groups)}


def split_virtual_blocks(app: CompiledApp,
                         quotas: list[tuple[int, int]],
                         kernel: str = "array",
                         ) -> dict[int, int]:
    """Group an app's virtual blocks onto boards, minimizing cut flow.

    ``quotas`` is an ordered list of ``(board_id, capacity)``.  Greedy
    region growing over the app's inter-block flow graph: each board's
    group is grown by repeatedly pulling in the unassigned virtual block
    with the strongest connection to the group, so heavy channels stay
    board-local.

    ``kernel`` selects the implementation: ``"array"`` (default) runs
    the selection loop over flat numpy score vectors with a dense flow
    matrix, takes an O(n) shortcut for single-board placements, and
    memoizes the group shape per ``(app, capacity sequence)`` --
    exactly the assignment the scalar kernel produces (the equivalence
    suite asserts it); ``"scalar"`` is the original dict/set walk,
    kept pristine as the differential oracle.

    Scalar scores are maintained incrementally over a memoized
    flow-adjacency list (:func:`_flow_adjacency`): assigning a block
    updates only its neighbors' scores, and repeated splits of the same
    artifact skip the adjacency construction entirely.
    """
    total_quota = sum(q for _, q in quotas)
    n = app.num_blocks
    if total_quota < n:
        raise ValueError("quotas cannot hold the application")
    if kernel == "array":
        return _split_array(app, quotas)
    if kernel != "scalar":
        raise ValueError(f"unknown split kernel {kernel!r}")

    adjacency, base_flow = _flow_adjacency(app)
    #: flow from each block into the still-unassigned set (seed score)
    unassigned_flow = dict(base_flow)
    #: flow from each unassigned block into the group being grown
    group_flow = {vb: 0.0 for vb in range(n)}

    unassigned = set(range(n))
    assignment: dict[int, int] = {}

    def assign(vb: int, board_id: int) -> None:
        unassigned.discard(vb)
        assignment[vb] = board_id
        for other, w in adjacency[vb]:
            unassigned_flow[other] -= w
            group_flow[other] += w

    for board_id, quota in quotas:
        if not unassigned:
            break
        for vb in unassigned:
            group_flow[vb] = 0.0
        take = min(quota, len(unassigned))
        for picked in range(take):
            if picked:
                vb = max(unassigned,
                         key=lambda v: (group_flow[v], -v))
            else:
                # seed with the unassigned block of heaviest total flow
                vb = max(unassigned,
                         key=lambda v: (unassigned_flow[v], -v))
            assign(vb, board_id)
    return assignment


def _build_placement(app: CompiledApp,
                     quotas: list[tuple[int, int]],
                     free_by_board: dict[int, list[int]],
                     ) -> Placement:
    """Turn board quotas into a concrete virtual->physical mapping."""
    vb_to_board = split_virtual_blocks(app, quotas)
    cursor = {board: iter(sorted(free_by_board[board]))
              for board, _ in quotas}
    mapping: dict[int, BlockAddress] = {}
    for vb in sorted(vb_to_board):
        board = vb_to_board[vb]
        mapping[vb] = (board, next(cursor[board]))
    placement = Placement(mapping=mapping)
    placement.validate(app.num_blocks)
    return placement


class CommunicationAwarePolicy:
    """The paper's multi-round, span-minimizing policy.

    Two interchangeable kernels drive the pruned branch-and-bound:

    - ``kernel="array"`` (default) precomputes each search node's
      capacity-prune mask and added-span vector with numpy over the
      candidate range -- both are independent of the incumbent, so the
      sequential candidate scan that follows takes exactly the same
      prune decisions (and visited/pruned counts) as the scalar code;
    - ``kernel="scalar"`` is the original per-board Python loop, kept
      as the differential oracle the equivalence tests replay.

    Both kernels return identical keys, so placements, traces, and
    summaries are identical by construction; the randomized equivalence
    tests assert it anyway.
    """

    name = "communication-aware"

    def __init__(self, prune: bool = True,
                 kernel: str = "array",
                 max_boards: int | None = None) -> None:
        #: ``False`` restores the exhaustive per-round subset
        #: enumeration (the differential oracle / "before" path)
        self.prune = prune
        if kernel not in ("array", "scalar"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel
        #: optional cap on placement span (boards per deployment).
        #: ``None`` -- the paper's unbounded multi-round search -- is
        #: byte-identical to the pre-cap policy.  A finite cap models
        #: operators who bound ring-crossing latency: requests whose
        #: blocks would have to scatter wider than ``max_boards`` are
        #: rejected instead, which is exactly the fragmentation
        #: pressure the defragmenter relieves.
        if max_boards is not None and max_boards < 1:
            raise ValueError("max_boards must be >= 1")
        self.max_boards = max_boards
        #: optional :class:`repro.obs.tracer.Tracer`; when set (and
        #: enabled) each successful ``allocate`` records rounds
        #: attempted and subsets visited vs. pruned -- the
        #: search-effort telemetry the scalability claims lean on.
        #: ``None`` costs one falsy check per call.
        self.tracer = None
        #: failed-search telemetry ``(reason, rounds, visited,
        #: pruned)``, refreshed on every tracing failure.  A saturated
        #: loop rejects the queue head on every event, so failures
        #: deposit a tuple here instead of a trace entry of their own;
        #: the controller folds it into its single ``ctrl.reject``
        #: event.
        self.last_search: tuple | None = None

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        boards = sorted(free_by_board)
        free = {b: len(free_by_board[b]) for b in boards}
        if not self.prune:
            return self._allocate_exhaustive(app, free_by_board, free,
                                             boards, needed, network)

        present = [b for b in boards if free[b] > 0]
        if sum(free[b] for b in present) < needed:
            if self.tracer:
                self.last_search = ("insufficient-capacity", 0, 0, 0)
            return None
        # [visited, pruned] node counters, collected only when tracing
        stats = [0, 0] if self.tracer else None
        if self.kernel == "array":
            free_arr = np.asarray([free[b] for b in present],
                                  dtype=np.int64)
        limit = len(present) if self.max_boards is None \
            else min(len(present), self.max_boards)
        for round_k in range(1, limit + 1):
            if self.kernel == "array":
                best = self._best_subset_array(
                    present, free_arr, needed, round_k, network,
                    stats=stats)
            else:
                best = self._best_subset(present, free, needed,
                                         round_k, network, stats=stats)
            if best is None:
                continue
            _, _, subset = best
            if self.tracer:
                self.tracer.event(
                    "policy.allocate", app=app.name, needed=needed,
                    found=True, rounds=round_k, boards=subset,
                    span=best[0], leftover=best[1],
                    visited=stats[0], pruned=stats[1])
            quotas = self._quotas(subset, free, needed)
            return _build_placement(app, quotas, free_by_board)
        if self.tracer:
            self.last_search = ("no-feasible-subset", len(present),
                                stats[0], stats[1])
        return None

    @staticmethod
    def _best_subset(present: list[int], free: dict[int, int],
                     needed: int, k: int, network: RingNetwork,
                     stats: list[int] | None = None,
                     ) -> tuple[int, int, tuple[int, ...]] | None:
        """Minimum-key feasible ``k``-subset of ``present`` boards.

        Depth-first enumeration in lexicographic order (so equal-key
        subsets resolve exactly like the exhaustive ``min``), with two
        sound prunes -- see the module docstring.  ``stats`` (tracing
        only) accumulates ``[nodes visited, nodes pruned]``; ``None``
        keeps the search loop free of counting work.
        """
        n = len(present)
        if k > n:
            return None
        # suffix_max[i]: most free blocks on any of present[i:]
        suffix_max = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix_max[i] = max(free[present[i]], suffix_max[i + 1])
        dist = network._dist
        best: tuple[int, int, tuple[int, ...]] | None = None
        chosen: list[int] = []

        def extend(start: int, capacity: int, span: int) -> None:
            nonlocal best
            remaining = k - len(chosen)
            if remaining == 0:
                if capacity < needed:
                    return
                # int() keeps the tie-break key type identical to the
                # exhaustive search's (and JSON-safe): the distance
                # matrix hands out numpy scalars
                key = (int(span), int(capacity - needed), tuple(chosen))
                if best is None or key < best:
                    best = key
                return
            for i in range(start, n - remaining + 1):
                board = present[i]
                if stats is not None:
                    stats[0] += 1
                # capacity bound: even the best boards after ``i``
                # cannot close the gap
                if capacity + free[board] \
                        + (remaining - 1) * suffix_max[i + 1] < needed:
                    if stats is not None:
                        stats[1] += 1
                    continue
                added = span
                for member in chosen:
                    added += int(dist[member, board])
                if best is not None:
                    # span bound: each of the remaining boards adds at
                    # least one hop to every board already chosen and to
                    # each other; skipping is sound only on a strict
                    # excess (an equal bound could still win on the
                    # leftover tie-break)
                    chosen_after = len(chosen) + 1
                    floor = added + (remaining - 1) * chosen_after \
                        + (remaining - 1) * (remaining - 2) // 2
                    if floor > best[0]:
                        if stats is not None:
                            stats[1] += 1
                        continue
                chosen.append(board)
                extend(i + 1, capacity + free[board], added)
                chosen.pop()

        extend(0, 0, 0)
        return best

    @staticmethod
    def _best_subset_array(present: list[int], free_arr: "np.ndarray",
                           needed: int, k: int, network: RingNetwork,
                           stats: list[int] | None = None,
                           ) -> tuple[int, int, tuple[int, ...]] | None:
        """:meth:`_best_subset` on flat arrays, counter-exact.

        ``free_arr`` is the free-block count of each ``present`` board
        (same order).  Per search node the capacity-prune mask and the
        added-span vector are computed for the whole candidate range in
        one shot -- both depend only on the fixed inputs and the chosen
        prefix, never on the incumbent -- and the candidate scan then
        walks them sequentially, comparing span floors against the live
        incumbent at the same points the scalar loop does.  Visited and
        pruned counts are therefore identical by construction.
        """
        n = len(present)
        if k > n:
            return None
        if k == 1:
            # single-board round: the common case, fully vectorized.
            # The scalar scan never span-prunes here (the floor is 0),
            # so pruned == boards that fail the fit test, and the best
            # key is the smallest leftover with the lowest board id --
            # exactly the first minimum ``argmin`` returns.
            fits = free_arr >= needed
            if stats is not None:
                stats[0] += n
                stats[1] += int(n - int(fits.sum()))
            if not fits.any():
                return None
            leftovers = np.where(fits, free_arr - needed,
                                 np.iinfo(np.int64).max)
            j = int(np.argmin(leftovers))
            return (0, int(free_arr[j] - needed), (present[j],))
        # suffix_max[i]: most free blocks on any of present[i:]
        suffix_max = np.zeros(n + 1, dtype=np.int64)
        suffix_max[:n] = np.maximum.accumulate(free_arr[::-1])[::-1]
        free_list = free_arr.tolist()
        present_arr = np.asarray(present, dtype=np.intp)
        dist = network._dist
        best: tuple[int, int, tuple[int, ...]] | None = None
        chosen: list[int] = []

        def extend(start: int, capacity: int, span: int) -> None:
            nonlocal best
            remaining = k - len(chosen)
            if remaining == 0:
                if capacity < needed:
                    return
                key = (span, capacity - needed, tuple(chosen))
                if best is None or key < best:
                    best = key
                return
            end = n - remaining + 1
            if start >= end:
                return
            seg = slice(start, end)
            cap_bad = (capacity + free_arr[seg]
                       + (remaining - 1)
                       * suffix_max[start + 1:end + 1]
                       < needed).tolist()
            if chosen:
                added_all = (span
                             + dist[chosen][:, present_arr[seg]]
                             .sum(axis=0)).tolist()
            else:
                added_all = [span] * (end - start)
            tail = (remaining - 1) * (len(chosen) + 1) \
                + (remaining - 1) * (remaining - 2) // 2
            for j in range(end - start):
                if stats is not None:
                    stats[0] += 1
                if cap_bad[j]:
                    if stats is not None:
                        stats[1] += 1
                    continue
                added = added_all[j]
                if best is not None and added + tail > best[0]:
                    if stats is not None:
                        stats[1] += 1
                    continue
                i = start + j
                chosen.append(present[i])
                extend(i + 1, capacity + free_list[i], added)
                chosen.pop()

        extend(0, 0, 0)
        return best

    def allocate_fast(self, app: CompiledApp, db, network: RingNetwork,
                      excluded=()) -> Placement | None:
        """Untraced hot path straight over the ResourceDB's flat arrays.

        Skips building the per-board free-list candidate map entirely:
        the round search runs on the database's live free-count vector
        (with ``excluded`` boards masked out), and the concrete free
        lists are materialized only for the boards the winning quotas
        actually use.  Produces exactly the placement :meth:`allocate`
        would on the equivalent candidate map -- the controller only
        takes this path when no tracer is attached, so the traced
        telemetry (and golden traces) are untouched.
        """
        needed = app.num_blocks
        counts = db.free_counts_vector()
        if excluded:
            counts = counts.copy()
            for board in excluded:
                counts[db.board_row(board)] = 0
        elif db.total_free_blocks() < needed:
            return None
        # round 1 inline: the overwhelming outcome on a big unsaturated
        # cluster.  Same argmin tie-break as _best_subset_array(k=1)
        # (smallest leftover, lowest row = lowest board id; zero-count
        # rows never fit, so restricting to present boards first would
        # pick the same row), and the single-quota placement is built
        # directly -- virtual block i onto the board's i-th lowest free
        # block, exactly what _build_placement's cursor walk assigns.
        # one temporary: negative leftovers reinterpret as huge
        # unsigned values, so argmin lands on the best fitting board
        # (or, when nothing fits, a board the counts check rejects)
        leftovers = (counts - needed).view(np.uint64)
        j = int(leftovers.argmin())
        if counts[j] >= needed:
            board = int(db.board_ids_array()[j])
            blocks = db.free_by_board_one(board)
            return Placement(mapping={
                vb: (board, blocks[vb]) for vb in range(needed)})
        present_rows = np.nonzero(counts)[0]
        free_arr = counts[present_rows]
        if int(free_arr.sum()) < needed:
            return None
        present = db.board_ids_array()[present_rows].tolist()
        limit = len(present) if self.max_boards is None \
            else min(len(present), self.max_boards)
        for round_k in range(2, limit + 1):
            best = self._best_subset_array(present, free_arr, needed,
                                           round_k, network)
            if best is None:
                continue
            _, _, subset = best
            free = dict(zip(present, free_arr.tolist()))
            quotas = self._quotas(subset, free, needed)
            free_by_board = {board: db.free_by_board_one(board)
                             for board, _ in quotas}
            return _build_placement(app, quotas, free_by_board)
        return None

    def _allocate_exhaustive(self, app: CompiledApp,
                             free_by_board: dict[int, list[int]],
                             free: dict[int, int], boards: list[int],
                             needed: int, network: RingNetwork,
                             ) -> Placement | None:
        """The original brute-force enumeration (every subset, every
        round); kept as the reference the pruned search must match."""
        visited = 0
        limit = len(boards) if self.max_boards is None \
            else min(len(boards), self.max_boards)
        for round_k in range(1, limit + 1):
            best: tuple[int, int, tuple[int, ...]] | None = None
            for subset in itertools.combinations(boards, round_k):
                visited += 1
                capacity = sum(free[b] for b in subset)
                if capacity < needed:
                    continue
                # every board of the subset must contribute, otherwise
                # the same placement exists in an earlier round
                if round_k > 1 and any(free[b] == 0 for b in subset):
                    continue
                # int-typed key, matching the pruned search exactly:
                # mixed int/float keys compare equal on equal spans but
                # serialize differently, and a future non-integral cost
                # model would silently break tie-break parity
                span = int(network.span_cost(list(subset)))
                leftover = int(capacity - needed)
                key = (span, leftover, subset)
                if best is None or key < best:
                    best = key
            if best is None:
                continue
            _, _, subset = best
            if self.tracer:
                self.tracer.event(
                    "policy.allocate", app=app.name, needed=needed,
                    found=True, rounds=round_k, boards=subset,
                    span=best[0], leftover=best[1],
                    visited=visited, pruned=0)
            quotas = CommunicationAwarePolicy._quotas(subset, free,
                                                      needed)
            return _build_placement(app, quotas, free_by_board)
        if self.tracer:
            self.last_search = ("no-feasible-subset", len(boards),
                                visited, 0)
        return None

    @staticmethod
    def _quotas(subset: tuple[int, ...], free: dict[int, int],
                needed: int) -> list[tuple[int, int]]:
        """Fill the fullest boards first so leftovers concentrate."""
        order = sorted(subset, key=lambda b: (-free[b], b))
        quotas = []
        remaining = needed
        for board in order:
            take = min(free[board], remaining)
            if take > 0:
                quotas.append((board, take))
                remaining -= take
        return quotas


class FirstFitPolicy:
    """Ablation: grab free blocks in address order, boards ignored."""

    name = "first-fit"

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        pool: list[BlockAddress] = [
            (board, block)
            for board in sorted(free_by_board)
            for block in sorted(free_by_board[board])]
        if len(pool) < needed:
            return None
        chosen = pool[:needed]
        quotas: list[tuple[int, int]] = []
        for board in sorted({b for b, _ in chosen}):
            quotas.append((board, sum(1 for bb, _ in chosen
                                      if bb == board)))
        chosen_by_board = {
            board: [blk for bb, blk in chosen if bb == board]
            for board, _ in quotas}
        return _build_placement(app, quotas, chosen_by_board)


class SpreadPolicy:
    """Ablation: round-robin blocks across boards (max communication)."""

    name = "spread"

    def allocate(self, app: CompiledApp,
                 free_by_board: dict[int, list[int]],
                 network: RingNetwork) -> Placement | None:
        needed = app.num_blocks
        pools = {b: sorted(blocks)
                 for b, blocks in free_by_board.items() if blocks}
        if sum(len(p) for p in pools.values()) < needed:
            return None
        taken: dict[int, list[int]] = {b: [] for b in pools}
        boards_cycle = itertools.cycle(sorted(pools))
        count = 0
        while count < needed:
            board = next(boards_cycle)
            if pools[board]:
                taken[board].append(pools[board].pop(0))
                count += 1
        quotas = [(b, len(blks)) for b, blks in sorted(taken.items())
                  if blks]
        chosen_by_board = {b: blks for b, blks in taken.items() if blks}
        return _build_placement(app, quotas, chosen_by_board)
