"""Placements and deployments: the runtime's working objects.

A :class:`Placement` is the policy's answer -- which physical blocks, on
which boards, host which virtual blocks.  A :class:`Deployment` is a live
application: the placement plus the timing consequences (reconfiguration
time, communication-adjusted service time) that the simulator turns into
events.  Baseline managers produce the same types so every experiment
compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.bitstream import CompiledApp

__all__ = ["BlockAddress", "Placement", "Deployment",
           "StateCheckpoint"]

#: (board id, physical block index) -- the cluster-global block address.
BlockAddress = tuple[int, int]


@dataclass(slots=True)
class Placement:
    """Virtual-to-physical mapping of one application."""

    #: virtual block id -> physical block address
    mapping: dict[int, BlockAddress]
    #: lazy ``boards`` memo -- placements are immutable in practice
    #: (rebuilt, never edited in place), and the controller reads the
    #: board list many times per deployment
    _boards: "list[int] | None" = field(default=None, repr=False,
                                        compare=False)
    #: lazy board -> block-index grouping backing :meth:`blocks_on`
    _by_board: "dict[int, list[int]] | None" = field(
        default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def addresses(self) -> list[BlockAddress]:
        return list(self.mapping.values())

    @property
    def boards(self) -> list[int]:
        cached = self._boards
        if cached is None:
            cached = self._boards = sorted(
                {board for board, _ in self.mapping.values()})
        return list(cached)

    @property
    def num_boards(self) -> int:
        cached = self._boards
        if cached is None:
            cached = self._boards = sorted(
                {board for board, _ in self.mapping.values()})
        return len(cached)

    @property
    def spans_boards(self) -> bool:
        return self.num_boards > 1

    def blocks_on(self, board: int) -> list[int]:
        grouped = self._by_board
        if grouped is None:
            grouped = self._by_board = {}
            for b, blk in self.mapping.values():
                grouped.setdefault(b, []).append(blk)
        return list(grouped.get(board, ()))

    def board_of(self, virtual_block: int) -> int:
        return self.mapping[virtual_block][0]

    def validate(self, num_virtual_blocks: int) -> None:
        if set(self.mapping) != set(range(num_virtual_blocks)):
            raise ValueError(
                f"placement covers virtual blocks {sorted(self.mapping)}, "
                f"expected 0..{num_virtual_blocks - 1}")
        if len(set(self.mapping.values())) != len(self.mapping):
            raise ValueError("placement reuses a physical block")


@dataclass(frozen=True, slots=True)
class StateCheckpoint:
    """Captured run state of one live deployment (the migration unit).

    The PR 1 snapshot model records *which* blocks a request holds; a
    live migration additionally has to move *what is in them*: the
    DRAM segments the tenant mapped (weight shards and activations)
    and the in-flight horizon of the latency-insensitive interface --
    every channel FIFO must drain before the source blocks can be
    reprogrammed, and refill after the destination blocks come up.
    Both costs are charged to the migrating request as pause time.
    """

    request_id: int
    #: bytes of mapped DRAM that must be copied to the destination
    dram_bytes: int
    #: total FIFO occupancy horizon (beats) across the interface's
    #: latency-insensitive channels: depth + initialization tokens
    fifo_beats: int
    #: quiesce + DRAM read-out time on the source board(s)
    capture_s: float
    #: DRAM write-back + pipeline refill time on the destination
    restore_s: float

    @property
    def pause_s(self) -> float:
        """State-transfer pause excluding reconfiguration/rewrite."""
        return self.capture_s + self.restore_s


@dataclass(slots=True)
class Deployment:
    """One running application instance."""

    request_id: int
    app: CompiledApp
    tenant: str
    placement: Placement
    deployed_at: float
    reconfig_time_s: float
    service_time_s: float
    comm_slowdown: float = 1.0
    latency_overhead_s: float = 0.0
    #: extra service time imposed on co-residents by this manager's
    #: deployment mechanics (AmorphOS full-device reconfig); the simulator
    #: applies these to the named running requests.
    corunner_penalties: dict[int, float] = field(default_factory=dict)
    #: live migrations this deployment has undergone (placement moves
    #: after the original deploy; ``deployed_at`` never changes)
    migrations: int = 0
    #: cumulative pause seconds those migrations charged
    migration_pause_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self.placement.mapping)

    @property
    def spans_boards(self) -> bool:
        return self.placement.spans_boards

    @property
    def completion_time(self) -> float:
        """Scheduled completion absent later penalties."""
        return self.deployed_at + self.reconfig_time_s \
            + self.service_time_s

    @property
    def latency_overhead_fraction(self) -> float:
        if self.service_time_s == 0:
            return 0.0
        return self.latency_overhead_s / self.service_time_s
