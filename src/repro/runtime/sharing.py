"""Same-function physical-block sharing (Section 3.4's optional mode).

"In principle, ViTAL supports the case that the virtual blocks of multiple
applications can be mapped into the same physical block if these
applications share the same function."  The paper leaves the mode off in
its deployment for two stated reasons -- multiplexing reduces per-user
throughput, and encrypted bitstreams hide whether two virtual blocks
compute the same function -- but the capability is part of the design, so
this module implements it as an opt-in controller.

Semantics:

- a physical block may host virtual blocks of several *requests* only if
  the underlying images are identical (same application, same virtual
  block index -- the un-encrypted-cloud case where the controller can
  prove same-function);
- a shared deployment is admitted at ``1/k`` throughput, where ``k`` is
  the number of co-sharers at admission (the paper's stated cost of
  multiplexing); the time-slicing of already-running sharers is
  approximated as fixed-at-admission;
- isolation still holds *between functions*: blocks are only ever shared
  by provably identical circuits, and DRAM segments remain private per
  tenant.  :func:`verify_function_sharing` checks exactly that.
"""

from __future__ import annotations

from repro.cluster.cluster import FPGACluster
from repro.runtime.audit import AuditEvent
from repro.compiler.bitstream import CompiledApp
from repro.runtime.controller import SystemController
from repro.runtime.isolation import IsolationViolation
from repro.runtime.policy import AllocationPolicy
from repro.runtime.types import Deployment, Placement

__all__ = ["FunctionSharingController", "verify_function_sharing"]


class FunctionSharingController(SystemController):
    """A system controller that multiplexes identical virtual blocks.

    Deployment first follows the normal exclusive path; only when the
    policy finds no free blocks does the controller look for a running
    deployment of the *same application* to piggyback on.
    """

    name = "vital-sharing"

    def __init__(self, cluster: FPGACluster,
                 policy: AllocationPolicy | None = None,
                 max_sharers: int = 2) -> None:
        super().__init__(cluster, policy=policy)
        if max_sharers < 1:
            raise ValueError("max_sharers must be >= 1")
        self.max_sharers = max_sharers
        #: request id -> the request id whose blocks it shares (host)
        self._shared_with: dict[int, int] = {}
        #: host request id -> guest request ids
        self._guests: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    def try_deploy(self, app: CompiledApp, request_id: int, now: float,
                   tenant: str | None = None) -> Deployment | None:
        deployment = super().try_deploy(app, request_id, now,
                                        tenant=tenant)
        if deployment is not None:
            return deployment
        return self._try_share(app, request_id, now,
                               tenant or f"tenant-{request_id}")

    def release(self, deployment: Deployment, now: float = 0.0) -> None:
        request_id = deployment.request_id
        host = self._shared_with.pop(request_id, None)
        if host is not None:
            # a guest leaves: free its DRAM segments and registration
            # (the blocks stay with the host)
            self._guests[host].discard(request_id)
            self.audit.record(now, AuditEvent.RELEASE, request_id,
                              deployment.tenant,
                              app=deployment.app.name, was_guest=True)
            self._release_memory(request_id)
            self._untrack_deployment(deployment)
            return
        guests = self._guests.pop(request_id, set())
        if guests:
            # the host leaves first: promote one guest to own the blocks
            heir = min(guests)
            self.resource_db.release(request_id)
            self.resource_db.allocate(heir, deployment.placement.addresses)
            self._guests[heir] = guests - {heir}
            for guest in self._guests[heir]:
                self._shared_with[guest] = heir
            self._shared_with.pop(heir, None)
            # host's memory and bandwidth go; guests keep their own
            self._release_memory(request_id)
            self._detach_dram_demand(deployment.tenant,
                                     deployment.placement)
            self.cluster.network.release_flow(
                self._flow_key(request_id))
            self.audit.record(now, AuditEvent.RELEASE, request_id,
                              deployment.tenant,
                              app=deployment.app.name,
                              promoted_heir=heir)
            self._untrack_deployment(deployment)
            return
        super().release(deployment, now)

    # ------------------------------------------------------------------
    def sharers_of(self, request_id: int) -> int:
        """Co-sharers of the blocks backing ``request_id`` (incl. self)."""
        host = self._shared_with.get(request_id, request_id)
        return 1 + len(self._guests.get(host, ()))

    def _try_share(self, app: CompiledApp, request_id: int, now: float,
                   tenant: str) -> Deployment | None:
        host = self._pick_host(app)
        if host is None:
            return None
        host_deployment = self.deployments[host]
        sharers = 1 + len(self._guests.get(host, ())) + 1
        placement = Placement(
            mapping=dict(host_deployment.placement.mapping))
        try:
            segments = self._map_memory(tenant, placement)
        except MemoryError:
            return None
        self._segments_of[request_id] = segments
        self._guests.setdefault(host, set()).add(request_id)
        self._shared_with[request_id] = host
        self.audit.record(now, AuditEvent.DEPLOY, request_id, tenant,
                          app=app.name, shared_with=host)

        base = app.service_time_s()
        deployment = Deployment(
            request_id=request_id,
            app=app,
            tenant=tenant,
            placement=placement,
            deployed_at=now,
            reconfig_time_s=0.0,   # the circuit is already configured
            service_time_s=base * sharers,
            comm_slowdown=float(sharers),
        )
        self._track_deployment(deployment)
        return deployment

    def _pick_host(self, app: CompiledApp) -> int | None:
        """The least-shared running deployment of the same application."""
        candidates = [
            d.request_id for d in self.deployments.values()
            if d.app.name == app.name
            and d.request_id not in self._shared_with
            and 1 + len(self._guests.get(d.request_id, ()))
            < self.max_sharers]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda rid: (len(self._guests.get(rid, ())), rid))


def verify_function_sharing(
        controller: FunctionSharingController) -> None:
    """Isolation under sharing: a block is shared only by deployments of
    the same application, and never beyond ``max_sharers``."""
    by_block: dict[tuple[int, int], list[Deployment]] = {}
    for deployment in controller.running():
        for address in deployment.placement.addresses:
            by_block.setdefault(address, []).append(deployment)
    for address, sharers in by_block.items():
        names = {d.app.name for d in sharers}
        if len(names) > 1:
            raise IsolationViolation(
                f"block {address} shared by different functions: "
                f"{sorted(names)}")
        if len(sharers) > controller.max_sharers:
            raise IsolationViolation(
                f"block {address} exceeds max_sharers: {len(sharers)}")
    for memory in controller.memories.values():
        memory.check_isolation()
