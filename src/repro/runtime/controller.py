"""The system controller (Section 3.4, Fig. 6).

Deployment path: the high-level system (hypervisor, or our simulator)
requests an application by name; the controller finds its images in the
bitstream database, asks the policy for physical blocks, relocates each
virtual-block image onto its assigned physical block (step 5 of the
compilation flow, at runtime), programs the blocks through partial
reconfiguration, and sets up the virtualized peripherals.  Release undoes
all of it.

The controller also owns the deployment-time performance model: an
application kept on one FPGA runs at its nominal service time; one that
spans boards pays a (usually negligible) serialization slowdown on its
cross-ring channels plus a pipeline-fill latency -- the quantities behind
the paper's "<0.03% latency overhead" observation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cluster.board import BoardHealth
from repro.cluster.cluster import FPGACluster
from repro.compiler.bitstream import CompiledApp
from repro.compiler.relocation import Relocator
from repro.interconnect.links import LINKS, LinkClass
from repro.obs.stats import fragmentation_index
from repro.obs.tracer import Tracer
from repro.peripherals.bandwidth import BandwidthArbiter
from repro.peripherals.dram import VirtualMemory
from repro.runtime.audit import AuditEvent, AuditLog
from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.guard import DegradedModeGuard
from repro.runtime.policy import AllocationPolicy, CommunicationAwarePolicy
from repro.runtime.resource_db import ResourceDB
from repro.runtime.types import Deployment, Placement, StateCheckpoint

__all__ = ["SystemController"]

#: Cycles of compute between consecutive inter-block beats: DNN
#: accelerators are compute-bound, touching their neighbors every few
#: hundred cycles, which is why crossing the ring rarely slows them down.
COMPUTE_CYCLES_PER_BEAT = 128.0
#: DRAM a deployed application maps per virtual block (weight shards).
DRAM_BYTES_PER_BLOCK = 2 << 30
#: Streaming DRAM bandwidth a resident virtual block demands (activation
#: traffic; weights live in BRAM).  15 fully loaded blocks approach the
#: two-DIMM bandwidth of a board, so packed boards contend mildly.
DRAM_DEMAND_GBPS_PER_BLOCK = 18.0
#: Streaming bandwidth of the checkpoint/restore DMA path (shell DMA
#: over PCIe into host staging memory, then back out): the rate at
#: which a migrating deployment's DRAM segments move off the source
#: boards and onto the destination.
MIGRATION_DMA_BYTES_PER_S = 12e9


@dataclass(slots=True)
class _ServiceModel:
    service_time_s: float
    comm_slowdown: float
    latency_overhead_s: float


class SystemController:
    """Runtime manager of one FPGA cluster."""

    name = "vital"
    _instance_counter = itertools.count()

    def __init__(self, cluster: FPGACluster,
                 policy: AllocationPolicy | None = None,
                 model_dram_contention: bool = False,
                 tracer: Tracer | None = None) -> None:
        self.cluster = cluster
        self.policy = policy or CommunicationAwarePolicy()
        #: structured decision tracing; ``None`` (the default) keeps the
        #: hot path at a single falsy check per instrumentation site
        self.tracer: Tracer | None = None
        if tracer is not None:
            self.attach_tracer(tracer)
        #: live fragmentation gauge (``attach_metrics``); ``None`` keeps
        #: allocate/release at a single None-check
        self._frag_gauge = None
        self.resource_db = ResourceDB(cluster)
        # heterogeneous subclasses replace this with per-footprint
        # databases; any one group's footprint seeds the default DB
        self.bitstream_db = BitstreamDB(
            next(iter(cluster.footprints())))
        self.relocator = Relocator()
        #: relocation compatibility memo: (image id, block address)
        #: pairs already validated, storing the image itself so a
        #: recycled ``id()`` can never alias a fresh image (the block
        #: at a fixed address never changes -- cluster topology is
        #: static).  Relocation checks are pure in (image, block) --
        #: same footprint/capacity comparison every time -- so
        #: re-validating a pair the controller has already bound is
        #: pure overhead.
        self._reloc_checked: dict = {}
        self.memories = {
            board.board_id: VirtualMemory(board.dram_capacity_bytes)
            for board in cluster.boards}
        self.model_dram_contention = model_dram_contention
        self.dram_arbiters = {
            board.board_id: BandwidthArbiter(
                sum(d.bandwidth_gbps for d in board.dimms))
            for board in cluster.boards}
        # each board has one configuration port (ICAP); simultaneous
        # deployments targeting the same board queue behind it
        self._config_port_free_at = {
            board.board_id: 0.0 for board in cluster.boards}
        self._instance_id = next(SystemController._instance_counter)
        #: fail-stop health of every board (this controller's view)
        self.board_health = {
            board.board_id: BoardHealth.HEALTHY
            for board in cluster.boards}
        #: board id -> ICAP programming attempts armed to fail
        self._armed_reconfig_faults: dict[int, int] = {}
        #: board id -> gray ICAP latency multiplier (absent == nominal)
        self._icap_multiplier: dict[int, float] = {}
        #: transient reconfig faults: bounded retries w/ exp. backoff
        self.reconfig_max_retries = 5
        self.reconfig_backoff_base_s = 0.001
        #: optional degraded-mode guard (``attach_guard``); ``None``
        #: keeps every hot path at a single falsy check
        self.guard = None
        self.audit = AuditLog()
        #: tenant name -> maximum physical blocks it may hold at once
        self.quotas: dict[str, int] = {}
        #: request id -> DRAM segments held (a tenant may run several
        #: deployments; releases must free exactly this deployment's)
        self._segments_of: dict[int, list] = {}
        self.deployments: dict[int, Deployment] = {}
        #: tenant -> physical blocks currently held; kept in lockstep
        #: with ``deployments`` so quota admission is O(1) instead of a
        #: scan over every live deployment
        self._tenant_blocks: dict[str, int] = {}
        #: live migrations executed over this controller's lifetime
        #: (defrag consolidation, operator moves); snapshot/restore
        #: carries both so warm restarts keep the accounting
        self.migrations_performed = 0
        self.migration_pause_s = 0.0

    # ------------------------------------------------------------------
    # public API (what the hypervisor calls)
    # ------------------------------------------------------------------
    def register(self, app: CompiledApp) -> None:
        """Add a compiled application to the bitstream database."""
        self.bitstream_db.register(app)

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Wire ``tracer`` into this controller and its policy."""
        self.tracer = tracer
        if hasattr(self.policy, "tracer"):
            self.policy.tracer = tracer

    def attach_guard(self, guard) -> None:
        """Wire a :class:`repro.runtime.guard.DegradedModeGuard` into
        this controller: the guard's circuit breakers narrow the
        allocatable board set, and its retry budget replaces the fixed
        reconfig backoff schedule."""
        self.guard = guard
        if guard is not None:
            guard.bind(self)

    def attach_metrics(self, registry) -> None:
        """Expose live controller state through ``registry``.

        Today that is one gauge: ``fragmentation_index`` (how split the
        free space is across healthy boards), updated on every
        allocate/release/fail/repair rather than recomputed post hoc
        from the audit log.
        """
        self._frag_gauge = registry.gauge(
            "fragmentation_index",
            "1 - largest single-board free pool / total free blocks",
            manager=self.name)
        self._refresh_fragmentation()

    def _refresh_fragmentation(self) -> None:
        if self._frag_gauge is not None:
            self._frag_gauge.set(fragmentation_index(
                self.resource_db.free_counts_by_board()))

    def try_deploy(self, app: CompiledApp, request_id: int, now: float,
                   tenant: str | None = None) -> Deployment | None:
        """Deploy if resources allow; ``None`` means "wait and retry"."""
        self._register_if_needed(app)
        app_name = app.name
        tenant = tenant or f"tenant-{request_id}"

        tracer = self.tracer
        if self.guard is not None:
            self.guard.advance(now)
        if not self._within_quota(tenant, app.num_blocks):
            self.audit.record(now, AuditEvent.REJECT, request_id,
                              tenant, app=app_name,
                              reason="quota-exceeded")
            if tracer:
                tracer.event(
                    "ctrl.reject", t=now, request=request_id,
                    tenant=tenant, app=app_name,
                    reason="quota-exceeded",
                    held=self.blocks_held_by(tenant),
                    quota=self.quotas.get(tenant),
                    needed=app.num_blocks)
            return None

        policy = self.policy
        if (not tracer and type(policy) is CommunicationAwarePolicy
                and policy.prune and policy.kernel == "array"
                and not policy.tracer
                and type(self.resource_db) is ResourceDB):
            # untraced hot path: the policy searches the resource DB's
            # flat arrays directly instead of a per-board candidate map
            # built fresh on every attempt.  Gated to the exact default
            # types so oracle policies/databases keep their semantics,
            # and to untraced runs so golden traces stay byte-identical.
            placement = policy.allocate_fast(
                app, self.resource_db, self.cluster.network,
                self._fast_excluded(app))
            if placement is None:
                self.audit.record(now, AuditEvent.REJECT, request_id,
                                  tenant, app=app_name,
                                  reason="no-free-blocks")
                return None
            return self._finalize_deploy(app, request_id, now, tenant,
                                         placement)

        candidates = self._allocatable_blocks(app)
        placement = self.policy.allocate(
            app, candidates, self.cluster.network)
        if placement is None:
            self.audit.record(now, AuditEvent.REJECT, request_id,
                              tenant, app=app_name,
                              reason="no-free-blocks")
            if tracer:
                # scalar candidate summary, and the policy's failed
                # search folded in as one tuple: rejects dominate a
                # saturated loop (the queue head retries on every
                # event), so this stays one cheap entry per decision
                tracer.event(
                    "ctrl.reject", t=now, request=request_id,
                    tenant=tenant, app=app_name,
                    reason="no-free-blocks", needed=app.num_blocks,
                    candidate_boards=len(candidates),
                    free_blocks=(self.resource_db.total_blocks
                                 - self.resource_db.allocated_count()
                                 - self.resource_db.failed_count()),
                    search=getattr(self.policy, "last_search", None))
            return None
        return self._finalize_deploy(app, request_id, now, tenant,
                                     placement, candidates=candidates)

    def _register_if_needed(self, app: CompiledApp) -> None:
        if app.name not in self.bitstream_db:
            self.bitstream_db.register(app)

    # ------------------------------------------------------------------
    # warm restart
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """State needed to rebuild this controller after a restart.

        The FPGAs keep running through a controller restart (the fabric
        doesn't know the software died); the snapshot records which
        request holds which blocks so a new controller can resume
        managing them.  Compiled artifacts come from the (persisted)
        bitstream database, not the snapshot.
        """
        return {
            "quotas": dict(self.quotas),
            # admission control is part of the controller's contract: a
            # restarted controller must keep modeling DRAM contention if
            # the original did, or it will admit deployments without the
            # slowdown it was configured to charge
            "model_dram_contention": self.model_dram_contention,
            # a controller restarted mid-reconfiguration must not let
            # new deployments bypass the busy ICAP queue: carry each
            # board's config-port horizon across the restart
            "config_port_free_at": {
                str(board): t
                for board, t in self._config_port_free_at.items()},
            # gray-ICAP multipliers and armed transient faults are live
            # degradation the restarted controller must keep charging --
            # omitting them made a restart silently "heal" gray boards
            "icap_multipliers": {
                str(board): m
                for board, m in sorted(self._icap_multiplier.items())},
            "armed_reconfig_faults": {
                str(board): n
                for board, n in sorted(
                    self._armed_reconfig_faults.items())},
            # the degraded-mode guard's breaker state: without it a
            # warm restart re-admitted quarantined boards immediately
            "guard": self.guard.snapshot()
            if self.guard is not None else None,
            "failed_boards": sorted(
                b for b, h in self.board_health.items()
                if h is BoardHealth.FAILED),
            # migration accounting: a warm restart must not zero the
            # defragmenter's counters or a deployment's move history
            "migrations_performed": self.migrations_performed,
            "migration_pause_s": self.migration_pause_s,
            "deployments": [
                {
                    "request_id": d.request_id,
                    "app": d.app.name,
                    "tenant": d.tenant,
                    "mapping": {str(vb): list(addr) for vb, addr
                                in d.placement.mapping.items()},
                    "deployed_at": d.deployed_at,
                    "reconfig_time_s": d.reconfig_time_s,
                    "service_time_s": d.service_time_s,
                    "migrations": d.migrations,
                    "migration_pause_s": d.migration_pause_s,
                }
                for d in self.deployments.values()
            ],
        }

    @classmethod
    def restore(cls, cluster: FPGACluster, snapshot: dict,
                bitstream_db, policy: AllocationPolicy | None = None,
                ) -> "SystemController":
        """Rebuild a controller over hardware that kept running.

        Re-allocates every snapshotted deployment's blocks, re-maps its
        DRAM and demand, and re-registers its ring flows -- then
        re-verifies that nothing overlaps (a corrupt snapshot fails
        loudly instead of silently double-booking silicon).
        """
        controller = cls(cluster, policy=policy)
        controller.quotas = dict(snapshot.get("quotas", {}))
        controller.model_dram_contention = bool(
            snapshot.get("model_dram_contention", False))
        for board, t in snapshot.get("config_port_free_at",
                                     {}).items():
            controller._config_port_free_at[int(board)] = t
        for board, mult in snapshot.get("icap_multipliers",
                                        {}).items():
            controller._icap_multiplier[int(board)] = float(mult)
        for board, n in snapshot.get("armed_reconfig_faults",
                                     {}).items():
            controller._armed_reconfig_faults[int(board)] = int(n)
        guard_state = snapshot.get("guard")
        if guard_state is not None:
            controller.attach_guard(
                DegradedModeGuard.restore(guard_state))
        for entry in snapshot["deployments"]:
            app = bitstream_db.lookup(entry["app"])
            placement = Placement(mapping={
                int(vb): tuple(addr)
                for vb, addr in entry["mapping"].items()})
            placement.validate(app.num_blocks)
            controller.resource_db.allocate(entry["request_id"],
                                            placement.addresses)
            segments = controller._map_memory(entry["tenant"],
                                              placement)
            controller._segments_of[entry["request_id"]] = segments
            controller._attach_dram_demand(entry["tenant"], placement)
            if placement.spans_boards:
                cluster.network.register_flow(
                    controller._flow_key(entry["request_id"]),
                    placement.boards)
            controller._track_deployment(Deployment(
                request_id=entry["request_id"],
                app=app,
                tenant=entry["tenant"],
                placement=placement,
                deployed_at=entry["deployed_at"],
                reconfig_time_s=entry["reconfig_time_s"],
                service_time_s=entry["service_time_s"],
                migrations=int(entry.get("migrations", 0)),
                migration_pause_s=float(
                    entry.get("migration_pause_s", 0.0)),
            ))
        controller.migrations_performed = int(
            snapshot.get("migrations_performed", 0))
        controller.migration_pause_s = float(
            snapshot.get("migration_pause_s", 0.0))
        # failed boards last: a valid snapshot has no deployments on
        # them, and set_board_failed fails loudly if one does
        for board_id in snapshot.get("failed_boards", []):
            controller.board_health[board_id] = BoardHealth.FAILED
            controller.resource_db.set_board_failed(board_id)
        return controller

    def set_quota(self, tenant: str, max_blocks: int) -> None:
        """Cap the physical blocks ``tenant`` may hold concurrently.

        A quota of zero locks the tenant out entirely; removing a quota
        (``remove_quota``) restores unlimited admission.  Quotas only
        gate *new* deployments -- running ones are never evicted.
        """
        if max_blocks < 0:
            raise ValueError("quota cannot be negative")
        self.quotas[tenant] = max_blocks

    def remove_quota(self, tenant: str) -> None:
        self.quotas.pop(tenant, None)

    def blocks_held_by(self, tenant: str) -> int:
        return self._tenant_blocks.get(tenant, 0)

    def _track_deployment(self, deployment: Deployment) -> None:
        """Admit one deployment into the live set (+ tenant counter)."""
        self.deployments[deployment.request_id] = deployment
        self._tenant_blocks[deployment.tenant] = \
            self._tenant_blocks.get(deployment.tenant, 0) \
            + deployment.num_blocks

    def _untrack_deployment(self, deployment: Deployment) -> None:
        """Remove one deployment from the live set (+ tenant counter)."""
        del self.deployments[deployment.request_id]
        held = self._tenant_blocks.get(deployment.tenant, 0) \
            - deployment.num_blocks
        if held > 0:
            self._tenant_blocks[deployment.tenant] = held
        else:
            self._tenant_blocks.pop(deployment.tenant, None)

    def _within_quota(self, tenant: str, new_blocks: int) -> bool:
        quota = self.quotas.get(tenant)
        if quota is None:
            return True
        return self.blocks_held_by(tenant) + new_blocks <= quota

    def _flow_key(self, request_id: int) -> tuple[int, int]:
        """Ring flows are keyed per controller instance: several
        controllers (tests, manager comparisons) may share one cluster,
        and their request-id spaces overlap.  A monotonic instance id is
        used rather than ``id(self)``, which CPython reuses after GC."""
        return (self._instance_id, request_id)

    def _fast_excluded(self, app: CompiledApp) -> tuple:
        """Boards the array fast path must mask out of the free-count
        vector.  Failed boards already read zero free blocks there, so
        only guard quarantines need explicit masking; the heterogeneous
        subclass adds boards outside the app's footprint group."""
        if self.guard is not None:
            return tuple(self.guard.excluded_boards())
        return ()

    def _allocatable_blocks(self, app: CompiledApp,
                            ) -> dict[int, list[int]]:
        """Free blocks the policy may use for ``app``; subclasses narrow
        this (e.g. to footprint-compatible boards).  Failed boards are
        dropped from the candidate set entirely (their blocks are
        already excluded as non-free; dropping the key keeps the
        policy's round enumeration away from them)."""
        return self._filter_unavailable(
            self.resource_db.free_by_board())

    def _filter_unavailable(self, free: dict[int, list[int]],
                            ) -> dict[int, list[int]]:
        """Drop failed and guard-quarantined boards from a candidate
        map (shared by the homogeneous and heterogeneous paths)."""
        if any(h is BoardHealth.FAILED
               for h in self.board_health.values()):
            free = {b: blocks for b, blocks in free.items()
                    if self.board_health[b] is BoardHealth.HEALTHY}
        if self.guard is not None:
            quarantined = self.guard.excluded_boards()
            if quarantined:
                free = {b: blocks for b, blocks in free.items()
                        if b not in quarantined}
        return free

    def _finalize_deploy(self, app: CompiledApp, request_id: int,
                         now: float, tenant: str,
                         placement: Placement,
                         candidates: dict[int, list[int]] | None = None,
                         ) -> Deployment | None:
        # runtime relocation: bind every image to its physical block
        # (validation memoized per (image, block) -- see __init__)
        checked = self._reloc_checked
        images = app.images
        block_at = self.cluster.block_at
        for vb, address in placement.mapping.items():
            image = images[vb]
            key = (id(image), address)
            if checked.get(key) is not image:
                self.relocator.relocate(image, block_at(address))
                if len(checked) >= 1 << 16:
                    checked.clear()
                checked[key] = image

        self.resource_db.allocate(request_id, placement.addresses)
        try:
            segments = self._map_memory(tenant, placement)
        except MemoryError:
            # roll back so a transient DRAM shortage cannot leak blocks;
            # the request simply waits like any other resource shortage
            self.resource_db.release(request_id)
            self.audit.record(now, AuditEvent.REJECT, request_id,
                              tenant, app=app.name,
                              reason="dram-exhausted")
            if self.tracer:
                self.tracer.event(
                    "ctrl.reject", t=now, request=request_id,
                    tenant=tenant, app=app.name,
                    reason="dram-exhausted",
                    boards=placement.boards)
            return None
        self._segments_of[request_id] = segments

        reconfig = self._reconfig_time(app, placement, now,
                                       request_id=request_id,
                                       tenant=tenant)
        self._attach_dram_demand(tenant, placement)
        # model first (contention_factor counts the prospective flow),
        # then register the flow so later arrivals see it
        model = self._service_model(app, placement)
        if placement.spans_boards:
            self.cluster.network.register_flow(
                self._flow_key(request_id), placement.boards)
        deployment = Deployment(
            request_id=request_id,
            app=app,
            tenant=tenant,
            placement=placement,
            deployed_at=now,
            reconfig_time_s=reconfig,
            service_time_s=model.service_time_s,
            comm_slowdown=model.comm_slowdown,
            latency_overhead_s=model.latency_overhead_s,
        )
        self._track_deployment(deployment)
        self._refresh_fragmentation()
        boards = placement.boards
        blocks = len(placement.mapping)
        spans = len(boards) > 1
        app_name = app.name
        self.audit.record(
            now, AuditEvent.DEPLOY, request_id, tenant,
            app=app_name, boards=boards, blocks=blocks, spans=spans,
            reconfig_s=round(reconfig, 6))
        if self.tracer:
            by_board: dict[int, int] = {}
            for board, _ in placement.mapping.values():
                by_board[board] = by_board.get(board, 0) + 1
            self.tracer.event(
                "ctrl.deploy", t=now, request=request_id,
                tenant=tenant, app=app_name, reason="placed",
                boards=boards, blocks=blocks, spans=spans,
                # one pass over this placement's own addresses: the
                # timeline aggregator needs per-board counts to keep
                # occupancy incremental, and the cost is O(app blocks),
                # not O(cluster boards)
                blocks_by_board=sorted(by_board.items()),
                reconfig_s=reconfig,
                comm_slowdown=model.comm_slowdown,
                # the candidate set is the boards considered; per-board
                # free counts would cost O(boards) per deployment
                candidates=list(candidates)
                if candidates is not None else None)
        return deployment

    def release(self, deployment: Deployment, now: float = 0.0) -> None:
        """Tear one deployment down and free its resources.

        The RELEASE audit entry is recorded only after teardown
        completes (mirroring ``_finalize_deploy``): an exception
        mid-teardown must not leave the log claiming the request is gone
        while its blocks stay allocated.
        """
        if deployment.request_id not in self.deployments:
            raise RuntimeError(
                f"request {deployment.request_id} is not deployed")
        self._teardown(deployment)
        app_name = deployment.app.name
        self.audit.record(now, AuditEvent.RELEASE,
                          deployment.request_id, deployment.tenant,
                          app=app_name)
        if self.tracer:
            self.tracer.event(
                "ctrl.release", t=now,
                request=deployment.request_id,
                tenant=deployment.tenant, app=app_name,
                reason="completed")

    def _teardown(self, deployment: Deployment) -> None:
        """Free everything one deployment holds, exactly once."""
        self.resource_db.release(deployment.request_id)
        self.cluster.network.release_flow(
            self._flow_key(deployment.request_id))
        self._release_memory(deployment.request_id)
        self._detach_dram_demand(deployment.tenant,
                                 deployment.placement)
        self._untrack_deployment(deployment)
        self._refresh_fragmentation()

    # ------------------------------------------------------------------
    # failure handling (fault model)
    # ------------------------------------------------------------------
    def fail_board(self, board_id: int,
                   now: float = 0.0) -> list[Deployment]:
        """Fail-stop one board: evict its deployments, take its blocks
        out of service, wipe its DRAM and ICAP queue.

        Every deployment with at least one block on the board is evicted
        (its blocks on *healthy* boards are freed too -- a spanning
        application cannot run on half its fabric).  Returns the evicted
        deployments, oldest first, so a recovery policy can re-place
        them; a second ``fail_board`` on an already-failed board is a
        no-op returning ``[]``.
        """
        if board_id not in self.board_health:
            raise KeyError(f"no board {board_id} in this cluster")
        if self.board_health[board_id] is BoardHealth.FAILED:
            return []
        victims = sorted(
            (d for d in self.deployments.values()
             if board_id in d.placement.boards),
            key=lambda d: d.deployed_at)
        self.audit.record(now, AuditEvent.FAIL, -1, "-",
                          board=board_id, victims=len(victims))
        if self.tracer:
            self.tracer.event("ctrl.board_fail", t=now, board=board_id,
                              victims=[d.request_id for d in victims])
        for deployment in victims:
            self._teardown(deployment)
            self.audit.record(now, AuditEvent.EVICT,
                              deployment.request_id, deployment.tenant,
                              app=deployment.app.name,
                              reason=f"board-{board_id}-failed")
            if self.tracer:
                self.tracer.event(
                    "ctrl.evict", t=now,
                    request=deployment.request_id,
                    tenant=deployment.tenant,
                    app=deployment.app.name,
                    reason=f"board-{board_id}-failed")
        self.board_health[board_id] = BoardHealth.FAILED
        self.resource_db.set_board_failed(board_id)
        self._refresh_fragmentation()
        # the crash loses DRAM contents and any queued ICAP work
        board = self.cluster.board(board_id)
        self.memories[board_id] = VirtualMemory(
            board.dram_capacity_bytes)
        self.dram_arbiters[board_id] = BandwidthArbiter(
            sum(d.bandwidth_gbps for d in board.dimms))
        self._config_port_free_at[board_id] = 0.0
        self._armed_reconfig_faults.pop(board_id, None)
        if self.guard is not None:
            self.guard.record_board_failure(board_id, now)
        return victims

    def repair_board(self, board_id: int, now: float = 0.0) -> None:
        """Return a failed board to service (empty: the crash wiped it)."""
        if board_id not in self.board_health:
            raise KeyError(f"no board {board_id} in this cluster")
        if self.board_health[board_id] is BoardHealth.HEALTHY:
            return
        self.resource_db.set_board_repaired(board_id)
        self.board_health[board_id] = BoardHealth.HEALTHY
        self._refresh_fragmentation()
        self.audit.record(now, AuditEvent.REPAIR, -1, "-",
                          board=board_id)
        if self.tracer:
            self.tracer.event("ctrl.board_repair", t=now,
                              board=board_id)

    def healthy_boards(self) -> list[int]:
        return [b for b, h in self.board_health.items()
                if h is BoardHealth.HEALTHY]

    def failed_boards(self) -> list[int]:
        return [b for b, h in self.board_health.items()
                if h is BoardHealth.FAILED]

    def redeploy_evicted(self, deployment: Deployment,
                         now: float) -> Deployment | None:
        """Re-place an evicted deployment on the healthy boards.

        This is the recovery path the homogeneous abstraction makes
        cheap: the same compiled images relocate onto whatever blocks
        remain (the runtime-relocation machinery live migration uses),
        no recompilation.  Returns the replacement deployment, or
        ``None`` when the surviving capacity cannot hold it -- the
        caller falls back to re-queueing.
        """
        replacement = self.try_deploy(deployment.app,
                                      deployment.request_id, now,
                                      tenant=deployment.tenant)
        if replacement is not None:
            self.audit.record(now, AuditEvent.RECOVER,
                              deployment.request_id,
                              deployment.tenant,
                              app=deployment.app.name,
                              boards=replacement.placement.boards)
            if self.tracer:
                self.tracer.event(
                    "ctrl.recover", t=now,
                    request=deployment.request_id,
                    tenant=deployment.tenant,
                    app=deployment.app.name, reason="migrated",
                    boards=replacement.placement.boards)
        return replacement

    # ------------------------------------------------------------------
    # live migration (checkpoint / transplant / resume)
    # ------------------------------------------------------------------
    def checkpoint(self, request_id: int) -> StateCheckpoint:
        """Cost model of capturing one live deployment's state.

        Two components, per the PR 1 snapshot model: the mapped DRAM
        segments (copied out over the shell DMA path) and the
        latency-insensitive interface's FIFO horizon (every channel
        must drain at the application clock before the source blocks
        may be reprogrammed, and refill on the destination).  Restore
        is symmetric: write-back plus pipeline refill.
        """
        deployment = self.deployments.get(request_id)
        if deployment is None:
            raise KeyError(f"request {request_id} is not deployed")
        dram_bytes = sum(
            segment.length
            for _, segment in self._segments_of.get(request_id, ()))
        app = deployment.app
        fifo_beats = sum(ch.fifo_depth + ch.init_tokens
                         for ch in app.interface.channels)
        fmax_hz = app.fmax_mhz * 1e6
        drain_s = fifo_beats / fmax_hz if fmax_hz > 0 else 0.0
        copy_s = dram_bytes / MIGRATION_DMA_BYTES_PER_S
        return StateCheckpoint(
            request_id=request_id,
            dram_bytes=dram_bytes,
            fifo_beats=fifo_beats,
            capture_s=drain_s + copy_s,
            restore_s=copy_s + drain_s,
        )

    def migrate(self, request_id: int,
                to_boards: "list[int] | None" = None,
                now: float = 0.0,
                reason: str = "operator-move") -> float | None:
        """Live-migrate one deployment to freshly allocated blocks.

        The relocation primitive makes this a first-class runtime
        operation: checkpoint the app's state (:meth:`checkpoint`),
        rebind its images onto new physical blocks, reprogram them
        through the ICAP (paying the same port-queue / gray-multiplier
        model as a deploy), move the DRAM segments and demand, re-key
        the ring flows, and resume.  Candidate boards go through
        :meth:`_allocatable_blocks` -- failed, quarantined, and
        (for heterogeneous clusters) out-of-footprint boards are never
        migration targets -- optionally narrowed to ``to_boards``.

        Returns the pause charged to the request (capture + rewrite +
        reconfiguration + restore seconds), or ``None`` when no
        admissible placement exists or destination DRAM is exhausted;
        on ``None`` the deployment keeps running where it was, fully
        intact.  The defragmenter and the faults layer's proactive
        migrate-on-failure path both call this.
        """
        deployment = self.deployments.get(request_id)
        if deployment is None:
            raise KeyError(f"request {request_id} is not deployed")
        if self.guard is not None:
            self.guard.advance(now)
        candidates = self._allocatable_blocks(deployment.app)
        if to_boards is not None:
            allowed = set(to_boards)
            candidates = {b: blocks
                          for b, blocks in candidates.items()
                          if b in allowed}
        # the internal search must not clobber the policy's failed-
        # search telemetry: a later ctrl.reject reports last_search,
        # and a migration probe is not that request's search
        policy = self.policy
        had_search = hasattr(policy, "last_search")
        saved_search = policy.last_search if had_search else None
        placement = policy.allocate(deployment.app, candidates,
                                    self.cluster.network)
        if had_search:
            policy.last_search = saved_search
        if placement is None:
            return None
        state = self.checkpoint(request_id)
        # runtime relocation: rebind every image to its new block
        rewrite_s = 0.0
        for vb, address in placement.mapping.items():
            bound = self.relocator.relocate(
                deployment.app.images[vb],
                self.cluster.block_at(address))
            rewrite_s += bound.rewrite_time_s
        old_placement = deployment.placement
        # move the DRAM state: free the source segments first so a
        # same-board consolidation can reuse their space, then map the
        # destination; on exhaustion re-map the source (its space was
        # just freed, so re-allocation cannot fail) and abort the move
        old_segments = self._segments_of.pop(request_id, [])
        for board, segment in old_segments:
            self.memories[board].release_segment(segment)
        try:
            new_segments = self._map_memory(deployment.tenant,
                                            placement)
        except MemoryError:
            self._segments_of[request_id] = [
                (board, self.memories[board].allocate(
                    deployment.tenant, segment.length))
                for board, segment in old_segments]
            return None
        self._segments_of[request_id] = new_segments
        # blocks, bandwidth demand, and ring flows follow the move
        self.resource_db.release(request_id)
        self.resource_db.allocate(request_id, placement.addresses)
        self._detach_dram_demand(deployment.tenant, old_placement)
        self._attach_dram_demand(deployment.tenant, placement)
        self.cluster.network.release_flow(self._flow_key(request_id))
        deployment.placement = placement
        if placement.spans_boards:
            self.cluster.network.register_flow(
                self._flow_key(request_id), placement.boards)
        reconfig = self._reconfig_time(deployment.app, placement, now,
                                       request_id=request_id,
                                       tenant=deployment.tenant)
        pause = state.pause_s + rewrite_s + reconfig
        deployment.migrations += 1
        deployment.migration_pause_s += pause
        self.migrations_performed += 1
        self.migration_pause_s += pause
        self._refresh_fragmentation()
        from_boards = old_placement.boards
        self.audit.record(now, AuditEvent.MIGRATE, request_id,
                          deployment.tenant,
                          app=deployment.app.name, reason=reason,
                          from_boards=from_boards,
                          to_boards=placement.boards,
                          pause_s=round(pause, 6))
        if self.tracer:
            by_board: dict[int, int] = {}
            for board, _ in placement.mapping.values():
                by_board[board] = by_board.get(board, 0) + 1
            self.tracer.event(
                "ctrl.migrate", t=now, request=request_id,
                tenant=deployment.tenant, app=deployment.app.name,
                reason=reason, from_boards=from_boards,
                boards=placement.boards,
                to_boards=placement.boards,
                blocks=len(placement.mapping),
                blocks_by_board=sorted(by_board.items()),
                spans=placement.spans_boards,
                dram_bytes=state.dram_bytes,
                fifo_beats=state.fifo_beats,
                pause_s=pause)
        return pause

    def inject_reconfig_fault(self, board_id: int,
                              attempts: int = 1) -> None:
        """Arm the next ``attempts`` ICAP programming attempts on
        ``board_id`` to fail transiently (and be retried)."""
        if board_id not in self.board_health:
            raise KeyError(f"no board {board_id} in this cluster")
        if attempts < 1:
            raise ValueError("need >= 1 attempt")
        self._armed_reconfig_faults[board_id] = \
            self._armed_reconfig_faults.get(board_id, 0) + attempts

    def degrade_icap(self, board_id: int,
                     latency_multiplier: float) -> None:
        """Gray failure: every ICAP programming attempt on ``board_id``
        takes ``latency_multiplier`` times longer until
        :meth:`restore_icap`."""
        if board_id not in self.board_health:
            raise KeyError(f"no board {board_id} in this cluster")
        if latency_multiplier < 1.0:
            raise ValueError(
                f"ICAP latency multiplier must be >= 1, "
                f"got {latency_multiplier}")
        if latency_multiplier == 1.0:
            self._icap_multiplier.pop(board_id, None)
        else:
            self._icap_multiplier[board_id] = latency_multiplier

    def restore_icap(self, board_id: int) -> None:
        if board_id not in self.board_health:
            raise KeyError(f"no board {board_id} in this cluster")
        self._icap_multiplier.pop(board_id, None)

    def degraded_icaps(self) -> dict[int, float]:
        return dict(self._icap_multiplier)

    # ------------------------------------------------------------------
    # status APIs
    # ------------------------------------------------------------------
    def busy_blocks(self) -> int:
        return self.resource_db.allocated_count()

    def capacity_blocks(self) -> int:
        return self.resource_db.total_blocks

    def running(self) -> list[Deployment]:
        return list(self.deployments.values())

    def utilization(self) -> float:
        return self.resource_db.utilization()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _map_memory(self, tenant: str, placement: Placement) -> list:
        """Allocate this deployment's DRAM segments atomically.

        On failure, segments already granted are rolled back before the
        MemoryError propagates, so a half-mapped deployment never leaks.
        Returns the granted segments (with their boards) for the
        deployment-scoped release path.
        """
        granted: list[tuple[int, object]] = []
        try:
            for board in placement.boards:
                blocks_here = len(placement.blocks_on(board))
                segment = self.memories[board].allocate(
                    tenant, blocks_here * DRAM_BYTES_PER_BLOCK)
                granted.append((board, segment))
        except MemoryError:
            for board, segment in granted:
                self.memories[board].release_segment(segment)
            raise
        return granted

    def _release_memory(self, request_id: int) -> None:
        for board, segment in self._segments_of.pop(request_id, ()):
            self.memories[board].release_segment(segment)

    def _attach_dram_demand(self, tenant: str,
                            placement: Placement) -> None:
        for board in placement.boards:
            blocks_here = len(placement.blocks_on(board))
            self.dram_arbiters[board].add_demand(
                tenant, blocks_here * DRAM_DEMAND_GBPS_PER_BLOCK)

    def _detach_dram_demand(self, tenant: str,
                            placement: Placement) -> None:
        for board in placement.boards:
            blocks_here = len(placement.blocks_on(board))
            self.dram_arbiters[board].remove_demand(
                tenant, blocks_here * DRAM_DEMAND_GBPS_PER_BLOCK)

    def _reconfig_time(self, app: CompiledApp, placement: Placement,
                       now: float = 0.0, request_id: int = -1,
                       tenant: str = "-") -> float:
        """Time until all of the placement's blocks are programmed.

        Boards program in parallel, blocks on one board sequentially
        through the board's single configuration port -- behind any
        reconfiguration that port is already busy with.  A board armed
        with transient ICAP faults fails that many attempts first: each
        failed attempt occupies the port for the full programming time
        (the CRC check that catches it runs at the end) plus an
        exponentially growing backoff, bounded by
        ``reconfig_max_retries``, and is audited as a RETRY.
        """
        reconfigurer = self.cluster.reconfigurer
        guard = self.guard
        finish = now
        for board in placement.boards:
            duration = reconfigurer.partial_time_for_blocks(
                app.images[0].size_mb, len(placement.blocks_on(board)))
            # a gray ICAP programs correctly, just slower -- every
            # attempt (including failed ones below) pays the multiplier
            multiplier = self._icap_multiplier.get(board)
            if multiplier is not None:
                duration *= multiplier
            armed = self._armed_reconfig_faults.get(board, 0)
            if armed:
                max_retries = (guard.max_reconfig_retries
                               if guard is not None
                               else self.reconfig_max_retries)
                retries = min(armed, max_retries)
                if armed - retries:
                    self._armed_reconfig_faults[board] = armed - retries
                else:
                    del self._armed_reconfig_faults[board]
                per_attempt = duration
                for attempt in range(retries):
                    if guard is not None:
                        backoff = guard.retry_backoff(attempt)
                    else:
                        backoff = self.reconfig_backoff_base_s \
                            * (2 ** attempt)
                    duration += per_attempt + backoff
                    self.audit.record(
                        now, AuditEvent.RETRY, request_id, tenant,
                        board=board, attempt=attempt + 1,
                        backoff_s=round(backoff, 6))
                    if self.tracer:
                        self.tracer.event(
                            "ctrl.reconfig_retry", t=now,
                            request=request_id, board=board,
                            reason="transient-icap-fault",
                            attempt=attempt + 1, backoff_s=backoff)
                if guard is not None:
                    guard.record_reconfig_faults(board, retries, now)
            start = max(now, self._config_port_free_at[board])
            self._config_port_free_at[board] = start + duration
            finish = max(finish, start + duration)
        return finish - now

    def _service_model(self, app: CompiledApp,
                       placement: Placement) -> _ServiceModel:
        base = app.service_time_s()
        mem_slowdown = self._dram_slowdown(placement)
        if not placement.spans_boards:
            service = base * mem_slowdown
            return _ServiceModel(service_time_s=service,
                                 comm_slowdown=1.0,
                                 latency_overhead_s=service - base)
        ring = LINKS[LinkClass.INTER_FPGA]
        network = self.cluster.network
        # co-resident spanning flows contend for the busiest shared ring
        # segment; the flow for this deployment is already registered
        contention = max(1, network.contention_factor(placement.boards))
        effective_bits = ring.bits_per_cycle / contention
        worst_ser = 0.0
        max_hops = 0
        for (src, dst), bits in app.flows.items():
            board_a = placement.board_of(src)
            board_b = placement.board_of(dst)
            if board_a == board_b:
                continue
            worst_ser = max(worst_ser, bits / effective_bits)
            max_hops = max(max_hops, network.distance(board_a, board_b))
        slowdown = max(1.0, worst_ser / COMPUTE_CYCLES_PER_BEAT) \
            * mem_slowdown
        # pipeline fill/drain across the ring, once per job
        latency = 2 * max_hops * network.hop_latency_us * 1e-6
        return _ServiceModel(
            service_time_s=base * slowdown + latency,
            comm_slowdown=slowdown,
            latency_overhead_s=base * (slowdown - 1.0) + latency,
        )

    def _dram_slowdown(self, placement: Placement) -> float:
        """Memory-contention slowdown at admission (optional model)."""
        if not self.model_dram_contention:
            return 1.0
        worst = 1.0
        for board in placement.boards:
            arbiter = self.dram_arbiters[board]
            demand = arbiter.total_demand()
            if demand > arbiter.capacity_gbps:
                worst = max(worst, demand / arbiter.capacity_gbps)
        return worst
