"""Degraded-mode control plane: circuit breakers, retry budgets, and
SLO-driven load shedding.

The PR 1 recovery policies answer "where does an evicted deployment go";
they say nothing about *whether it should go anywhere at all*.  Under
correlated or gray failures, recovery alone thrashes: a flapping rack
takes evictions, migration re-places the victims onto the same rack,
the rack flaps again.  The guard layers three defenses on top:

- a **per-board circuit breaker**: after ``failure_threshold`` failures
  within ``failure_window_s`` the board is *quarantined* -- removed from
  the allocatable set even while nominally healthy -- for
  ``quarantine_s``, then re-admitted on *probation* for
  ``probation_s``; one more failure during probation re-quarantines it
  immediately (the classic closed/open/half-open breaker, per board);
- a **retry budget** for reconfiguration: exponential backoff with
  deterministic jitter (a seeded stream, so runs stay replayable)
  bounded by ``max_reconfig_retries``;
- **load shedding**: when capacity loss (failed + quarantined blocks)
  crosses ``capacity_loss_threshold``, or a bound SLO engine reports a
  sustained violation, queued low-priority requests beyond
  ``shed_queue_limit`` are shed instead of endlessly retried.

Every decision is emitted into the trace -- ``ctrl.quarantine``,
``ctrl.probation``, ``ctrl.shed`` -- with machine-readable reasons, so
the chaos harness and the diff gate can assert on them.  A controller
without a guard attached pays a single ``None``-check per hot path.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from enum import Enum

__all__ = ["BreakerState", "GuardConfig", "DegradedModeGuard"]


class BreakerState(Enum):
    """Per-board circuit-breaker state."""

    CLOSED = "closed"            # normal service
    QUARANTINED = "quarantined"  # excluded from allocation
    PROBATION = "probation"      # re-admitted; one strike re-opens


@dataclass(frozen=True, slots=True)
class GuardConfig:
    """Tuning knobs of the degraded-mode guard (all deterministic)."""

    #: failures within the window that trip a board's breaker
    failure_threshold: int = 2
    failure_window_s: float = 120.0
    #: how long a tripped board stays excluded from allocation
    quarantine_s: float = 180.0
    #: re-admission trial period; a failure here re-quarantines
    probation_s: float = 120.0
    #: retry budget for transient reconfig faults
    max_reconfig_retries: int = 5
    backoff_base_s: float = 0.001
    #: jitter fraction on each backoff (0 disables; draws are seeded)
    backoff_jitter: float = 0.25
    seed: int = 0
    #: shedding starts only when the queue outgrows this
    shed_queue_limit: int = 8
    #: fraction of total blocks lost (failed + quarantined) that
    #: triggers shedding
    capacity_loss_threshold: float = 0.25
    #: a bound SLO engine must report at least this many violated
    #: seconds (with a rule still failing) before shedding triggers
    slo_sustained_s: float = 30.0
    #: never quarantine below this many admittable boards
    min_healthy_boards: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if self.failure_window_s <= 0 or self.quarantine_s <= 0 \
                or self.probation_s <= 0:
            raise ValueError("breaker windows must be positive")
        if self.max_reconfig_retries < 0:
            raise ValueError("retry budget cannot be negative")
        if self.backoff_base_s <= 0:
            raise ValueError("backoff base must be positive")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("jitter fraction must be in [0, 1]")
        if self.shed_queue_limit < 0:
            raise ValueError("shed queue limit cannot be negative")
        if not 0.0 < self.capacity_loss_threshold <= 1.0:
            raise ValueError("capacity-loss threshold must be in (0, 1]")
        if self.slo_sustained_s < 0:
            raise ValueError("SLO sustain window cannot be negative")
        if self.min_healthy_boards < 1:
            raise ValueError("need at least one admittable board")


class DegradedModeGuard:
    """Attachable degraded-mode control plane for one controller.

    Wire-up: ``controller.attach_guard(guard)`` (which calls
    :meth:`bind`); optionally :meth:`bind_slo` to let a PR 4 SLO engine
    drive shedding.  The controller calls back into
    :meth:`record_board_failure` / :meth:`record_reconfig_faults` /
    :meth:`retry_backoff`, consults :meth:`excluded_boards` during
    allocation, and ticks :meth:`advance` on every deploy attempt; the
    experiment loop calls :meth:`shed_victims` when the queue changes.
    """

    def __init__(self, config: GuardConfig | None = None) -> None:
        self.config = config or GuardConfig()
        self._controller = None
        self._slo = None
        self._rng = random.Random(self.config.seed)
        self._state: dict[int, BreakerState] = {}
        #: board -> failure timestamps inside the rolling window
        self._failures: dict[int, list[float]] = {}
        #: board -> time its current quarantine/probation phase ends
        self._until: dict[int, float] = {}
        self.quarantine_count = 0
        self.probation_count = 0
        self.shed_count = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, controller) -> None:
        self._controller = controller

    def bind_slo(self, engine) -> None:
        """Let ``engine`` (a :class:`repro.obs.slo.SLOEngine`) drive
        the shedding trigger."""
        self._slo = engine

    @property
    def max_reconfig_retries(self) -> int:
        return self.config.max_reconfig_retries

    # ------------------------------------------------------------------
    # retry budget
    # ------------------------------------------------------------------
    def retry_backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based): exponential with
        deterministic jitter from the seeded stream."""
        backoff = self.config.backoff_base_s * (2 ** attempt)
        if self.config.backoff_jitter:
            backoff *= 1.0 + self.config.backoff_jitter \
                * self._rng.random()
        return backoff

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    def board_state(self, board: int) -> BreakerState:
        return self._state.get(board, BreakerState.CLOSED)

    def excluded_boards(self) -> frozenset[int]:
        """Boards allocation must avoid (quarantined only; probation
        boards serve traffic -- that is the trial)."""
        return frozenset(
            b for b, s in self._state.items()
            if s is BreakerState.QUARANTINED)

    def quarantined_boards(self) -> list[int]:
        return sorted(self.excluded_boards())

    def advance(self, now: float) -> None:
        """Apply every breaker transition due by ``now`` (quarantine ->
        probation -> closed), emitting events at the *scheduled*
        transition instants so traces are independent of when the
        simulator happens to tick."""
        for board in sorted(self._state):
            while True:
                due = self._until.get(board)
                if due is None or due > now:
                    break
                state = self._state[board]
                if state is BreakerState.QUARANTINED:
                    self._state[board] = BreakerState.PROBATION
                    self._until[board] = due + self.config.probation_s
                    self.probation_count += 1
                    self._emit("ctrl.probation", due, board=board,
                               reason="quarantine-elapsed",
                               until=due + self.config.probation_s)
                elif state is BreakerState.PROBATION:
                    del self._state[board]
                    del self._until[board]
                    self._failures.pop(board, None)
                else:  # pragma: no cover - CLOSED never has a deadline
                    del self._until[board]

    def record_board_failure(self, board: int, now: float) -> None:
        """One fail-stop strike against ``board``'s breaker."""
        self._record_failure(board, now, weight=1)

    def record_reconfig_faults(self, board: int, attempts: int,
                               now: float) -> None:
        """Transient ICAP faults count toward the same breaker: a board
        whose configuration port keeps failing CRC is as suspect as one
        that crashes."""
        if attempts > 0:
            self._record_failure(board, now, weight=attempts)

    def _record_failure(self, board: int, now: float,
                        weight: int) -> None:
        self.advance(now)
        state = self._state.get(board, BreakerState.CLOSED)
        if state is BreakerState.QUARANTINED:
            return  # already out of service; don't extend the sentence
        history = self._failures.setdefault(board, [])
        history.extend([now] * weight)
        cutoff = now - self.config.failure_window_s
        if history and history[0] < cutoff:
            history[:] = [t for t in history if t >= cutoff]
        if state is BreakerState.PROBATION:
            self._quarantine(board, now, reason="failed-on-probation",
                             failures=len(history))
        elif len(history) >= self.config.failure_threshold:
            self._quarantine(board, now, reason="failure-threshold",
                             failures=len(history))

    def _quarantine(self, board: int, now: float, reason: str,
                    failures: int) -> None:
        admittable = sum(
            1 for b in self._admittable_boards() if b != board)
        if admittable < self.config.min_healthy_boards:
            return  # quarantining would starve the cluster
        self._state[board] = BreakerState.QUARANTINED
        self._until[board] = now + self.config.quarantine_s
        self.quarantine_count += 1
        self._emit("ctrl.quarantine", now, board=board, reason=reason,
                   failures=failures,
                   window_s=self.config.failure_window_s,
                   until=now + self.config.quarantine_s)

    def _admittable_boards(self) -> list[int]:
        """Boards allocation may currently use at all."""
        controller = self._controller
        if controller is None:
            return []
        excluded = self.excluded_boards()
        return [b for b in controller.healthy_boards()
                if b not in excluded]

    # ------------------------------------------------------------------
    # load shedding
    # ------------------------------------------------------------------
    def shed_victims(self, now: float, queue) -> list:
        """Requests to shed from ``queue`` (pending, not yet deployed).

        Returns ``[]`` unless the queue outgrew ``shed_queue_limit``
        *and* the cluster is under pressure (capacity loss over the
        threshold, or a sustained SLO violation).  Victims are the
        excess, lowest priority first, youngest first within a priority
        -- the oldest high-priority work survives.
        """
        if len(queue) <= self.config.shed_queue_limit:
            return []
        reason = self._pressure_reason(now)
        if reason is None:
            return []
        excess = len(queue) - self.config.shed_queue_limit
        ranked = sorted(queue, key=lambda r: (
            getattr(r, "priority", 0), -r.request_id))
        victims = ranked[:excess]
        self.shed_count += len(victims)
        for request in victims:
            self._emit("ctrl.shed", now, request=request.request_id,
                       app=request.spec.name, reason=reason,
                       priority=getattr(request, "priority", 0),
                       queue_depth=len(queue))
        return victims

    def _pressure_reason(self, now: float) -> str | None:
        lost = self._capacity_lost_fraction()
        if lost >= self.config.capacity_loss_threshold:
            return f"capacity-loss:{lost:.2f}"
        if self._slo is not None:
            violated = any(s.violated for s in self._slo._states)
            if violated and self._slo.total_violated_s() \
                    >= self.config.slo_sustained_s:
                return (f"slo-sustained:"
                        f"{self._slo.total_violated_s():g}s")
        return None

    def _capacity_lost_fraction(self) -> float:
        controller = self._controller
        if controller is None:
            return 0.0
        db = controller.resource_db
        total = db.total_blocks
        if not total:
            return 0.0
        lost = db.failed_count()
        quarantined = self.excluded_boards()
        if quarantined:
            # quarantined boards are nominally healthy; their blocks
            # are unavailable all the same (homogeneous boards)
            blocks_per_board = total // len(controller.board_health)
            failed = set(controller.failed_boards())
            lost += blocks_per_board * len(quarantined - failed)
        return lost / total

    # ------------------------------------------------------------------
    # snapshot / restore (warm-restart support)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able breaker state for a controller warm restart.

        Everything a resurrected guard needs to keep making the *same*
        decisions the dead one would have: per-board breaker states and
        deadlines, the rolling failure windows, the decision counters,
        and -- so backoff jitter stays replay-identical -- the exact
        position of the seeded RNG stream.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "config": asdict(self.config),
            "state": {str(b): s.value
                      for b, s in sorted(self._state.items())},
            "failures": {str(b): list(ts)
                         for b, ts in sorted(self._failures.items())
                         if ts},
            "until": {str(b): t
                      for b, t in sorted(self._until.items())},
            "counters": self.counters(),
            "rng_state": [version, list(internal), gauss_next],
        }

    def load_snapshot(self, state: dict) -> None:
        """Adopt a snapshot in place (the controller binding and SLO
        hook survive -- only the breaker state is replaced)."""
        self._state = {int(b): BreakerState(s)
                       for b, s in state["state"].items()}
        self._failures = {int(b): [float(t) for t in ts]
                          for b, ts in state["failures"].items()}
        self._until = {int(b): float(t)
                       for b, t in state["until"].items()}
        counters = state["counters"]
        self.quarantine_count = int(counters["quarantines"])
        self.probation_count = int(counters["probations"])
        self.shed_count = int(counters["shed"])
        version, internal, gauss_next = state["rng_state"]
        # the JSON round-trip turns the internal tuple into a list
        self._rng.setstate((version, tuple(internal), gauss_next))

    @classmethod
    def restore(cls, state: dict) -> "DegradedModeGuard":
        """A fresh guard carrying a snapshot's state (bind it to the
        restored controller via ``attach_guard``)."""
        guard = cls(GuardConfig(**state["config"]))
        guard.load_snapshot(state)
        return guard

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def degraded(self) -> bool:
        """True while any breaker is open or half-open."""
        return bool(self._state)

    def counters(self) -> dict[str, int]:
        return {"quarantines": self.quarantine_count,
                "probations": self.probation_count,
                "shed": self.shed_count}

    # ------------------------------------------------------------------
    def _emit(self, name: str, t: float, **fields) -> None:
        tracer = getattr(self._controller, "tracer", None)
        if tracer:
            tracer.event(name, t=t, **fields)
