"""System Layer: runtime resource management (Section 3.4).

The system controller maintains a resource database (state of every
physical block in the cluster) and a bitstream database (compiled
applications), deploys applications through partial reconfiguration, and
allocates blocks with a communication-aware, multi-round policy that
prefers fewer, closer FPGAs.  Isolation is structural: a physical block is
never shared between applications, and peripheral access goes through the
virtualized, monitored paths.

- :mod:`repro.runtime.types` -- placements and deployments;
- :mod:`repro.runtime.resource_db` -- block states;
- :mod:`repro.runtime.bitstream_db` -- compiled application store;
- :mod:`repro.runtime.policy` -- allocation policies (communication-aware
  plus ablation alternatives);
- :mod:`repro.runtime.controller` -- the system controller and its APIs;
- :mod:`repro.runtime.guard` -- degraded-mode control plane (circuit
  breakers, retry budgets, load shedding);
- :mod:`repro.runtime.isolation` -- isolation invariant checks.
"""

from repro.runtime.types import BlockAddress, Placement, Deployment
from repro.runtime.resource_db import BlockState, ResourceDB
from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.policy import (
    AllocationPolicy,
    CommunicationAwarePolicy,
    FirstFitPolicy,
    SpreadPolicy,
)
from repro.runtime.controller import SystemController
from repro.runtime.guard import (
    BreakerState,
    DegradedModeGuard,
    GuardConfig,
)
from repro.runtime.isolation import verify_isolation

__all__ = [
    "BlockAddress",
    "Placement",
    "Deployment",
    "BlockState",
    "ResourceDB",
    "BitstreamDB",
    "AllocationPolicy",
    "CommunicationAwarePolicy",
    "FirstFitPolicy",
    "SpreadPolicy",
    "SystemController",
    "BreakerState",
    "DegradedModeGuard",
    "GuardConfig",
    "verify_isolation",
]
