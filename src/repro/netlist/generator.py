"""Synthetic netlist construction.

The paper's synthesis step is Vivado's front-end; we cannot run Vivado, so
the HLS substitute (:mod:`repro.hls`) builds netlists with this builder.
Designs are emitted as *modules* (weight buffers, PE arrays, controllers...)
whose internal structure is a locality-biased random graph -- dense inside a
module, sparse between modules -- which is the connectivity profile real
accelerator netlists exhibit and the profile the partition algorithm's
quality claims depend on (cut bandwidth is minimized by keeping modules
together).

Granularity is controlled by ``macro_lut``: resources are bundled into
macro primitives of roughly that many LUTs (plus proportional DFF/DSP/BRAM),
so a 200k-LUT accelerator becomes a few thousand nodes instead of hundreds
of thousands -- large enough to exercise the algorithms, small enough for a
pure-Python stack.  Set ``macro_lut=1`` to emit classic unit primitives.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.primitives import PrimitiveType

__all__ = ["ModuleHandle", "NetlistBuilder"]

#: Hard caps on a single macro's hard-IP content.  A macro is a unit the
#: partitioner cannot split, so one carrying more BRAM/DSP than a
#: physical block would make BRAM-heavy, LUT-light designs structurally
#: unpartitionable; three BRAM36 / four DSP slices per macro keeps every
#: macro far below any realistic block while preserving coarse netlists.
MAX_BRAM_MB_PER_MACRO = 0.108
MAX_DSP_PER_MACRO = 4.0


@dataclass(slots=True)
class ModuleHandle:
    """Bookkeeping for one generated module."""

    name: str
    macro_uids: list[int] = field(default_factory=list)
    input_taps: list[int] = field(default_factory=list)
    output_taps: list[int] = field(default_factory=list)


class NetlistBuilder:
    """Builds module-structured synthetic netlists deterministically."""

    def __init__(self, name: str, seed: int = 0, macro_lut: int = 256,
                 local_fanout: int = 3) -> None:
        if macro_lut < 1:
            raise ValueError("macro_lut must be >= 1")
        self.netlist = Netlist(name)
        self.rng = random.Random(seed)
        self.macro_lut = macro_lut
        self.local_fanout = local_fanout
        self.modules: dict[str, ModuleHandle] = {}

    # ------------------------------------------------------------------
    def add_module(self, name: str, resources: ResourceVector,
                   feedback: bool = False) -> ModuleHandle:
        """Create a module holding ``resources``, internally connected.

        The module's resources are split into macros of ~``macro_lut`` LUTs
        each (resource mix preserved).  Macros are wired as a pipeline
        chain plus ``local_fanout`` random shortcut edges per node to give
        realistic internal connectivity; ``feedback=True`` adds a loop edge
        (accumulator-style state), producing an SCC the interface generator
        must respect.
        """
        if name in self.modules:
            raise ValueError(f"duplicate module {name!r}")
        n_macros = max(
            1,
            math.ceil(max(resources.lut, 1.0) / self.macro_lut),
            math.ceil(resources.dff / (2.0 * self.macro_lut)),
            math.ceil(resources.dsp / MAX_DSP_PER_MACRO),
            math.ceil(resources.bram_mb / MAX_BRAM_MB_PER_MACRO),
        )
        share = resources * (1.0 / n_macros)
        handle = ModuleHandle(name=name)
        net = self.netlist
        for i in range(n_macros):
            uid = net.add_primitive(
                kind=PrimitiveType.MACRO, resources=share,
                name=f"{name}/m{i}", module=name)
            handle.macro_uids.append(uid)
        uids = handle.macro_uids
        # pipeline backbone
        for a, b in zip(uids, uids[1:]):
            net.add_net(a, [b], width_bits=self._bus_width())
        # locality-biased shortcuts
        for i, uid in enumerate(uids):
            for _ in range(self.local_fanout):
                j = self._nearby_index(i, len(uids))
                if j != i:
                    net.add_net(uid, [uids[j]], width_bits=1
                                + self.rng.randrange(32))
        if feedback and len(uids) >= 2:
            net.add_net(uids[-1], [uids[0]],
                        width_bits=self._bus_width())
        # module boundary taps: first/last few macros
        k = max(1, len(uids) // 16)
        handle.input_taps = uids[:k]
        handle.output_taps = uids[-k:]
        self.modules[name] = handle
        return handle

    def connect(self, src: "str | ModuleHandle", dst: "str | ModuleHandle",
                width_bits: int = 64, links: int = 1) -> None:
        """Stream connection(s) from ``src`` outputs to ``dst`` inputs."""
        src_h = self._resolve(src)
        dst_h = self._resolve(dst)
        for _ in range(links):
            a = self.rng.choice(src_h.output_taps)
            b = self.rng.choice(dst_h.input_taps)
            self.netlist.add_net(a, [b], width_bits=width_bits,
                                 name=f"{src_h.name}->{dst_h.name}")

    def add_input_stream(self, name: str, module: "str | ModuleHandle",
                         width_bits: int = 64) -> None:
        handle = self._resolve(module)
        port = self.netlist.add_port(name, PortDirection.INPUT, width_bits)
        for tap in handle.input_taps:
            self.netlist.add_net(port.primitive_uid, [tap],
                                 width_bits=width_bits, name=name)

    def add_output_stream(self, name: str, module: "str | ModuleHandle",
                          width_bits: int = 64) -> None:
        handle = self._resolve(module)
        port = self.netlist.add_port(name, PortDirection.OUTPUT, width_bits)
        for tap in handle.output_taps:
            self.netlist.add_net(tap, [port.primitive_uid],
                                 width_bits=width_bits, name=name)

    def build(self) -> Netlist:
        """Finalize: validate and hand over the netlist."""
        self.netlist.validate()
        return self.netlist

    # ------------------------------------------------------------------
    def _resolve(self, module: "str | ModuleHandle") -> ModuleHandle:
        if isinstance(module, ModuleHandle):
            return module
        return self.modules[module]

    def _bus_width(self) -> int:
        return self.rng.choice((16, 32, 32, 64))

    def _nearby_index(self, i: int, n: int) -> int:
        """Random index biased toward ``i`` (geometric-ish locality)."""
        span = max(1, n // 8)
        offset = self.rng.randint(-span, span)
        return min(n - 1, max(0, i + offset))
