"""The netlist graph: primitives connected by directed, width-carrying nets.

A :class:`Net` has one driver and any number of sinks, and carries a bit
width; widths matter because the partitioner's objective (Section 4) is to
minimize the *bandwidth* of inter-block connections, not merely their count.
External streams enter and leave through :class:`Port` objects, which the
latency-insensitive interface generator turns into channel endpoints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.fabric.resources import ResourceVector
from repro.netlist.primitives import Primitive, PrimitiveType

__all__ = ["PortDirection", "Port", "Net", "Netlist"]


class PortDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Port:
    """An external stream endpoint of the design (AXI-Stream-like)."""

    name: str
    direction: PortDirection
    width_bits: int
    primitive_uid: int  # the IOPAD primitive realizing the port


@dataclass(frozen=True, slots=True)
class Net:
    """A directed multi-terminal connection.

    Attributes:
        uid: net id, unique within the netlist.
        driver: uid of the driving primitive.
        sinks: uids of the receiving primitives.
        width_bits: bus width; contributes to cut bandwidth when the net
            crosses a virtual-block boundary.
    """

    uid: int
    driver: int
    sinks: tuple[int, ...]
    width_bits: int = 1
    name: str = ""

    def endpoints(self) -> tuple[int, ...]:
        return (self.driver, *self.sinks)


class Netlist:
    """A mutable netlist under construction, or a finished design.

    The class keeps primitives and nets in dictionaries keyed by uid and
    maintains an adjacency index (primitive uid -> incident net uids) so
    that packing and placement can walk neighborhoods cheaply.
    """

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self.primitives: dict[int, Primitive] = {}
        self.nets: dict[int, Net] = {}
        self.ports: list[Port] = []
        self._incident: dict[int, list[int]] = {}
        self._next_prim_uid = 0
        self._next_net_uid = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_primitive(self, kind: PrimitiveType,
                      resources: ResourceVector | None = None,
                      name: str = "", module: str = "") -> int:
        """Add a primitive and return its uid."""
        uid = self._next_prim_uid
        self._next_prim_uid += 1
        if kind is PrimitiveType.MACRO:
            if resources is None:
                raise ValueError("MACRO primitives need explicit resources")
            prim = Primitive.macro(uid, resources, name=name, module=module)
        else:
            if resources is not None:
                prim = Primitive(uid=uid, kind=kind, name=name,
                                 resources=resources, module=module)
            else:
                prim = Primitive.unit(uid, kind, name=name, module=module)
        self.primitives[uid] = prim
        self._incident[uid] = []
        return uid

    def add_net(self, driver: int, sinks: "list[int] | tuple[int, ...]",
                width_bits: int = 1, name: str = "") -> int:
        """Connect a driver to sinks and return the net uid."""
        if driver not in self.primitives:
            raise KeyError(f"driver {driver} not in netlist")
        for sink in sinks:
            if sink not in self.primitives:
                raise KeyError(f"sink {sink} not in netlist")
        if width_bits <= 0:
            raise ValueError("net width must be positive")
        uid = self._next_net_uid
        self._next_net_uid += 1
        net = Net(uid=uid, driver=driver, sinks=tuple(sinks),
                  width_bits=width_bits, name=name)
        self.nets[uid] = net
        self._incident[driver].append(uid)
        for sink in net.sinks:
            self._incident[sink].append(uid)
        return uid

    def add_port(self, name: str, direction: PortDirection,
                 width_bits: int) -> Port:
        """Add an external stream port (creates its IOPAD primitive)."""
        uid = self.add_primitive(PrimitiveType.IOPAD, name=name,
                                 module="<io>")
        port = Port(name=name, direction=direction, width_bits=width_bits,
                    primitive_uid=uid)
        self.ports.append(port)
        return port

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_primitives(self) -> int:
        return len(self.primitives)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def incident_nets(self, prim_uid: int) -> list[Net]:
        return [self.nets[n] for n in self._incident[prim_uid]]

    def neighbors(self, prim_uid: int) -> set[int]:
        """All primitives sharing a net with ``prim_uid`` (excl. itself)."""
        out: set[int] = set()
        for net_uid in self._incident[prim_uid]:
            out.update(self.nets[net_uid].endpoints())
        out.discard(prim_uid)
        return out

    def resource_usage(self) -> ResourceVector:
        """Total resources of all primitives (the Table 2 footprint)."""
        total = ResourceVector.zero()
        for prim in self.primitives.values():
            total = total + prim.resources
        return total

    def input_ports(self) -> list[Port]:
        return [p for p in self.ports if p.direction is PortDirection.INPUT]

    def output_ports(self) -> list[Port]:
        return [p for p in self.ports if p.direction is PortDirection.OUTPUT]

    def cut_bandwidth(self, assignment: dict[int, int]) -> float:
        """Total width (bits) of nets whose endpoints straddle partitions.

        ``assignment`` maps primitive uid -> partition id.  A multi-terminal
        net contributes its width once per *distinct remote partition* it
        reaches, matching how many physical channels would carry it.
        """
        total = 0.0
        for net in self.nets.values():
            parts = {assignment[uid] for uid in net.endpoints()
                     if uid in assignment}
            if len(parts) > 1:
                total += net.width_bits * (len(parts) - 1)
        return total

    def validate(self) -> None:
        """Structural sanity: every net endpoint exists, no empty nets."""
        for net in self.nets.values():
            if net.driver not in self.primitives:
                raise ValueError(f"net {net.uid}: dangling driver")
            if not net.sinks:
                raise ValueError(f"net {net.uid}: no sinks")
            for sink in net.sinks:
                if sink not in self.primitives:
                    raise ValueError(f"net {net.uid}: dangling sink {sink}")
        for port in self.ports:
            if port.primitive_uid not in self.primitives:
                raise ValueError(f"port {port.name}: missing IOPAD")

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, {self.num_primitives} primitives, "
                f"{self.num_nets} nets, usage={self.resource_usage()})")
