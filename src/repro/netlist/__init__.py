"""Netlist intermediate representation.

ViTAL's one key compilation design decision (Section 3.3) is to partition
applications at the *netlist* level: the netlist is programming-language
agnostic and gives an accurate account of low-level resource usage, which
the partitioner exploits.  This package provides that IR:

- :mod:`repro.netlist.primitives` -- primitive cells (LUT/FF/DSP/BRAM and
  resource-bearing macros);
- :mod:`repro.netlist.netlist` -- the netlist graph of primitives and nets;
- :mod:`repro.netlist.dataflow` -- directed dataflow views used by the
  latency-insensitive interface generator;
- :mod:`repro.netlist.generator` -- synthetic netlist construction used by
  the HLS front-end substitute.
"""

from repro.netlist.primitives import Primitive, PrimitiveType
from repro.netlist.netlist import Net, Netlist, Port, PortDirection
from repro.netlist.dataflow import DataflowGraph
from repro.netlist.generator import NetlistBuilder
from repro.netlist.logic import GateOp, LogicNetwork
from repro.netlist.verilog import to_verilog
from repro.netlist.verilog_parser import VerilogParseError, parse_verilog

__all__ = [
    "Primitive",
    "PrimitiveType",
    "Net",
    "Netlist",
    "Port",
    "PortDirection",
    "DataflowGraph",
    "NetlistBuilder",
    "GateOp",
    "LogicNetwork",
    "to_verilog",
    "VerilogParseError",
    "parse_verilog",
]
