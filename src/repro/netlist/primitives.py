"""Primitive cells of the netlist IR.

After synthesis and technology mapping (Section 2.2), an application is a
netlist of primitives: LUTs, flip-flops, DSP slices and BRAMs.  Placing
hundreds of thousands of individual cells is what makes vendor P&R slow; the
ViTAL partitioner never needs that granularity because its packing step
(Section 4.1) immediately coarsens the netlist.  This model therefore also
supports *macro* primitives -- clusters of cells with an aggregate resource
vector -- which is the granularity our synthetic synthesis front-end emits.
A macro of size one LUT is exactly a classic primitive, so nothing is lost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.fabric.resources import ResourceVector

__all__ = ["PrimitiveType", "Primitive"]


class PrimitiveType(enum.Enum):
    """Cell families recognized by technology mapping."""

    LUT = "lut"
    FF = "ff"
    DSP = "dsp"
    BRAM = "bram"
    MACRO = "macro"   # aggregate of cells, carries a resource vector
    IOPAD = "iopad"   # external stream endpoint

    def __str__(self) -> str:
        return self.value


#: Resource vector of one classic (non-macro) primitive.
UNIT_RESOURCES: dict[PrimitiveType, ResourceVector] = {
    PrimitiveType.LUT: ResourceVector(lut=1),
    PrimitiveType.FF: ResourceVector(dff=1),
    PrimitiveType.DSP: ResourceVector(dsp=1),
    PrimitiveType.BRAM: ResourceVector(bram_mb=0.036),  # one BRAM36
    PrimitiveType.IOPAD: ResourceVector(),
    PrimitiveType.MACRO: ResourceVector(),  # must be given explicitly
}


@dataclass(frozen=True, slots=True)
class Primitive:
    """One node of the netlist.

    Attributes:
        uid: numeric id, unique within one netlist.
        kind: primitive family.
        name: hierarchical instance name (``pe_array/row3/mac7``).
        resources: resources this node occupies; defaults to the family's
            unit vector, and must be supplied for ``MACRO`` nodes.
        module: top-level module the node belongs to (used by reporting and
            by the generator's structure; the partitioner ignores it).
    """

    uid: int
    kind: PrimitiveType
    name: str = ""
    resources: ResourceVector = field(default=ResourceVector.zero())
    module: str = ""

    @classmethod
    def unit(cls, uid: int, kind: PrimitiveType, name: str = "",
             module: str = "") -> "Primitive":
        """A classic single-cell primitive with its unit resources."""
        return cls(uid=uid, kind=kind, name=name,
                   resources=UNIT_RESOURCES[kind], module=module)

    @classmethod
    def macro(cls, uid: int, resources: ResourceVector, name: str = "",
              module: str = "") -> "Primitive":
        """An aggregate node carrying an explicit resource vector."""
        return cls(uid=uid, kind=PrimitiveType.MACRO, name=name,
                   resources=resources, module=module)

    def is_io(self) -> bool:
        return self.kind is PrimitiveType.IOPAD
