"""Gate-level logic networks (the parser output of Fig. 3b).

Section 2.2: the back-end "synthesizes [Verilog] into different levels of
intermediate representation ... and a netlist of primitives (e.g., logic
gates...)"; technology mapping then packs the gates into K-input LUTs.
This module is that gate-level IR: a DAG of Boolean gates and flip-flops
with named primary inputs/outputs, plus a reference evaluator so the
technology mapper (:mod:`repro.compiler.techmap`) can be *proved*
functionally equivalent on test vectors rather than trusted.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

__all__ = ["GateOp", "LogicNetwork"]


class GateOp(enum.Enum):
    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    FF = "ff"       # D flip-flop: breaks combinational paths

    def arity_ok(self, n: int) -> bool:
        if self in (GateOp.INPUT, GateOp.CONST0, GateOp.CONST1):
            return n == 0
        if self in (GateOp.BUF, GateOp.NOT, GateOp.FF):
            return n == 1
        return n >= 2


_EVAL = {
    GateOp.BUF: lambda vs: vs[0],
    GateOp.NOT: lambda vs: not vs[0],
    GateOp.AND: all,
    GateOp.OR: any,
    GateOp.XOR: lambda vs: sum(vs) % 2 == 1,
}


@dataclass(slots=True)
class _Gate:
    op: GateOp
    fanins: tuple[int, ...]
    name: str = ""


class LogicNetwork:
    """A combinational/sequential gate DAG with named ports."""

    def __init__(self, name: str = "logic") -> None:
        self.name = name
        self.gates: dict[int, _Gate] = {}
        self.inputs: dict[str, int] = {}
        self.outputs: dict[str, int] = {}
        self._next = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new(self, op: GateOp, fanins: tuple[int, ...],
             name: str = "") -> int:
        if not op.arity_ok(len(fanins)):
            raise ValueError(f"{op}: bad fanin count {len(fanins)}")
        for f in fanins:
            if f not in self.gates:
                raise KeyError(f"unknown fanin {f}")
        uid = self._next
        self._next += 1
        self.gates[uid] = _Gate(op=op, fanins=fanins, name=name)
        return uid

    def add_input(self, name: str) -> int:
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        uid = self._new(GateOp.INPUT, (), name=name)
        self.inputs[name] = uid
        return uid

    def add_gate(self, op: GateOp, *fanins: int, name: str = "") -> int:
        if op in (GateOp.INPUT, GateOp.FF):
            raise ValueError(f"use the dedicated method for {op}")
        return self._new(op, tuple(fanins), name=name)

    def add_ff(self, d: int, name: str = "") -> int:
        return self._new(GateOp.FF, (d,), name=name)

    def set_output(self, name: str, gate: int) -> None:
        if gate not in self.gates:
            raise KeyError(f"unknown gate {gate}")
        self.outputs[name] = gate

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def combinational_gates(self) -> list[int]:
        return [u for u, g in self.gates.items()
                if g.op not in (GateOp.INPUT, GateOp.FF)]

    def levels(self) -> dict[int, int]:
        """Combinational depth; INPUT/FF outputs are level 0."""
        memo: dict[int, int] = {}

        def level(uid: int) -> int:
            if uid in memo:
                return memo[uid]
            gate = self.gates[uid]
            if gate.op in (GateOp.INPUT, GateOp.FF, GateOp.CONST0,
                           GateOp.CONST1):
                memo[uid] = 0
            else:
                memo[uid] = 1 + max((level(f) for f in gate.fanins),
                                    default=0)
            return memo[uid]

        for uid in self.gates:
            level(uid)
        return memo

    def depth(self) -> int:
        return max(self.levels().values(), default=0)

    # ------------------------------------------------------------------
    # reference evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: dict[str, bool],
                 state: dict[int, bool] | None = None,
                 ) -> tuple[dict[str, bool], dict[int, bool]]:
        """One cycle: returns (outputs, next FF state).

        ``state`` maps FF uid -> current Q value (default all False).
        Combinational logic sees FF outputs from ``state``; the returned
        next-state is each FF's D input this cycle.
        """
        state = state or {}
        values: dict[int, bool] = {}

        def value(uid: int) -> bool:
            if uid in values:
                return values[uid]
            gate = self.gates[uid]
            if gate.op is GateOp.INPUT:
                out = assignment[gate.name]
            elif gate.op is GateOp.FF:
                out = state.get(uid, False)
            elif gate.op is GateOp.CONST0:
                out = False
            elif gate.op is GateOp.CONST1:
                out = True
            else:
                out = _EVAL[gate.op]([value(f) for f in gate.fanins])
            values[uid] = out
            return out

        outputs = {name: value(uid)
                   for name, uid in self.outputs.items()}
        next_state = {uid: value(self.gates[uid].fanins[0])
                      for uid, g in self.gates.items()
                      if g.op is GateOp.FF}
        return outputs, next_state

    # ------------------------------------------------------------------
    @classmethod
    def random(cls, num_inputs: int = 8, num_gates: int = 60,
               num_outputs: int = 4, seed: int = 0,
               ff_probability: float = 0.0) -> "LogicNetwork":
        """A random connected DAG for mapper stress/equivalence tests."""
        rng = random.Random(seed)
        net = cls(f"random{seed}")
        pool = [net.add_input(f"i{k}") for k in range(num_inputs)]
        for _ in range(num_gates):
            if ff_probability and rng.random() < ff_probability:
                pool.append(net.add_ff(rng.choice(pool)))
                continue
            op = rng.choice((GateOp.AND, GateOp.OR, GateOp.XOR,
                             GateOp.NOT))
            if op is GateOp.NOT:
                pool.append(net.add_gate(op, rng.choice(pool)))
            else:
                k = rng.randint(2, 4)
                pool.append(net.add_gate(
                    op, *(rng.choice(pool) for _ in range(k))))
        for k in range(num_outputs):
            net.set_output(f"o{k}", pool[-1 - k])
        return net
