"""Directed dataflow views over a netlist.

The latency-insensitive interface generator (Section 3.3, step 3) analyzes
"the dataflow graph of the user logic in the virtual block" to decide where
FIFOs and clock-enable control are needed, and the deadlock-freedom argument
(Section 3.5.1) is a property of that graph.  This module derives the graph
from the netlist's driver->sink directions.
"""

from __future__ import annotations

import networkx as nx

from repro.netlist.netlist import Netlist

__all__ = ["DataflowGraph"]


class DataflowGraph:
    """A networkx DiGraph wrapper with the analyses the compiler needs."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        graph = nx.DiGraph()
        graph.add_nodes_from(netlist.primitives)
        for net in netlist.nets.values():
            for sink in net.sinks:
                if graph.has_edge(net.driver, sink):
                    graph[net.driver][sink]["width_bits"] += net.width_bits
                else:
                    graph.add_edge(net.driver, sink,
                                   width_bits=net.width_bits)
        self.graph = graph

    # ------------------------------------------------------------------
    def condensation(self) -> nx.DiGraph:
        """The DAG of strongly connected components.

        Feedback loops (accumulators, state machines) form SCCs; the
        partitioner must never split an SCC across blocks connected only by
        buffered channels or the latency-insensitive handshake could starve,
        and the interface generator sizes initialization tokens per SCC.
        """
        return nx.condensation(self.graph)

    def levels(self) -> dict[int, int]:
        """Topological level of each primitive over the SCC condensation.

        The level is the pipeline stage depth: sources are level 0 and each
        edge advances at most one level.  Used both by the synthetic P&R
        timing model (logic depth) and by interface scheduling.
        """
        cond = self.condensation()
        comp_level = {node: 0 for node in nx.topological_sort(cond)}
        for node in nx.topological_sort(cond):
            for succ in cond.successors(node):
                comp_level[succ] = max(comp_level[succ],
                                       comp_level[node] + 1)
        levels: dict[int, int] = {}
        for comp_id, members in cond.nodes(data="members"):
            for uid in members:
                levels[uid] = comp_level[comp_id]
        return levels

    def critical_path_length(self) -> int:
        """Longest path length in the condensation (pipeline depth)."""
        lv = self.levels()
        return max(lv.values(), default=0)

    def partition_edges(self, assignment: dict[int, int],
                        ) -> dict[tuple[int, int], float]:
        """Aggregate inter-partition dataflow.

        Returns a map ``(src_part, dst_part) -> total width_bits`` over all
        edges crossing between distinct partitions.  This is exactly the
        channel list the interface generator must realize.
        """
        flows: dict[tuple[int, int], float] = {}
        for u, v, width in self.graph.edges(data="width_bits"):
            pu = assignment.get(u)
            pv = assignment.get(v)
            if pu is None or pv is None or pu == pv:
                continue
            key = (pu, pv)
            flows[key] = flows.get(key, 0.0) + width
        return flows

    def sources(self) -> list[int]:
        return [n for n in self.graph if self.graph.in_degree(n) == 0]

    def sinks(self) -> list[int]:
        return [n for n in self.graph if self.graph.out_degree(n) == 0]

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)
