"""Structural Verilog import (the writer's inverse).

Parses the structural subset :func:`repro.netlist.verilog.to_verilog`
emits -- and that hand-written structural netlists in the same style use:
one module; scalar/bus ``input``/``output``/``wire`` declarations;
``assign`` aliases between pads and wires; and primitive instances
(``LUT6``, ``FDRE``, ``DSP48E2``, ``RAMB36E2``, ``vital_macro`` with
resource parameters).  The result is a
:class:`~repro.netlist.netlist.Netlist`, so designs can leave and re-enter
the stack through a standard interchange format.

The grammar is deliberately strict: anything outside the subset raises
:class:`VerilogParseError` with the offending line, rather than guessing.
"""

from __future__ import annotations

import re

from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.primitives import PrimitiveType

__all__ = ["VerilogParseError", "parse_verilog"]


class VerilogParseError(ValueError):
    """Input is outside the supported structural subset."""


_CELL_KINDS = {
    "LUT6": PrimitiveType.LUT,
    "FDRE": PrimitiveType.FF,
    "DSP48E2": PrimitiveType.DSP,
    "RAMB36E2": PrimitiveType.BRAM,
    "vital_macro": PrimitiveType.MACRO,
}

_MODULE_RE = re.compile(r"^module\s+(\\\S+\s|\w+)\s*\((.*)\)\s*;$")
_DECL_RE = re.compile(
    r"^(input|output|wire)\s*(\[(\d+):0\])?\s*(\\\S+\s|\w+)\s*;$")
_ASSIGN_RE = re.compile(
    r"^assign\s+(\\\S+\s|\w+)\s*=\s*(\\\S+\s|\w+)\s*;$")
_INST_RE = re.compile(
    r"^(\w+)\s*(#\((.*?)\))?\s*(\w+)\s*\((.*)\)\s*;$")
_PARAM_RE = re.compile(r"\.(\w+)\((-?[\d.]+)\)")
_CONN_RE = re.compile(r"\.(\w+)\(\s*(\\\S+\s|\w+)?\s*\)")


def _clean(identifier: str) -> str:
    identifier = identifier.strip()
    if identifier.startswith("\\"):
        return identifier[1:].rstrip()
    return identifier


def parse_verilog(text: str) -> Netlist:
    """Parse one structural module into a netlist."""
    lines = [ln.strip() for ln in text.splitlines()
             if ln.strip() and not ln.strip().startswith("//")]
    if not lines or not lines[0].startswith("module"):
        raise VerilogParseError("expected a module declaration first")
    header = _MODULE_RE.match(lines[0])
    if not header:
        raise VerilogParseError(f"bad module header: {lines[0]!r}")
    netlist = Netlist(_clean(header.group(1)))

    widths: dict[str, int] = {}
    directions: dict[str, PortDirection] = {}
    wire_driver: dict[str, int] = {}          # wire -> driver prim uid
    wire_sinks: dict[str, list[int]] = {}     # wire -> sink prim uids
    wire_widths: dict[str, int] = {}
    aliases: list[tuple[str, str]] = []       # (lhs, rhs) assigns
    instances: list[tuple[str, dict, list[str], list[str]]] = []

    body = lines[1:]
    if body and body[-1] == "endmodule":
        body = body[:-1]
    else:
        raise VerilogParseError("missing endmodule")

    for line in body:
        decl = _DECL_RE.match(line)
        if decl:
            kind, _bus, msb, name = decl.groups()
            name = _clean(name)
            width = int(msb) + 1 if msb is not None else 1
            widths[name] = width
            if kind == "input":
                directions[name] = PortDirection.INPUT
            elif kind == "output":
                directions[name] = PortDirection.OUTPUT
            else:
                wire_widths[name] = width
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            aliases.append((_clean(assign.group(1)),
                            _clean(assign.group(2))))
            continue
        inst = _INST_RE.match(line)
        if inst:
            cell, _p, params_text, _name, conns_text = inst.groups()
            if cell not in _CELL_KINDS:
                raise VerilogParseError(f"unknown cell {cell!r}")
            params = {k: float(v) for k, v in
                      _PARAM_RE.findall(params_text or "")}
            ins, outs = [], []
            for pin, wire in _CONN_RE.findall(conns_text):
                if pin == "clk" or wire is None or wire == "":
                    continue
                wire = _clean(wire)
                if pin.startswith("i"):
                    ins.append(wire)
                elif pin.startswith("o"):
                    outs.append(wire)
                else:
                    raise VerilogParseError(
                        f"unsupported pin {pin!r} in {line!r}")
            instances.append((cell, params, ins, outs))
            continue
        raise VerilogParseError(f"unsupported construct: {line!r}")

    # ports (clk is implicit and dropped; it is not a dataflow net)
    pad_of: dict[str, int] = {}
    for name in (n for n in header.group(2).split(",")
                 if _clean(n.strip()) != "clk"):
        name = _clean(name.strip())
        if name not in directions:
            raise VerilogParseError(f"port {name!r} never declared")
        port = netlist.add_port(name, directions[name],
                                widths.get(name, 1))
        pad_of[name] = port.primitive_uid

    # instances become primitives
    for cell, params, ins, outs in instances:
        kind = _CELL_KINDS[cell]
        if kind is PrimitiveType.MACRO:
            res = ResourceVector(
                lut=params.get("LUTS", 0.0),
                dff=params.get("DFFS", 0.0),
                dsp=params.get("DSPS", 0.0),
                bram_mb=params.get("BRAM_KB", 0.0) / 1024.0)
            uid = netlist.add_primitive(kind, resources=res)
        else:
            uid = netlist.add_primitive(kind)
        for wire in ins:
            wire_sinks.setdefault(wire, []).append(uid)
        for wire in outs:
            if wire in wire_driver:
                raise VerilogParseError(
                    f"wire {wire!r} driven twice")
            wire_driver[wire] = uid

    # assigns alias pads onto wires
    for lhs, rhs in aliases:
        if lhs in pad_of:         # assign out_pad = wire
            wire_sinks.setdefault(rhs, []).append(pad_of[lhs])
        elif rhs in pad_of:       # assign wire = in_pad
            if lhs in wire_driver:
                raise VerilogParseError(f"wire {lhs!r} driven twice")
            wire_driver[lhs] = pad_of[rhs]
        else:
            raise VerilogParseError(
                f"assign between two non-ports: {lhs} = {rhs}")

    # materialize nets
    for wire, driver in wire_driver.items():
        sinks = wire_sinks.get(wire, [])
        if not sinks:
            continue  # dangling output wire: legal, just unconnected
        netlist.add_net(driver, sinks,
                        width_bits=wire_widths.get(wire, 1),
                        name=wire)
    netlist.validate()
    return netlist
