"""One latency-insensitive channel, cycle-stepped.

The channel connects a producer endpoint to a consumer endpoint across a
link of some :class:`~repro.interconnect.links.LinkClass`.  Flow control is
credit-based: the producer may launch a flit only while it holds a credit
(one per free slot in the receive FIFO), flits arrive after the link
latency, and credits return with the same latency when the consumer drains
a slot.  With a FIFO at least as deep as the round trip, the channel
sustains one flit per cycle -- the saturating behavior Table 4 measures.

``init_tokens`` pre-loads the receive FIFO with tokens at reset; the
interface generator places them on cycle back-edges to establish the
"at least one input buffer non-empty" deadlock-freedom condition.
"""

from __future__ import annotations

from collections import deque

from repro.interconnect.fifo import BoundedFifo, CreditCounter
from repro.interconnect.links import LINKS, LinkClass, LinkModel

__all__ = ["Channel"]


class Channel:
    """A unidirectional latency-insensitive channel."""

    def __init__(self, name: str, link: "LinkClass | LinkModel",
                 fifo_depth: int = 64, init_tokens: int = 0) -> None:
        self.name = name
        self.link = LINKS[link] if isinstance(link, LinkClass) else link
        if init_tokens > fifo_depth:
            raise ValueError("init tokens exceed FIFO depth")
        self.rx_fifo = BoundedFifo(fifo_depth)
        self.credits = CreditCounter(fifo_depth)
        for i in range(init_tokens):
            self.rx_fifo.push(("init", i))
            self.credits.consume()
        self._in_flight: deque[tuple[int, object]] = deque()
        self._credit_returns: deque[int] = deque()
        self.sent = 0
        self.delivered = 0
        self.consumed = 0
        self.latency_sum = 0
        self.latency_count = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def can_accept(self) -> bool:
        """Clock-enable condition on the producer: a credit is available."""
        return self.credits.can_send()

    def send(self, cycle: int, payload: object = None) -> None:
        """Launch one flit (caller must have checked :meth:`can_accept`)."""
        self.credits.consume()
        self._in_flight.append((cycle + self.link.latency_cycles,
                                (cycle, payload)))
        self.sent += 1

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def has_data(self) -> bool:
        return not self.rx_fifo.is_empty()

    def receive(self, cycle: int) -> object:
        """Drain one flit; returns its payload and schedules the credit."""
        item = self.rx_fifo.pop()
        self._credit_returns.append(cycle + self.link.latency_cycles)
        self.consumed += 1
        if isinstance(item, tuple) and len(item) == 2 \
                and item[0] != "init":
            sent_cycle, payload = item
            self.latency_sum += cycle - sent_cycle
            self.latency_count += 1
            return payload
        return None

    # ------------------------------------------------------------------
    # per-cycle bookkeeping
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Deliver arrived flits and returned credits for ``cycle``."""
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, item = self._in_flight.popleft()
            self.rx_fifo.push(item)   # a credit guaranteed the slot
            self.delivered += 1
        while self._credit_returns and self._credit_returns[0] <= cycle:
            self._credit_returns.popleft()
            self.credits.restore()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def throughput_bits_per_cycle(self, cycles: int) -> float:
        """Accepted payload bandwidth over a run of ``cycles``."""
        if cycles <= 0:
            return 0.0
        return self.consumed * self.link.bits_per_cycle / cycles

    def throughput_gbps(self, cycles: int) -> float:
        from repro.interconnect.links import SHELL_CLOCK_MHZ
        return (self.throughput_bits_per_cycle(cycles)
                * SHELL_CLOCK_MHZ / 1e3)

    def mean_latency_cycles(self) -> float:
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count
