"""Bounded FIFOs and credit counters.

These are the storage and flow-control elements the interface generator
instantiates in the communication region.  They are deliberately tiny,
assertion-heavy classes: the cycle simulator leans on their invariants
(no overflow, no underflow, credits conserved) to make deadlock and
back-pressure behavior trustworthy.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["BoundedFifo", "CreditCounter"]


class BoundedFifo:
    """A hardware-style FIFO with a hard capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("FIFO capacity must be >= 1")
        self.capacity = capacity
        self._items: deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def is_empty(self) -> bool:
        return not self._items

    def push(self, item: Any) -> None:
        if self.is_full():
            raise OverflowError("push into full FIFO")
        self._items.append(item)

    def pop(self) -> Any:
        if self.is_empty():
            raise IndexError("pop from empty FIFO")
        return self._items.popleft()

    def peek(self) -> Any:
        if self.is_empty():
            raise IndexError("peek into empty FIFO")
        return self._items[0]


class CreditCounter:
    """Credit-based flow control: one credit per free receiver slot.

    The sender spends a credit per flit it launches; the receiver returns
    a credit when a slot frees up.  The invariant ``0 <= credits <=
    initial`` must hold at all times; violations indicate a protocol bug
    and raise immediately.
    """

    def __init__(self, initial: int) -> None:
        if initial < 1:
            raise ValueError("credit pool must be >= 1")
        self.initial = initial
        self._credits = initial

    @property
    def available(self) -> int:
        return self._credits

    def can_send(self) -> bool:
        return self._credits > 0

    def consume(self) -> None:
        if self._credits <= 0:
            raise RuntimeError("consuming credit at zero (protocol bug)")
        self._credits -= 1

    def restore(self) -> None:
        if self._credits >= self.initial:
            raise RuntimeError("restoring credit above initial "
                               "(protocol bug)")
        self._credits += 1
