"""Dataflow-firing simulation over blocks and channels.

A :class:`BlockNode` models the user logic of one virtual block under
latency-insensitive control: each cycle it *fires* -- consumes one flit
from every input channel and produces one to every output channel -- only
when all inputs have data and all outputs have credits.  Otherwise its
clock-enable is deasserted and it stalls, exactly the Section 3.2/3.5.1
semantics (back-pressure propagates upstream; nothing is lost).

Sources and sinks are degenerate nodes: a source fires whenever its output
has credit (optionally at a limited rate), a sink whenever its input has
data.  The random-traffic microbenchmark of benchmark set 1 (Table 4) is a
source -> channel -> sink chain driven at full rate; the measured accepted
bandwidth saturates at the link capacity when the FIFO covers the credit
round trip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.interconnect.channel import Channel
from repro.interconnect.links import LinkClass, LinkModel, LINKS

__all__ = [
    "BlockNode",
    "TrafficSimulator",
    "measure_channel_bandwidth",
    "random_traffic_experiment",
    "RandomTrafficResult",
]


class BlockNode:
    """One latency-insensitive endpoint (user logic of a virtual block)."""

    def __init__(self, name: str, is_source: bool = False,
                 is_sink: bool = False, rate: float = 1.0,
                 seed: int = 0) -> None:
        if rate <= 0 or rate > 1:
            raise ValueError("rate must be in (0, 1]")
        self.name = name
        self.is_source = is_source
        self.is_sink = is_sink
        self.rate = rate
        self.inputs: list[Channel] = []
        self.outputs: list[Channel] = []
        self.fired = 0
        self.stalled = 0
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def clock_enabled(self) -> bool:
        """The CE condition the interface's control logic generates."""
        if not self.is_source and any(not c.has_data()
                                      for c in self.inputs):
            return False
        if not self.is_sink and any(not c.can_accept()
                                    for c in self.outputs):
            return False
        return True

    def step(self, cycle: int) -> None:
        if self.rate < 1.0 and self._rng.random() >= self.rate:
            return  # idle by choice, not a stall
        if not self.clock_enabled():
            self.stalled += 1
            return
        if not self.is_source:
            for channel in self.inputs:
                channel.receive(cycle)
        if not self.is_sink:
            for channel in self.outputs:
                channel.send(cycle, payload=self.fired)
        self.fired += 1

    def utilization(self) -> float:
        total = self.fired + self.stalled
        return self.fired / total if total else 0.0


class TrafficSimulator:
    """Steps a set of nodes and channels for N cycles."""

    def __init__(self) -> None:
        self.nodes: list[BlockNode] = []
        self.channels: list[Channel] = []
        self.cycle = 0

    def add_node(self, node: BlockNode) -> BlockNode:
        self.nodes.append(node)
        return node

    def connect(self, src: BlockNode, dst: BlockNode, channel: Channel,
                ) -> Channel:
        src.outputs.append(channel)
        dst.inputs.append(channel)
        self.channels.append(channel)
        return channel

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            for channel in self.channels:
                channel.step(self.cycle)
            for node in self.nodes:
                node.step(self.cycle)
            self.cycle += 1

    def total_fired(self) -> int:
        return sum(n.fired for n in self.nodes)

    def deadlocked(self, probe_cycles: int = 256) -> bool:
        """Run briefly; report True if nothing fires at all."""
        before = self.total_fired()
        self.run(probe_cycles)
        return self.total_fired() == before


# ----------------------------------------------------------------------
# microbenchmarks (benchmark set 1)
# ----------------------------------------------------------------------
def measure_channel_bandwidth(link: "LinkClass | LinkModel",
                              fifo_depth: int | None = None,
                              cycles: int = 20000,
                              offered_rate: float = 1.0,
                              ) -> tuple[float, float]:
    """Source -> channel -> sink at ``offered_rate``.

    Returns ``(accepted_gbps, mean_latency_cycles)``.  With a FIFO at
    least the round trip deep and rate 1.0, accepted bandwidth equals the
    link capacity -- the Table 4 'maximum bandwidth' row.
    """
    model = LINKS[link] if isinstance(link, LinkClass) else link
    if fifo_depth is None:
        fifo_depth = model.round_trip_cycles()
    sim = TrafficSimulator()
    src = sim.add_node(BlockNode("src", is_source=True, rate=offered_rate))
    dst = sim.add_node(BlockNode("dst", is_sink=True))
    channel = sim.connect(src, dst,
                          Channel("ch", model, fifo_depth=fifo_depth))
    sim.run(cycles)
    return (channel.throughput_gbps(cycles),
            channel.mean_latency_cycles())


@dataclass(slots=True)
class RandomTrafficResult:
    """Outcome of the random-traffic experiment."""

    offered_rate: float
    accepted_gbps: float
    link_capacity_gbps: float
    mean_latency_cycles: float

    @property
    def saturation(self) -> float:
        return self.accepted_gbps / self.link_capacity_gbps


def random_traffic_experiment(link: LinkClass, rates: list[float],
                              cycles: int = 20000, seed: int = 7,
                              ) -> list[RandomTrafficResult]:
    """Sweep offered load on one link class with randomized sources.

    Several bursty sources share one channel through a fair round-robin
    multiplexer (modeled by summing offered load); the curve's knee is the
    link's saturating bandwidth.
    """
    model = LINKS[link]
    out = []
    for rate in rates:
        sim = TrafficSimulator()
        src = sim.add_node(BlockNode("src", is_source=True, rate=rate,
                                     seed=seed))
        dst = sim.add_node(BlockNode("dst", is_sink=True))
        channel = sim.connect(
            src, dst, Channel("ch", model,
                              fifo_depth=model.round_trip_cycles()))
        sim.run(cycles)
        out.append(RandomTrafficResult(
            offered_rate=rate,
            accepted_gbps=channel.throughput_gbps(cycles),
            link_capacity_gbps=model.bandwidth_gbps,
            mean_latency_cycles=channel.mean_latency_cycles(),
        ))
    return out
