"""Cycle-level simulation of a deployed application's interface.

Closes the loop between the compiler and the interconnect substrate: take
a :class:`~repro.compiler.bitstream.CompiledApp` and the runtime's
placement, instantiate one dataflow node per virtual block and one
latency-insensitive channel per generated
:class:`~repro.compiler.interface_gen.ChannelSpec` -- with the link class
each channel *actually* traverses under that placement -- and step the
whole design.  This is the executable form of the paper's claim that the
same compiled interface works unchanged whether a channel lands on-chip,
across a die boundary, or across the FPGA ring.

Per Section 3.5.2, channels that stay inside one die keep only minimal
skid buffering (their latency is deterministic); die-crossing and
ring-crossing channels get FIFOs sized to their link's round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import FPGACluster
from repro.compiler.bitstream import CompiledApp
from repro.interconnect.channel import Channel
from repro.interconnect.links import LINKS, LinkClass, LinkModel
from repro.interconnect.simulator import BlockNode, TrafficSimulator
from repro.runtime.types import Placement

__all__ = ["link_class_for", "DeploymentSimResult",
           "simulate_deployment"]

#: Slack depth of unbuffered (deterministic-latency) on-chip channels.
#: The real system resolves on-chip latencies at compile time and
#: schedules clock enables (Section 3.5.2); the simulator approximates
#: that latency balancing with enough skid slack to cover reconvergent
#: path mismatches inside one die.
_ON_CHIP_DEPTH = 64


def link_class_for(placement: Placement, cluster: FPGACluster,
                   src_vb: int, dst_vb: int) -> LinkClass:
    """Which physical link a channel traverses under a placement."""
    src_board, src_block = placement.mapping[src_vb]
    dst_board, dst_block = placement.mapping[dst_vb]
    if src_board != dst_board:
        return LinkClass.INTER_FPGA
    src_die = cluster.board(src_board).block(src_block).die_index
    dst_die = cluster.board(dst_board).block(dst_block).die_index
    if src_die != dst_die:
        return LinkClass.INTER_DIE
    return LinkClass.ON_CHIP


@dataclass(slots=True)
class DeploymentSimResult:
    """Outcome of simulating one deployment for N cycles."""

    cycles: int
    total_firings: int
    block_utilization: dict[int, float]
    channel_throughput_gbps: dict[tuple[int, int], float]
    channel_links: dict[tuple[int, int], LinkClass]
    deadlocked: bool

    @property
    def min_block_utilization(self) -> float:
        return min(self.block_utilization.values(), default=0.0)


def simulate_deployment(app: CompiledApp, placement: Placement,
                        cluster: FPGACluster,
                        cycles: int = 5000) -> DeploymentSimResult:
    """Step the app's block/channel graph under ``placement``."""
    placement.validate(app.num_blocks)
    sim = TrafficSimulator()
    graph = app.interface.channel_graph()
    nodes: dict[int, BlockNode] = {}
    for vb in range(app.num_blocks):
        nodes[vb] = sim.add_node(BlockNode(
            name=f"vb{vb}",
            is_source=graph.in_degree(vb) == 0,
            is_sink=graph.out_degree(vb) == 0,
        ))

    links: dict[tuple[int, int], LinkClass] = {}
    channels: dict[tuple[int, int], Channel] = {}
    for spec in app.interface.channels:
        key = (spec.src_block, spec.dst_block)
        link_class = link_class_for(placement, cluster, *key)
        model: LinkModel = LINKS[link_class]
        if spec.init_tokens > 0:
            # a back-edge keeps the full compiled FIFO and its
            # initialization tokens regardless of mapping: the tokens
            # must cover the whole feedback loop's latency (worst case
            # the inter-FPGA ring) or the loop throttles below full
            # rate -- which is exactly why the compiler provisions them
            # (Section 3.5.1)
            depth = spec.fifo_depth
            tokens = spec.init_tokens
        elif link_class is LinkClass.ON_CHIP:
            depth = _ON_CHIP_DEPTH
            tokens = 0
        else:
            # die- and board-crossing channels get the full FIFOs the
            # communication region provisions for them (Fig. 7 regions
            # 2/3); besides covering the credit round trip, the depth
            # provides the slack that absorbs reconvergent-path latency
            # mismatches under dynamic firing
            depth = max(spec.fifo_depth, model.round_trip_cycles())
            tokens = 0
        channel = Channel(name=f"{key[0]}->{key[1]}", link=model,
                          fifo_depth=depth, init_tokens=tokens)
        sim.connect(nodes[key[0]], nodes[key[1]], channel)
        links[key] = link_class
        channels[key] = channel

    sim.run(cycles)
    total = sim.total_fired()
    return DeploymentSimResult(
        cycles=cycles,
        total_firings=total,
        block_utilization={vb: node.utilization()
                           for vb, node in nodes.items()},
        channel_throughput_gbps={
            key: ch.throughput_gbps(cycles)
            for key, ch in channels.items()},
        channel_links=links,
        deadlocked=total == 0 and bool(nodes),
    )
