"""Link classes and their physical parameters.

The whole point of the latency-insensitive interface is that a virtual
block cannot know, at compile time, which of these links its channels will
traverse -- the runtime decides.  Parameters mirror the paper's platform
(Table 4 and Section 5.2):

- **on-chip**: the configurable routing fabric inside one die;
- **inter-die**: SLL crossings between SLRs of the package, measured at
  312.5 Gb/s in Table 4;
- **inter-FPGA**: the 100 Gb/s bidirectional QSFP ring between boards,
  with microsecond-class latency.

Cycle-domain values are expressed at the 250 MHz shell clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["LinkClass", "LinkModel", "LINKS", "SHELL_CLOCK_MHZ"]

SHELL_CLOCK_MHZ = 250.0


class LinkClass(enum.Enum):
    ON_CHIP = "on-chip"
    INTER_DIE = "inter-die"
    INTER_FPGA = "inter-fpga"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class LinkModel:
    """Physical parameters of one link class."""

    kind: LinkClass
    bandwidth_gbps: float
    latency_cycles: int
    deterministic: bool   # latency resolvable at compile time?

    @property
    def bits_per_cycle(self) -> float:
        """Payload the link moves per shell-clock cycle."""
        return self.bandwidth_gbps * 1e3 / SHELL_CLOCK_MHZ

    @property
    def latency_ns(self) -> float:
        return self.latency_cycles * 1e3 / SHELL_CLOCK_MHZ

    def round_trip_cycles(self) -> int:
        """Data + credit-return latency; the FIFO depth needed to keep
        the link saturated."""
        return 2 * self.latency_cycles + 2


LINKS: dict[LinkClass, LinkModel] = {
    LinkClass.ON_CHIP: LinkModel(
        kind=LinkClass.ON_CHIP, bandwidth_gbps=128.0,
        latency_cycles=1, deterministic=True),
    LinkClass.INTER_DIE: LinkModel(
        kind=LinkClass.INTER_DIE, bandwidth_gbps=312.5,
        latency_cycles=4, deterministic=True),
    LinkClass.INTER_FPGA: LinkModel(
        kind=LinkClass.INTER_FPGA, bandwidth_gbps=100.0,
        latency_cycles=250, deterministic=False),
}
