"""Latency-insensitive interconnect substrate.

Cycle-level models of the communication paths a deployed ViTAL application
uses, and of the latency-insensitive interface that hides their differences
(Section 3.2):

- :mod:`repro.interconnect.links` -- the three link classes (on-chip,
  inter-die, inter-FPGA) with the bandwidth/latency parameters behind
  Table 4;
- :mod:`repro.interconnect.fifo` -- bounded FIFOs and credit counters;
- :mod:`repro.interconnect.channel` -- one latency-insensitive channel
  with credit-based back-pressure and clock-enable semantics;
- :mod:`repro.interconnect.simulator` -- a dataflow-firing simulator over
  blocks and channels; drives the random-traffic microbenchmark
  (benchmark set 1) and the deadlock-freedom tests.
"""

from repro.interconnect.links import LinkClass, LinkModel, LINKS
from repro.interconnect.fifo import BoundedFifo, CreditCounter
from repro.interconnect.channel import Channel
from repro.interconnect.simulator import (
    BlockNode,
    TrafficSimulator,
    measure_channel_bandwidth,
    random_traffic_experiment,
)
from repro.interconnect.appsim import (
    DeploymentSimResult,
    link_class_for,
    simulate_deployment,
)

__all__ = [
    "DeploymentSimResult",
    "link_class_for",
    "simulate_deployment",
    "LinkClass",
    "LinkModel",
    "LINKS",
    "BoundedFifo",
    "CreditCounter",
    "Channel",
    "BlockNode",
    "TrafficSimulator",
    "measure_channel_bandwidth",
    "random_traffic_experiment",
]
