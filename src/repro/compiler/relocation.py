"""Relocation (flow step 5): retarget a mapped block without recompiling.

The paper implements this with RapidWright's APIs: the placed-and-routed
implementation of a virtual block is moved to a different physical block by
rewriting frame addresses, which is valid exactly when the two blocks are
identical (same column signature, same clock-region alignment, no die
crossing) -- the invariants :class:`repro.fabric.partition.FabricPartition`
enforces.  Without relocation, a virtual block would have to be compiled
into *every* physical block it might land on, which the paper measures as a
>10x compilation-time blowup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.bitstream import VirtualBlockImage
from repro.fabric.partition import PhysicalBlock

__all__ = ["RelocationError", "Relocator", "RelocatedImage"]

#: Frame-address rewrite rate; relocation is I/O-bound, seconds not hours.
_REWRITE_MB_PER_S = 40.0


class RelocationError(RuntimeError):
    """Raised when an image cannot be relocated to the requested block."""


@dataclass(frozen=True, slots=True)
class RelocatedImage:
    """An image bound to a concrete physical block."""

    image: VirtualBlockImage
    target: PhysicalBlock
    rewrite_time_s: float


class Relocator:
    """Step 5 of the flow, and the runtime's mapping primitive."""

    def relocate(self, image: VirtualBlockImage, target: PhysicalBlock,
                 ) -> RelocatedImage:
        """Bind ``image`` to ``target``; O(bitstream size), no recompile."""
        if image.footprint != target.footprint:
            raise RelocationError(
                f"image {image.image_id} (footprint {image.footprint!r}) "
                f"is incompatible with block {target.index} "
                f"(footprint {target.footprint!r})")
        if not image.usage.fits_in(target.capacity):
            raise RelocationError(
                f"image {image.image_id} usage {image.usage} exceeds "
                f"block {target.index} capacity {target.capacity}")
        return RelocatedImage(
            image=image,
            target=target,
            rewrite_time_s=image.size_mb / _REWRITE_MB_PER_S,
        )

    @staticmethod
    def speedup_vs_recompile(num_physical_blocks: int,
                             pnr_time_s: float,
                             rewrite_time_s: float) -> float:
        """The paper's >10x claim, quantified.

        Without relocation a virtual block must be compiled into all
        ``num_physical_blocks`` candidate locations; with it, one compile
        plus a frame rewrite per placement suffices.
        """
        without = num_physical_blocks * pnr_time_s
        with_reloc = pnr_time_s + rewrite_time_s
        return without / with_reloc
