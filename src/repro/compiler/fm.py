"""Fiduccia-Mattheyses min-cut partitioning (the classic alternative).

Section 4 chooses a *placement-based* partition because it "simultaneously
minimizes the number of inter-block connection and maximizes the operation
frequency ... by simply solving a linear equation system".  The textbook
alternative is move-based min-cut partitioning; this module implements
weighted FM bipartitioning with multi-resource balance, applied recursively
to reach any block count, exposing the same
:class:`~repro.compiler.partitioner.PartitionResult` interface so the two
algorithms are directly comparable (see the partition-algorithm ablation).

FM optimizes *cut* only -- it has no notion of which blocks end up adjacent
-- which is precisely the trade the paper's algorithm avoids: the ablation
shows FM reaching similar raw cut while the placement-based partition
additionally keeps heavy channels between *neighboring* virtual blocks.
"""

from __future__ import annotations

import heapq
import random

from repro.compiler.partitioner import PACKING_HEADROOM, blocks_for
from repro.fabric.resources import ResourceVector
from repro.netlist.dataflow import DataflowGraph
from repro.netlist.netlist import Netlist

__all__ = ["fm_bipartition", "FMPartitioner"]


def _net_weight(width_bits: int) -> float:
    return float(width_bits)


def fm_bipartition(netlist: Netlist, nodes: list[int],
                   capacity_a: ResourceVector,
                   capacity_b: ResourceVector,
                   seed: int = 0, max_passes: int = 8,
                   ) -> tuple[set[int], set[int]]:
    """Split ``nodes`` into two sides minimizing weighted cut.

    Sides must respect their capacity vectors; the initial split is a
    BFS-ish sweep in uid order (uids are roughly topological for our
    generators, which seeds FM well).  Standard FM passes follow: move
    the best-gain unlocked, balance-feasible node, lock it, and commit
    the best prefix of each pass.
    """
    rng = random.Random(seed)
    prims = netlist.primitives

    # --- initial balanced split (LPT greedy on the heaviest nodes) -----
    # heaviest-first placement onto the less-utilized side balances the
    # bottleneck resource (BRAM for our accelerators); the FM passes then
    # recover locality the greedy split destroyed
    order = sorted(nodes,
                   key=lambda u: prims[u].resources.total_cost(),
                   reverse=True)
    side: dict[int, int] = {}
    usage = [ResourceVector.zero(), ResourceVector.zero()]
    caps = (capacity_a, capacity_b)
    for uid in order:
        res = prims[uid].resources
        fits = [(usage[s] + res).fits_in(caps[s]) for s in (0, 1)]
        utils = [usage[s].utilization_of(caps[s]) for s in (0, 1)]
        if fits[0] and fits[1]:
            target = 0 if utils[0] <= utils[1] else 1
        elif fits[0] or fits[1]:
            target = 0 if fits[0] else 1
        else:
            target = 0 if utils[0] <= utils[1] else 1
        side[uid] = target
        usage[target] = usage[target] + res

    # --- net incidence limited to the node set -------------------------
    node_set = set(nodes)
    nets = []
    for net in netlist.nets.values():
        members = [u for u in net.endpoints() if u in node_set]
        if len(members) >= 2:
            nets.append((members, _net_weight(net.width_bits)))
    incident: dict[int, list[int]] = {u: [] for u in nodes}
    for i, (members, _w) in enumerate(nets):
        for u in members:
            incident[u].append(i)

    def cut_value() -> float:
        total = 0.0
        for members, w in nets:
            sides = {side[u] for u in members}
            if len(sides) > 1:
                total += w
        return total

    def gain(uid: int) -> float:
        """Cut reduction if ``uid`` moves to the other side."""
        s = side[uid]
        g = 0.0
        for i in incident[uid]:
            members, w = nets[i]
            same = sum(1 for u in members if side[u] == s)
            other = len(members) - same
            if other == 0:
                g -= w          # moving creates a cut
            elif same == 1:
                g += w          # moving removes the cut
        return g

    # --- rebalance: the topological prefix split may overflow side 1 ---
    def rebalance() -> None:
        for s in (0, 1):
            guard = 0
            while not usage[s].fits_in(caps[s]) \
                    and guard < 2 * len(nodes):
                guard += 1
                movers = sorted(
                    (u for u in nodes if side[u] == s),
                    key=gain, reverse=True)
                moved = False
                for uid in movers:
                    res = prims[uid].resources
                    if (usage[1 - s] + res).fits_in(caps[1 - s]):
                        usage[s] = usage[s] - res
                        usage[1 - s] = usage[1 - s] + res
                        side[uid] = 1 - s
                        moved = True
                        break
                if not moved:
                    break  # vector bin-packing dead end; caller retries

    rebalance()
    if not (usage[0].fits_in(caps[0]) and usage[1].fits_in(caps[1])):
        raise ValueError("FM bipartition could not balance the sides")

    best_cut = cut_value()
    for _pass in range(max_passes):
        locked: set[int] = set()
        heap = [(-gain(u), rng.random(), u) for u in nodes]
        heapq.heapify(heap)
        moves: list[int] = []
        cut_after: list[float] = []
        current = best_cut
        while heap:
            neg_g, _tie, uid = heapq.heappop(heap)
            if uid in locked:
                continue
            g = gain(uid)
            if -neg_g != g:  # stale entry: reinsert with fresh gain
                heapq.heappush(heap, (-g, rng.random(), uid))
                continue
            s = side[uid]
            res = prims[uid].resources
            if not (usage[1 - s] + res).fits_in(caps[1 - s]):
                locked.add(uid)  # cannot move this pass
                continue
            # tentatively move
            usage[s] = usage[s] - res
            usage[1 - s] = usage[1 - s] + res
            side[uid] = 1 - s
            locked.add(uid)
            current -= g
            moves.append(uid)
            cut_after.append(current)
            # neighbors' gains changed; lazy reinsertion
            for i in incident[uid]:
                for v in nets[i][0]:
                    if v not in locked:
                        heapq.heappush(heap,
                                       (-gain(v), rng.random(), v))
        if not moves:
            break
        # commit the best prefix, roll back the rest
        best_index = min(range(len(cut_after)),
                         key=lambda i: cut_after[i])
        if cut_after[best_index] >= best_cut - 1e-12:
            # no improvement: roll everything back and stop
            for uid in moves:
                res = prims[uid].resources
                s = side[uid]
                usage[s] = usage[s] - res
                usage[1 - s] = usage[1 - s] + res
                side[uid] = 1 - s
            break
        for uid in moves[best_index + 1:]:
            res = prims[uid].resources
            s = side[uid]
            usage[s] = usage[s] - res
            usage[1 - s] = usage[1 - s] + res
            side[uid] = 1 - s
        best_cut = cut_after[best_index]

    side_a = {u for u in nodes if side[u] == 0}
    side_b = {u for u in nodes if side[u] == 1}
    return side_a, side_b


class FMPartitioner:
    """Recursive-bisection FM with the NetlistPartitioner interface."""

    def __init__(self, block_capacity: ResourceVector,
                 headroom: float = PACKING_HEADROOM,
                 seed: int = 0) -> None:
        self.block_capacity = block_capacity
        self.headroom = headroom
        self.seed = seed

    def partition(self, netlist: Netlist,
                  num_blocks: int | None = None,
                  max_retries: int = 2):
        if num_blocks is None:
            num_blocks = blocks_for(netlist.resource_usage(),
                                    self.block_capacity, self.headroom)
        last_error: Exception | None = None
        for attempt in range(max_retries + 1):
            try:
                return self._attempt(netlist, num_blocks + attempt)
            except ValueError as exc:
                last_error = exc
        raise RuntimeError(
            f"FM partitioning {netlist.name} failed: {last_error}")

    def _attempt(self, netlist: Netlist, num_blocks: int):
        from repro.compiler.partitioner import PartitionResult
        usable = self.block_capacity * self.headroom
        assignment: dict[int, int] = {}

        def recurse(nodes: list[int], first_block: int,
                    k: int) -> None:
            if k == 1:
                for uid in nodes:
                    assignment[uid] = first_block
                return
            k_left = k // 2
            k_right = k - k_left
            left, right = fm_bipartition(
                netlist, nodes,
                usable * k_left, usable * k_right,
                seed=self.seed + first_block)
            recurse(sorted(left), first_block, k_left)
            recurse(sorted(right), first_block + k_left, k_right)

        recurse(sorted(netlist.primitives), 0, num_blocks)

        usage = [ResourceVector.zero() for _ in range(num_blocks)]
        for uid, block in assignment.items():
            usage[block] = usage[block] \
                + netlist.primitives[uid].resources
        flows = DataflowGraph(netlist).partition_edges(assignment)
        return PartitionResult(
            netlist=netlist,
            num_blocks=num_blocks,
            assignment=assignment,
            block_usage=usage,
            cut_bandwidth_bits=netlist.cut_bandwidth(assignment),
            flows=flows,
            placement=None,
        )
