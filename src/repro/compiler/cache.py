"""Content-addressed compile cache.

ViTAL's offline flow compiles an application against the homogeneous
abstraction exactly once; the artifact is position-independent and
relocatable forever after (Sections 3.2, 4).  This module gives the
reproduction that property operationally: a :class:`CompileCache` maps a
deterministic *fingerprint* of the compile inputs to the finished
:class:`~repro.compiler.bitstream.CompiledApp`, so any later request for
the same (spec, abstraction, flow config) is a lookup, not a recompile.

The fingerprint (:func:`compile_fingerprint`) hashes the canonical JSON
of everything the artifact is a function of:

- the :class:`~repro.hls.kernels.KernelSpec` (family, size class,
  resource footprint, work, stream width, paper block count);
- the fabric partition geometry (footprint token, per-block capacity,
  block count) -- *not* the cluster size or board identity, which is the
  paper's decoupling: one artifact serves every board;
- the flow configuration (shell clock, seed, detailed-P&R signoff flag)
  and :data:`~repro.compiler.flow.FLOW_VERSION`, bumped whenever the
  flow's semantics change so stale artifacts can never be replayed.

Entries live in a bounded in-memory LRU; with ``cache_dir`` set, each
stored artifact is also persisted as ``<fingerprint>.json`` (the
byte-stable :meth:`CompiledApp.to_json` form), surviving process exits
and shareable between processes.  Hits, misses, disk hits, evictions and
invalidations are counted, and each lookup emits a ``cache.hit`` /
``cache.miss`` trace event when a :class:`~repro.obs.tracer.Tracer` is
attached.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path

from repro.compiler.bitstream import CompiledApp
from repro.compiler.flow import FLOW_VERSION, CompilationFlow
from repro.fabric.partition import FabricPartition
from repro.hls.kernels import KernelSpec
from repro.obs.tracer import Tracer

__all__ = ["compile_fingerprint", "fingerprint_for_flow",
           "CompileCache"]


def compile_fingerprint(spec: KernelSpec,
                        fabric: FabricPartition,
                        *,
                        shell_clock_mhz: float = 250.0,
                        seed: int = 0,
                        detailed_pnr: bool = False,
                        flow_version: str = FLOW_VERSION) -> str:
    """Deterministic content address of one compile's inputs.

    Two compiles share a fingerprint iff they are guaranteed to produce
    byte-identical artifacts: same spec, same abstraction geometry, same
    flow configuration, same flow version.  Anything else -- cluster
    size, board count, tracer, wall clock -- deliberately stays out.
    """
    key = {
        "spec": {
            "family": spec.family,
            "size": spec.size.value,
            "resources": spec.resources.as_dict(),
            "work_gops": spec.work_gops,
            "stream_width_bits": spec.stream_width_bits,
            "paper_blocks": spec.paper_blocks,
        },
        "fabric": {
            "footprint": fabric.blocks[0].footprint,
            "block_capacity": fabric.block_capacity.as_dict(),
            "num_blocks": fabric.num_blocks,
        },
        "flow": {
            "shell_clock_mhz": shell_clock_mhz,
            "seed": seed,
            "detailed_pnr": detailed_pnr,
            "version": flow_version,
        },
    }
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def fingerprint_for_flow(spec: KernelSpec,
                         flow: CompilationFlow) -> str:
    """Fingerprint of compiling ``spec`` with a configured flow."""
    return compile_fingerprint(
        spec, flow.fabric,
        shell_clock_mhz=flow.shell_clock_mhz,
        seed=flow.seed,
        detailed_pnr=flow.verify_with_detailed_pnr)


class CompileCache:
    """Bounded LRU of compiled artifacts with optional disk tier.

    Attributes:
        max_entries: in-memory LRU bound (the disk tier is unbounded;
            artifacts are ~1-2 KB of JSON each).
        cache_dir: directory for the persistent tier, created on first
            use; ``None`` keeps the cache purely in-memory.
        tracer: optional tracer; lookups emit ``cache.hit`` (with a
            ``tier`` field, ``memory`` or ``disk``) and ``cache.miss``
            events so traces show exactly which compiles were avoided.
    """

    def __init__(self, max_entries: int = 256,
                 cache_dir: "str | Path | None" = None,
                 tracer: Tracer | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, "
                             f"got {max_entries}")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.tracer = tracer
        self._entries: "OrderedDict[str, CompiledApp]" = OrderedDict()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._entries:
            return True
        path = self._disk_path(fingerprint)
        return path is not None and path.exists()

    def _disk_path(self, fingerprint: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{fingerprint}.json"

    def _insert(self, fingerprint: str, app: CompiledApp) -> None:
        self._entries[fingerprint] = app
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    def get(self, fingerprint: str,
            app_name: str | None = None,
            tracer: Tracer | None = None) -> CompiledApp | None:
        """Look up one artifact; ``None`` on a miss.

        Memory hits refresh LRU recency; disk hits are promoted into
        memory.  Every lookup is traced (``app_name`` labels the event
        when the caller knows which spec it is asking for; ``tracer``
        overrides the cache's own for this lookup).
        """
        tracer = tracer or self.tracer
        app = self._entries.get(fingerprint)
        if app is not None:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            self._trace(tracer, "cache.hit", fingerprint, app_name,
                        tier="memory")
            return app
        path = self._disk_path(fingerprint)
        if path is not None and path.exists():
            app = CompiledApp.from_dict(json.loads(path.read_text()))
            self._insert(fingerprint, app)
            self.hits += 1
            self.disk_hits += 1
            self._trace(tracer, "cache.hit", fingerprint, app_name,
                        tier="disk")
            return app
        self.misses += 1
        self._trace(tracer, "cache.miss", fingerprint, app_name)
        return None

    def put(self, fingerprint: str, app: CompiledApp) -> None:
        """Store one artifact (memory, and disk when configured)."""
        self._insert(fingerprint, app)
        self.stores += 1
        path = self._disk_path(fingerprint)
        if path is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(app.to_json())

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry from every tier; True if anything was held."""
        dropped = self._entries.pop(fingerprint, None) is not None
        path = self._disk_path(fingerprint)
        if path is not None and path.exists():
            path.unlink()
            dropped = True
        if dropped:
            self.invalidations += 1
        return dropped

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier is left intact)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot, e.g. for the CLI report."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    @staticmethod
    def _trace(tracer: Tracer | None, name: str, fingerprint: str,
               app_name: str | None, **fields) -> None:
        if tracer:
            payload = {"fingerprint": fingerprint[:12], **fields}
            if app_name is not None:
                payload["app"] = app_name
            tracer.event(name, **payload)
