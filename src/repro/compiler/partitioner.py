"""Placement-based netlist partitioning (Section 4, step 2 of the flow).

Ties the pieces together: decide how many virtual blocks an application
needs, pack the netlist (Algorithm 1), run the quadratic-placement loop,
and read the partition off the placement.  Also provides the
``random_partition`` strawman used to quantify the paper's claim that the
algorithmic optimization cuts required inter-block bandwidth by ~2.1x
(Section 5.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.compiler.packing import GreedyPacker
from repro.compiler.placement import BlockGrid, PlacementResult, \
    QuadraticPlacer
from repro.fabric.resources import ResourceVector
from repro.netlist.dataflow import DataflowGraph
from repro.netlist.netlist import Netlist

__all__ = [
    "PACKING_HEADROOM",
    "blocks_for",
    "PartitionResult",
    "NetlistPartitioner",
    "random_partition",
]

#: Fraction of a physical block's capacity the partitioner is allowed to
#: fill.  Real P&R needs slack for routing and packing inefficiency; 0.73
#: reproduces the ``#Block`` column of Table 2 for 19 of the 21 designs
#: (the other two land within one block).
PACKING_HEADROOM = 0.73

#: Movable objects per virtual block handed to the placer: clusters are
#: packed to 1/8 of the usable block capacity so the placer has freedom.
CLUSTERS_PER_BLOCK = 8


def blocks_for(demand: ResourceVector, block_capacity: ResourceVector,
               headroom: float = PACKING_HEADROOM) -> int:
    """Number of virtual blocks an application of ``demand`` needs."""
    return demand.blocks_needed(block_capacity * headroom)


@dataclass(slots=True)
class PartitionResult:
    """A netlist split into virtual blocks.

    Attributes:
        netlist: the partitioned design.
        num_blocks: virtual blocks used.
        assignment: primitive uid -> virtual block id.
        block_usage: per-virtual-block resource usage.
        cut_bandwidth_bits: total width of nets crossing block boundaries
            (the quantity the Section 4 algorithm minimizes).
        flows: directed inter-block traffic, ``(src, dst) -> bits``; the
            channel list the interface generator realizes.
        placement: the raw placement outcome (diagnostics).
    """

    netlist: Netlist
    num_blocks: int
    assignment: dict[int, int]
    block_usage: list[ResourceVector]
    cut_bandwidth_bits: float
    flows: dict[tuple[int, int], float]
    placement: PlacementResult | None = None

    def validate(self, block_capacity: ResourceVector) -> None:
        """Every primitive assigned; no virtual block over capacity."""
        missing = set(self.netlist.primitives) - set(self.assignment)
        if missing:
            raise ValueError(f"{len(missing)} primitives unassigned")
        for b, usage in enumerate(self.block_usage):
            if not usage.fits_in(block_capacity):
                raise ValueError(
                    f"virtual block {b} over capacity: {usage} vs "
                    f"{block_capacity}")


class NetlistPartitioner:
    """Runs pack + place + read-off for one application netlist."""

    def __init__(self, block_capacity: ResourceVector,
                 headroom: float = PACKING_HEADROOM,
                 aspect_ratio: float = 1.0, seed: int = 0,
                 max_retries: int = 2) -> None:
        self.block_capacity = block_capacity
        self.headroom = headroom
        self.aspect_ratio = aspect_ratio
        self.seed = seed
        self.max_retries = max_retries

    # ------------------------------------------------------------------
    def partition(self, netlist: Netlist,
                  num_blocks: int | None = None) -> PartitionResult:
        """Partition ``netlist`` into virtual blocks.

        ``num_blocks`` defaults to :func:`blocks_for`; if legalization
        cannot fit the design (pathological connectivity), one extra block
        is added per retry.
        """
        demand = netlist.resource_usage()
        if num_blocks is None:
            num_blocks = blocks_for(demand, self.block_capacity,
                                    self.headroom)
        last_error: Exception | None = None
        for attempt in range(self.max_retries + 1):
            n = num_blocks + attempt
            try:
                return self._attempt(netlist, n)
            except ValueError as exc:
                last_error = exc
        raise RuntimeError(
            f"partitioning {netlist.name} failed after "
            f"{self.max_retries + 1} attempts: {last_error}")

    # ------------------------------------------------------------------
    def _attempt(self, netlist: Netlist, num_blocks: int,
                 ) -> PartitionResult:
        usable = self.block_capacity * self.headroom
        cluster_cap = usable * (1.0 / CLUSTERS_PER_BLOCK)
        packer = GreedyPacker(capacity=cluster_cap, seed=self.seed)
        clusters = packer.pack(netlist)

        grid = BlockGrid(num_blocks=num_blocks, capacity=usable,
                         aspect_ratio=self.aspect_ratio)
        placer = QuadraticPlacer(grid, seed=self.seed)
        placement = placer.place(clusters, netlist)

        assignment: dict[int, int] = {}
        for cluster in clusters:
            block = placement.assignment[cluster.uid]
            for uid in cluster.members:
                assignment[uid] = block

        result = self._finish(netlist, num_blocks, assignment, placement)
        result.validate(self.block_capacity)
        return result

    def _finish(self, netlist: Netlist, num_blocks: int,
                assignment: dict[int, int],
                placement: PlacementResult | None) -> PartitionResult:
        usage = [ResourceVector.zero() for _ in range(num_blocks)]
        for uid, block in assignment.items():
            usage[block] = usage[block] \
                + netlist.primitives[uid].resources
        flows = DataflowGraph(netlist).partition_edges(assignment)
        return PartitionResult(
            netlist=netlist,
            num_blocks=num_blocks,
            assignment=assignment,
            block_usage=usage,
            cut_bandwidth_bits=netlist.cut_bandwidth(assignment),
            flows=flows,
            placement=placement,
        )


def random_partition(netlist: Netlist, num_blocks: int,
                     block_capacity: ResourceVector,
                     headroom: float = PACKING_HEADROOM,
                     seed: int = 0) -> PartitionResult:
    """Capacity-respecting random partition: the Section 5.4 strawman.

    Primitives are dealt to blocks in shuffled order, each into the
    emptiest block that still fits it.  Connectivity is ignored entirely,
    so its cut bandwidth is what an unoptimized partition pays.
    """
    rng = random.Random(seed)
    usable = block_capacity * headroom
    order = list(netlist.primitives)
    rng.shuffle(order)
    usage = [ResourceVector.zero() for _ in range(num_blocks)]
    assignment: dict[int, int] = {}
    for uid in order:
        res = netlist.primitives[uid].resources
        choices = sorted(range(num_blocks),
                         key=lambda b: usage[b].utilization_of(usable))
        for b in choices:
            if (usage[b] + res).fits_in(usable):
                assignment[uid] = b
                usage[b] = usage[b] + res
                break
        else:  # overflow headroom rather than fail
            b = choices[0]
            assignment[uid] = b
            usage[b] = usage[b] + res
    flows = DataflowGraph(netlist).partition_edges(assignment)
    return PartitionResult(
        netlist=netlist,
        num_blocks=num_blocks,
        assignment=assignment,
        block_usage=usage,
        cut_bandwidth_bits=netlist.cut_bandwidth(assignment),
        flows=flows,
        placement=None,
    )
