"""Latency-insensitive interface generation (Section 3.3, step 3).

For every directed inter-block flow the partitioner produced, this step
emits the circuits of the latency-insensitive channel: a data FIFO, credit
based back-pressure control, and the clock-enable generator that halts the
user logic when no input is available (Section 3.2).  Buffer depths are
sized at compile time for the worst link the channel might traverse -- the
inter-FPGA ring -- because the virtual-to-physical mapping is unknown until
runtime; that is exactly the decoupling ViTAL is built around.

Deadlock freedom (Section 3.5.1) is handled constructively: every cycle in
the inter-block channel graph receives initialization tokens on its
back-edge, guaranteeing "at least one input buffer is not empty" -- the
sufficient condition of Brand & Zafiropulo the paper invokes -- and
:meth:`LatencyInsensitiveInterface.verify_deadlock_free` re-checks the
property so a buggy generator cannot ship a deadlocking interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.compiler.partitioner import PartitionResult
from repro.fabric.resources import ResourceVector

__all__ = ["ChannelSpec", "LatencyInsensitiveInterface",
           "InterfaceGenerator"]

#: Compile-time worst case: FIFO depth covering the credit round trip of
#: the inter-FPGA ring (matches the fabric BufferModel provisioning).
DEFAULT_FIFO_DEPTH = 1024
#: Physical channel width; wider flows are time-multiplexed over it.
CHANNEL_WIDTH_BITS = 512


@dataclass(frozen=True, slots=True)
class ChannelSpec:
    """One latency-insensitive channel between two virtual blocks."""

    src_block: int
    dst_block: int
    payload_bits: float        # aggregated cut width carried per cycle
    fifo_depth: int = DEFAULT_FIFO_DEPTH
    width_bits: int = CHANNEL_WIDTH_BITS
    init_tokens: int = 0       # non-zero on cycle back-edges

    @property
    def serialization_factor(self) -> float:
        """Cycles needed to move one beat of payload over the channel."""
        return max(1.0, self.payload_bits / self.width_bits)

    def control_cost(self) -> ResourceVector:
        """Credit counters, valid/ready handshake, CE generation."""
        return ResourceVector(lut=1500, dff=3000)

    def buffer_cost(self) -> ResourceVector:
        """FIFO storage for both directions (data + credit return)."""
        bits = self.width_bits * self.fifo_depth * 2
        return ResourceVector(bram_mb=bits / 1e6)


@dataclass(slots=True)
class LatencyInsensitiveInterface:
    """The generated interface of one application."""

    app_name: str
    channels: list[ChannelSpec] = field(default_factory=list)
    num_blocks: int = 0

    # ------------------------------------------------------------------
    def channel_graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_blocks))
        for ch in self.channels:
            g.add_edge(ch.src_block, ch.dst_block, spec=ch)
        return g

    def ports_required(self) -> dict[int, int]:
        """Channel endpoints per virtual block (for fabric port budgets)."""
        counts: dict[int, int] = {b: 0 for b in range(self.num_blocks)}
        for ch in self.channels:
            counts[ch.src_block] += 1
            counts[ch.dst_block] += 1
        return counts

    def total_cut_bits(self) -> float:
        return sum(ch.payload_bits for ch in self.channels)

    def resource_cost(self, count_intra_buffers: bool = False,
                      ) -> ResourceVector:
        """Interface logic cost.

        ``count_intra_buffers=False`` reflects the deployed system after
        the Section 3.5.2 optimization: whether a channel's FIFOs are
        actually instantiated depends on the runtime mapping, so callers
        that know the mapping should price buffers per channel themselves;
        this method then counts only the always-present control logic.
        """
        total = ResourceVector.zero()
        for ch in self.channels:
            total = total + ch.control_cost()
            if count_intra_buffers:
                total = total + ch.buffer_cost()
        return total

    def verify_deadlock_free(self) -> bool:
        """Check the Section 3.5.1 sufficient condition.

        Every directed cycle of the channel graph must contain at least
        one channel with initialization tokens, so that in any reachable
        state some input buffer on the cycle is non-empty.
        """
        g = self.channel_graph()
        # remove token-carrying edges; any remaining cycle is a violation
        stripped = nx.DiGraph()
        stripped.add_nodes_from(g.nodes)
        for u, v, spec in g.edges(data="spec"):
            if spec.init_tokens == 0:
                stripped.add_edge(u, v)
        return nx.is_directed_acyclic_graph(stripped)


class InterfaceGenerator:
    """Step 3 of the compilation flow."""

    def __init__(self, fifo_depth: int = DEFAULT_FIFO_DEPTH,
                 channel_width_bits: int = CHANNEL_WIDTH_BITS) -> None:
        self.fifo_depth = fifo_depth
        self.channel_width_bits = channel_width_bits

    def generate(self, partition: PartitionResult,
                 ) -> LatencyInsensitiveInterface:
        """Emit channels for every inter-block flow; break cycles with
        initialization tokens on back-edges."""
        flow_graph = nx.DiGraph()
        flow_graph.add_nodes_from(range(partition.num_blocks))
        for (src, dst), bits in sorted(partition.flows.items()):
            flow_graph.add_edge(src, dst, bits=bits)

        back_edges = self._back_edges(flow_graph)
        channels = []
        for src, dst, bits in flow_graph.edges(data="bits"):
            tokens = self.fifo_depth // 2 if (src, dst) in back_edges else 0
            channels.append(ChannelSpec(
                src_block=src, dst_block=dst, payload_bits=bits,
                fifo_depth=self.fifo_depth,
                width_bits=self.channel_width_bits,
                init_tokens=tokens,
            ))
        interface = LatencyInsensitiveInterface(
            app_name=partition.netlist.name,
            channels=channels,
            num_blocks=partition.num_blocks,
        )
        if not interface.verify_deadlock_free():
            raise RuntimeError(
                f"{partition.netlist.name}: generated interface is not "
                "deadlock-free (generator bug)")
        return interface

    @staticmethod
    def _back_edges(graph: nx.DiGraph) -> set[tuple[int, int]]:
        """A minimal-ish edge set whose removal makes the graph acyclic.

        Greedy: walk SCCs; within each non-trivial SCC, run a DFS and
        collect the edges that close cycles.
        """
        back: set[tuple[int, int]] = set()
        for scc in nx.strongly_connected_components(graph):
            if len(scc) < 2:
                # self-loop check
                for node in scc:
                    if graph.has_edge(node, node):
                        back.add((node, node))
                continue
            sub = graph.subgraph(scc).copy()
            while not nx.is_directed_acyclic_graph(sub):
                cycle = nx.find_cycle(sub)
                edge = cycle[-1][:2]
                back.add(edge)
                sub.remove_edge(*edge)
        return back
