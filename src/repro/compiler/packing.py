"""Greedy packing (Section 4.1, Algorithm 1).

Packing coarsens the netlist into clusters before global placement, cutting
the placement problem from (up to) hundreds of thousands of primitives to a
few hundred movable objects.  The algorithm is the paper's:

1. pick a random unpacked primitive as the seed of a new cluster;
2. repeatedly pack the unpacked primitive with the highest *attraction
   score* ``|S2| / |S1|``, where ``S1`` is the candidate's full neighbor
   set and ``S2`` its neighbors already inside the cluster;
3. stop when the cluster reaches the given capacity, then seed the next;
4. finally merge small clusters into others to reduce the cluster count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist

__all__ = ["Cluster", "GreedyPacker"]


@dataclass(slots=True)
class Cluster:
    """A packed group of primitives, the unit of global placement."""

    uid: int
    members: list[int] = field(default_factory=list)
    resources: ResourceVector = field(default_factory=ResourceVector.zero)

    def add(self, prim_uid: int, prim_resources: ResourceVector) -> None:
        self.members.append(prim_uid)
        self.resources = self.resources + prim_resources

    def __len__(self) -> int:
        return len(self.members)


class GreedyPacker:
    """Algorithm 1 over a netlist.

    ``capacity`` bounds each cluster's resources; ``merge_threshold`` is
    the fill fraction below which a finished cluster is considered small
    and merged into another cluster that still has room.
    """

    def __init__(self, capacity: ResourceVector,
                 merge_threshold: float = 0.25,
                 seed: int = 0) -> None:
        self.capacity = capacity
        self.merge_threshold = merge_threshold
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def pack(self, netlist: Netlist) -> list[Cluster]:
        """Pack every primitive of ``netlist`` into clusters."""
        unpacked = set(netlist.primitives)
        order = sorted(unpacked)
        self.rng.shuffle(order)
        seeds = iter(order)
        clusters: list[Cluster] = []

        while unpacked:
            seed_uid = next(s for s in seeds if s in unpacked)
            cluster = Cluster(uid=len(clusters))
            self._grow(cluster, seed_uid, netlist, unpacked)
            clusters.append(cluster)

        return self._merge_small(clusters, netlist)

    # ------------------------------------------------------------------
    def _grow(self, cluster: Cluster, seed_uid: int, netlist: Netlist,
              unpacked: set[int]) -> None:
        """Grow one cluster from a seed until capacity is reached."""
        prims = netlist.primitives
        cluster.add(seed_uid, prims[seed_uid].resources)
        unpacked.discard(seed_uid)
        in_cluster = {seed_uid}
        # candidates: unpacked neighbors of the cluster, with the count of
        # their links into the cluster (|S2|) maintained incrementally
        links_in: dict[int, int] = {}
        for nb in netlist.neighbors(seed_uid):
            if nb in unpacked:
                links_in[nb] = links_in.get(nb, 0) + 1

        while links_in:
            best_uid, best_score = -1, -1.0
            for cand, s2 in links_in.items():
                s1 = len(netlist.neighbors(cand))
                score = s2 / s1 if s1 else 0.0
                if score > best_score:
                    best_uid, best_score = cand, score
            cand_res = prims[best_uid].resources
            if not (cluster.resources + cand_res).fits_in(self.capacity):
                # capacity reached; stop growing this cluster
                break
            cluster.add(best_uid, cand_res)
            unpacked.discard(best_uid)
            in_cluster.add(best_uid)
            del links_in[best_uid]
            for nb in netlist.neighbors(best_uid):
                if nb in unpacked:
                    links_in[nb] = links_in.get(nb, 0) + 1

    def _merge_small(self, clusters: list[Cluster], netlist: Netlist,
                     ) -> list[Cluster]:
        """Merge under-filled clusters into ones with room (step 4.1 end)."""
        def fill(c: Cluster) -> float:
            return c.resources.utilization_of(self.capacity)

        big = [c for c in clusters if fill(c) >= self.merge_threshold]
        small = [c for c in clusters if fill(c) < self.merge_threshold]
        if not big:  # nothing to merge into; keep as-is
            return self._renumber(clusters)
        for orphan in small:
            host = min(
                (c for c in big
                 if (c.resources + orphan.resources).fits_in(self.capacity)),
                key=fill, default=None)
            if host is None:
                big.append(orphan)
                continue
            for uid in orphan.members:
                host.add(uid, netlist.primitives[uid].resources)
        return self._renumber(big)

    @staticmethod
    def _renumber(clusters: list[Cluster]) -> list[Cluster]:
        for i, cluster in enumerate(clusters):
            cluster.uid = i
        return clusters
