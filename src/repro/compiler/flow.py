"""The unified six-step compilation flow (Fig. 5).

``CompilationFlow.compile`` takes a kernel specification through synthesis,
partition, interface generation, local P&R, a relocation self-check and
global P&R, producing the :class:`repro.compiler.bitstream.CompiledApp`
that the System Layer's bitstream database stores.  The flow is bound to
one :class:`repro.fabric.partition.FabricPartition` -- the homogeneous
abstraction it compiles against -- but *not* to any physical location,
which is the decoupling the paper is about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compiler.bitstream import CompiledApp, VirtualBlockImage
from repro.compiler.interface_gen import InterfaceGenerator
from repro.compiler.partitioner import NetlistPartitioner
from repro.compiler.pnr import GlobalPnR, LocalPnR
from repro.compiler.relocation import Relocator
from repro.compiler.timing import CompileTimeModel
from repro.fabric.partition import FabricPartition
from repro.hls.frontend import HLSFrontend
from repro.hls.kernels import KernelSpec
from repro.obs.tracer import Tracer

__all__ = ["CompilationFlow", "FLOW_VERSION", "trace_compile_stages"]

#: Version tag of the flow's semantics, part of the compile-cache
#: fingerprint (:func:`repro.compiler.cache.compile_fingerprint`).  Bump
#: it whenever a change to the flow or its stages alters the produced
#: artifact for the same inputs -- every cached entry is then a miss.
FLOW_VERSION = "vital-flow-1"

#: the six steps of Fig. 5, in flow order, with the matching attribute
#: of :class:`repro.compiler.timing.CompileTimeBreakdown`
_STAGES = (
    ("synthesis", "synthesis_s"),
    ("partition", "partition_s"),
    ("interface_gen", "interface_gen_s"),
    ("local_pnr", "local_pnr_s"),
    ("relocation_check", "relocation_s"),
    ("global_pnr", "global_pnr_s"),
)


def trace_compile_stages(tracer: Tracer, app_name: str, breakdown,
                         wall_start: float | None = None,
                         stage_wall: list[float] | None = None) -> None:
    """Emit the six Fig. 5 stage spans plus ``compile.done``.

    Span durations are the *modeled* vendor-scale stage times, which are
    pure functions of the design -- so a compile executed inline, in a
    worker process, or replayed from a cached artifact produces the same
    trace bytes.  Measured wall clocks are attached only when the tracer
    records wall time *and* the caller has real per-stage marks (the
    inline path); replayed compiles have none to offer.
    """
    t = tracer.now
    have_wall = (tracer.record_wall and stage_wall is not None
                 and wall_start is not None)
    for i, (stage, attr) in enumerate(_STAGES):
        modeled = getattr(breakdown, attr)
        span = tracer.span(f"compile.{stage}", t=t, app=app_name)
        extra = {}
        if have_wall:
            prev = wall_start if i == 0 else stage_wall[i - 1]
            extra["wall_s"] = stage_wall[i] - prev
        span.end(t=t + modeled, **extra)
        t += modeled
    fields = {"app": app_name, "modeled_total_s": breakdown.total_s}
    if tracer.record_wall:
        fields["wall_s"] = breakdown.measured_wall_s
    tracer.event("compile.done", t=tracer.now, **fields)


@dataclass(slots=True)
class CompilationFlow:
    """Compiles kernel specifications onto a fabric partition.

    Attributes:
        fabric: the target abstraction (defines block capacity/footprint).
        frontend: synthesis substitute.
        time_model: vendor-scale compile-time model for Fig. 8 reporting.
        shell_clock_mhz: clock the deployed design must close.
        seed: base seed for the partition heuristics.
    """

    fabric: FabricPartition
    frontend: HLSFrontend = field(default_factory=HLSFrontend)
    time_model: CompileTimeModel = field(default_factory=CompileTimeModel)
    shell_clock_mhz: float = 250.0
    seed: int = 0
    #: additionally run detailed place-and-route on the fullest virtual
    #: block and require it to confirm the analytic timing verdict --
    #: slower, used as a signoff step
    verify_with_detailed_pnr: bool = False
    #: step 5 normally probes one physical block per distinct footprint
    #: (relocatability is a property of the footprint-compatibility
    #: class, and the abstraction guarantees all blocks share one); set
    #: True to relocate against every block anyway (stress testing)
    exhaustive_relocation_check: bool = False
    #: optional structured tracer: each of the six steps becomes a span
    #: (modeled vendor-scale duration; measured wall time attached only
    #: when the tracer records wall clocks, to keep traces byte-stable)
    tracer: Tracer | None = None

    def compile(self, spec: KernelSpec,
                netlist=None) -> CompiledApp:
        """Run all six steps for one application.

        ``netlist`` overrides step 1: callers that already hold a
        post-synthesis netlist (e.g. a technology-mapped
        :class:`~repro.netlist.logic.LogicNetwork`) pass it directly,
        and only steps 2-6 run.  Its resource usage must match the
        specification's footprint -- the bitstream database indexes by
        spec, so a mismatch would corrupt capacity accounting.
        """
        wall_start = time.perf_counter()
        stage_wall: list[float] = []

        def mark() -> None:
            stage_wall.append(time.perf_counter())

        # step 1: synthesis (reused front-end), unless supplied
        if netlist is None:
            netlist = self.frontend.synthesize(spec)
        else:
            usage = netlist.resource_usage()
            if not usage.fits_in(spec.resources * 1.001):
                raise ValueError(
                    f"{spec.name}: netlist usage {usage} exceeds the "
                    f"declared footprint {spec.resources}")
        mark()

        # step 2: partition (custom tool)
        partitioner = NetlistPartitioner(
            block_capacity=self.fabric.block_capacity, seed=self.seed)
        partition = partitioner.partition(netlist)
        mark()

        # step 3: latency-insensitive interface generation (custom tool)
        interface = InterfaceGenerator().generate(partition)
        mark()

        # step 4: local place-and-route (reused vendor back-end)
        local = LocalPnR(block_capacity=self.fabric.block_capacity,
                         footprint=self.fabric.blocks[0].footprint)
        placed = local.run(partition)
        mark()

        # step 5: relocation self-check (custom tool): every image must be
        # movable to every physical block of the partition.  Relocation
        # compatibility is decided by the footprint alone, so one probe
        # per distinct footprint proves the whole class; the exhaustive
        # per-block sweep stays available for stress testing.
        relocator = Relocator()
        probe = placed[0]
        image0 = VirtualBlockImage.from_placed(spec.name, probe)
        if self.exhaustive_relocation_check:
            targets = self.fabric.blocks
        else:
            seen_footprints: set[str] = set()
            targets = [b for b in self.fabric.blocks
                       if not (b.footprint in seen_footprints
                               or seen_footprints.add(b.footprint))]
        for target in targets:
            relocator.relocate(image0, target)
        mark()
        # wall time of the custom tools: steps 2, 3 and 5 (the reused
        # vendor back-ends of steps 4 and 6 are modeled, not ours)
        measured_custom = (stage_wall[2] - stage_wall[0]) \
            + (stage_wall[4] - stage_wall[3])

        # step 6: global place-and-route (reused vendor back-end)
        result = GlobalPnR(self.shell_clock_mhz).run(placed, interface)
        mark()
        if not result.meets_shell_clock:
            raise RuntimeError(
                f"{spec.name}: fmax {result.fmax_mhz:.0f} MHz misses the "
                f"{self.shell_clock_mhz:.0f} MHz shell clock")

        if self.verify_with_detailed_pnr:
            # signoff: actually place-and-route the fullest block and
            # confirm it, too, closes the shell clock
            from repro.compiler.detailed_pnr import \
                detailed_place_and_route
            fullest = max(range(partition.num_blocks),
                          key=lambda vb: partition.block_usage[vb]
                          .utilization_of(self.fabric.block_capacity))
            detail = detailed_place_and_route(
                netlist, partition, fullest,
                self.fabric.block_capacity, seed=self.seed)
            if not detail.routed \
                    or detail.fmax_mhz < self.shell_clock_mhz:
                raise RuntimeError(
                    f"{spec.name}: detailed P&R signoff failed "
                    f"(routed={detail.routed}, "
                    f"fmax={detail.fmax_mhz:.0f} MHz)")

        breakdown = self.time_model.breakdown(
            luts=spec.resources.lut, measured_custom_s=measured_custom)
        breakdown.measured_wall_s = time.perf_counter() - wall_start

        if self.tracer:
            trace_compile_stages(self.tracer, spec.name, breakdown,
                                 wall_start=wall_start,
                                 stage_wall=stage_wall)

        app = CompiledApp(
            spec=spec,
            images=[VirtualBlockImage.from_placed(spec.name, p)
                    for p in placed],
            interface=interface,
            fmax_mhz=result.fmax_mhz,
            footprint=self.fabric.blocks[0].footprint,
            breakdown=breakdown,
            cut_bandwidth_bits=partition.cut_bandwidth_bits,
            flows=dict(partition.flows),
        )
        app.validate()
        return app
