"""Compilation Layer: the six-step ViTAL flow (Section 3.3, Fig. 5).

1. **Synthesis** -- high-level code to a primitive netlist (reused
   front-end; here :mod:`repro.hls`).
2. **Partition** -- netlist into virtual blocks, minimizing inter-block
   bandwidth (:mod:`repro.compiler.packing`,
   :mod:`repro.compiler.placement`, :mod:`repro.compiler.partitioner`;
   the Section 4 algorithm).
3. **Latency-insensitive interface generation**
   (:mod:`repro.compiler.interface_gen`).
4. **Local place-and-route** -- each virtual block into a physical block
   (:mod:`repro.compiler.pnr`).
5. **Relocation** -- retarget a mapped block without recompilation
   (:mod:`repro.compiler.relocation`).
6. **Global place-and-route** -- integrate and finalize
   (:mod:`repro.compiler.pnr`).

:mod:`repro.compiler.flow` orchestrates the steps and
:mod:`repro.compiler.timing` models the vendor-tool runtimes that dominate
the Fig. 8 breakdown.  :mod:`repro.compiler.cache` content-addresses the
finished artifacts (compile once, ever) and
:mod:`repro.compiler.service` fans independent compiles out across
worker processes.
"""

from repro.compiler.packing import Cluster, GreedyPacker
from repro.compiler.placement import BlockGrid, PlacementResult, QuadraticPlacer
from repro.compiler.partitioner import (
    PACKING_HEADROOM,
    PartitionResult,
    NetlistPartitioner,
    blocks_for,
    random_partition,
)
from repro.compiler.interface_gen import (
    ChannelSpec,
    LatencyInsensitiveInterface,
    InterfaceGenerator,
)
from repro.compiler.pnr import LocalPnR, GlobalPnR, PlacedVirtualBlock
from repro.compiler.relocation import Relocator, RelocationError
from repro.compiler.bitstream import VirtualBlockImage, CompiledApp
from repro.compiler.timing import CompileTimeModel, CompileTimeBreakdown
from repro.compiler.flow import CompilationFlow, FLOW_VERSION
from repro.compiler.cache import CompileCache, compile_fingerprint
from repro.compiler.service import CompileService
from repro.compiler.techmap import LUTNetwork, MappedLUT, technology_map
from repro.compiler.frames import (
    PartialBitstream,
    relocate_bitstream,
    FrameRelocationError,
)
from repro.compiler.fm import FMPartitioner, fm_bipartition
from repro.compiler.detailed_pnr import (
    BinGrid,
    DetailedPnRResult,
    detailed_place_and_route,
)

__all__ = [
    "Cluster",
    "GreedyPacker",
    "BlockGrid",
    "PlacementResult",
    "QuadraticPlacer",
    "PACKING_HEADROOM",
    "PartitionResult",
    "NetlistPartitioner",
    "blocks_for",
    "random_partition",
    "ChannelSpec",
    "LatencyInsensitiveInterface",
    "InterfaceGenerator",
    "LocalPnR",
    "GlobalPnR",
    "PlacedVirtualBlock",
    "Relocator",
    "RelocationError",
    "VirtualBlockImage",
    "CompiledApp",
    "CompileTimeModel",
    "CompileTimeBreakdown",
    "CompilationFlow",
    "FLOW_VERSION",
    "CompileCache",
    "compile_fingerprint",
    "CompileService",
    "LUTNetwork",
    "MappedLUT",
    "technology_map",
    "PartialBitstream",
    "relocate_bitstream",
    "FrameRelocationError",
    "BinGrid",
    "DetailedPnRResult",
    "detailed_place_and_route",
    "FMPartitioner",
    "fm_bipartition",
]
