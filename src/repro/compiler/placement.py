"""Global placement for partitioning (Section 4.2).

The packed clusters are placed onto a pre-defined 2D space in which each
virtual block occupies a grid cell; the placement then *is* the partition
(a cluster belongs to the block whose cell it lands in).  The paper's
four-step loop is implemented faithfully:

1. **Solve linear equation system** -- classic quadratic placement: with a
   clique net model, minimizing Eq. 1 reduces to two Laplacian systems
   (Eq. 2), solved with scipy's sparse solver (the paper uses Eigen).
2. **Create legal placement** -- simulated annealing over the
   cluster-to-block assignment with the Eq. 3 cost (mean move distance
   plus an over-utilization penalty), followed by a greedy
   density-preserving refinement pass (the POLAR-style recovery).
3. **Add pseudo clusters/connections** -- each cluster gets an anchor at
   its legalized position with weight beta (Eq. 4).
4. **Repeat** with slowly increasing beta until the quadratic wirelength
   of the legal placement is within 20% of the relaxed solution.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import spsolve

from repro.compiler.packing import Cluster
from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist

__all__ = ["BlockGrid", "PlacementResult", "QuadraticPlacer"]

#: Nets with more endpoints than this are treated as broadcast/control and
#: skipped by the wirelength model (a clique over them would swamp the
#: system with meaningless pairs).
_MAX_CLIQUE = 24


@dataclass(frozen=True, slots=True)
class BlockGrid:
    """The pre-defined 2D space: one cell per virtual block.

    Attributes:
        num_blocks: number of virtual blocks the design is split into.
        capacity: resources one virtual block offers to user logic.
        aspect_ratio: the paper's alpha -- relative cost of x-distance.
    """

    num_blocks: int
    capacity: ResourceVector
    aspect_ratio: float = 1.0

    @property
    def cols(self) -> int:
        return max(1, math.ceil(math.sqrt(self.num_blocks)))

    @property
    def rows(self) -> int:
        return math.ceil(self.num_blocks / self.cols)

    def center(self, block: int) -> tuple[float, float]:
        """Center coordinates of a block's cell."""
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range")
        return (block % self.cols + 0.5, block // self.cols + 0.5)

    def nearest_block(self, x: float, y: float) -> int:
        """The block whose cell contains (or is nearest to) a point."""
        col = min(self.cols - 1, max(0, int(x)))
        row = min(self.rows - 1, max(0, int(y)))
        block = row * self.cols + col
        if block >= self.num_blocks:  # last row may be ragged
            block = self.num_blocks - 1
        return block

    def neighbors(self, block: int) -> list[int]:
        col, row = block % self.cols, block // self.cols
        out = []
        for dc, dr in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            c, r = col + dc, row + dr
            if 0 <= c < self.cols and 0 <= r < self.rows:
                b = r * self.cols + c
                if b < self.num_blocks:
                    out.append(b)
        return out


@dataclass(slots=True)
class PlacementResult:
    """Outcome of the placement loop."""

    positions: dict[int, tuple[float, float]]   # cluster -> relaxed (x, y)
    assignment: dict[int, int]                  # cluster -> block index
    qp_wirelength: float                        # Eq. 1 at relaxed positions
    legal_wirelength: float                     # Eq. 1 at block centers
    iterations: int

    @property
    def gap(self) -> float:
        """Relative gap between legal and relaxed wirelength."""
        if self.qp_wirelength == 0:
            return 0.0
        return (self.legal_wirelength - self.qp_wirelength) \
            / self.qp_wirelength


class QuadraticPlacer:
    """The Section 4.2 placement loop over packed clusters."""

    def __init__(self, grid: BlockGrid, seed: int = 0,
                 beta0: float = 0.05, beta_growth: float = 2.0,
                 gap_target: float = 0.20, max_iterations: int = 8,
                 sa_moves: int = 4000, sa_t0: float = 1.0,
                 overflow_penalty: float = 100.0) -> None:
        self.grid = grid
        self.rng = random.Random(seed)
        self.beta0 = beta0
        self.beta_growth = beta_growth
        self.gap_target = gap_target
        self.max_iterations = max_iterations
        self.sa_moves = sa_moves
        self.sa_t0 = sa_t0
        self.overflow_penalty = overflow_penalty

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def place(self, clusters: list[Cluster], netlist: Netlist,
              ) -> PlacementResult:
        """Run the full loop: QP -> legalize -> anchors -> repeat."""
        index = {c.uid: i for i, c in enumerate(clusters)}
        edges = self._cluster_edges(clusters, netlist, index)
        n = len(clusters)
        if n == 0:
            raise ValueError("cannot place an empty cluster list")

        laplacian = self._laplacian(n, edges)
        anchors = self._io_anchors(clusters, netlist, index)
        positions = self._solve(laplacian, anchors, n)

        assignment = self._legalize(clusters, positions, edges)
        legal_wl = self._wirelength(self._centers(assignment, n), edges)
        qp_wl = self._wirelength(positions, edges)

        beta = self.beta0
        iterations = 1
        while iterations < self.max_iterations:
            gap = (legal_wl - qp_wl) / qp_wl if qp_wl else 0.0
            if gap <= self.gap_target:
                break
            pseudo = dict(anchors)
            centers = self._centers(assignment, n)
            for i in range(n):
                x, y = centers[i]
                pseudo[i] = (x, y, pseudo.get(i, (0, 0, 0))[2] + beta)
            positions = self._solve(laplacian, pseudo, n)
            assignment = self._legalize(clusters, positions, edges)
            legal_wl = self._wirelength(self._centers(assignment, n), edges)
            qp_wl = self._wirelength(positions, edges)
            beta *= self.beta_growth
            iterations += 1

        return PlacementResult(
            positions={clusters[i].uid: tuple(positions[i])
                       for i in range(n)},
            assignment={clusters[i].uid: assignment[i] for i in range(n)},
            qp_wirelength=qp_wl,
            legal_wirelength=legal_wl,
            iterations=iterations,
        )

    # ------------------------------------------------------------------
    # net model and linear system
    # ------------------------------------------------------------------
    def _cluster_edges(self, clusters: list[Cluster], netlist: Netlist,
                       index: dict[int, int],
                       ) -> dict[tuple[int, int], float]:
        """Clique-model edges between cluster indices, weight-aggregated."""
        prim_to_cluster: dict[int, int] = {}
        for cluster in clusters:
            ci = index[cluster.uid]
            for uid in cluster.members:
                prim_to_cluster[uid] = ci
        edges: dict[tuple[int, int], float] = {}
        for net in netlist.nets.values():
            ends = net.endpoints()
            if len(ends) > _MAX_CLIQUE:
                continue
            touched = sorted({prim_to_cluster[u] for u in ends
                              if u in prim_to_cluster})
            if len(touched) < 2:
                continue
            w = net.width_bits / (len(touched) - 1)
            for a_idx, a in enumerate(touched):
                for b in touched[a_idx + 1:]:
                    key = (a, b)
                    edges[key] = edges.get(key, 0.0) + w
        return edges

    @staticmethod
    def _laplacian(n: int, edges: dict[tuple[int, int], float],
                   ) -> csr_matrix:
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        diag = [0.0] * n
        for (a, b), w in edges.items():
            rows.extend((a, b))
            cols.extend((b, a))
            vals.extend((-w, -w))
            diag[a] += w
            diag[b] += w
        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag)
        return coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()

    def _io_anchors(self, clusters: list[Cluster], netlist: Netlist,
                    index: dict[int, int],
                    ) -> dict[int, tuple[float, float, float]]:
        """Pin clusters holding IO pads to the grid edges.

        Input streams arrive at the left edge, outputs leave at the right,
        mirroring the fixed positions of the communication region.  The
        anchors also make the Laplacian system positive definite.
        """
        prim_to_cluster: dict[int, int] = {}
        for cluster in clusters:
            for uid in cluster.members:
                prim_to_cluster[uid] = index[cluster.uid]
        anchors: dict[int, tuple[float, float, float]] = {}
        mid_y = self.grid.rows / 2.0
        for port in netlist.ports:
            ci = prim_to_cluster.get(port.primitive_uid)
            if ci is None:
                continue
            x = 0.0 if port.direction.value == "input" else float(
                self.grid.cols)
            anchors[ci] = (x, mid_y, 10.0)
        if not anchors:
            # fall back to one weak anchor to avoid a singular system
            anchors[0] = (self.grid.cols / 2.0, mid_y, 0.01)
        return anchors

    def _solve(self, laplacian: csr_matrix,
               anchors: dict[int, tuple[float, float, float]],
               n: int) -> np.ndarray:
        """Solve Eq. 2 / Eq. 4 for both axes; returns an (n, 2) array.

        A vanishing regularization anchor at the grid center is added to
        every cluster so isolated clusters (zero Laplacian rows) keep the
        system positive definite; its weight is far below any real net.
        """
        mat = laplacian.tolil(copy=True)
        bx = np.zeros(n)
        by = np.zeros(n)
        eps = 1e-6
        cx, cy = self.grid.cols / 2.0, self.grid.rows / 2.0
        for i in range(n):
            mat[i, i] += eps
            bx[i] += eps * cx
            by[i] += eps * cy
        for i, (x, y, beta) in anchors.items():
            mat[i, i] += beta
            bx[i] += beta * x
            by[i] += beta * y
        mat = mat.tocsr()
        xs = spsolve(mat, bx)
        ys = spsolve(mat, by)
        return np.column_stack((np.atleast_1d(xs), np.atleast_1d(ys)))

    # ------------------------------------------------------------------
    # legalization (step 2)
    # ------------------------------------------------------------------
    def _legalize(self, clusters: list[Cluster], positions: np.ndarray,
                  edges: dict[tuple[int, int], float]) -> list[int]:
        """SA legalization with the Eq. 3 cost, then greedy refinement.

        The inner loop runs ``sa_moves`` times per placement iteration and
        dominated the whole compile in profiles, almost entirely in
        :class:`ResourceVector` allocation and property recomputation.  It
        therefore works on flat per-component float arrays, performing the
        exact same IEEE operations in the same order as the vector algebra
        it replaces -- accept/reject decisions, and hence results, are
        bit-identical to the original formulation.
        """
        n = len(clusters)
        grid = self.grid
        num_blocks = grid.num_blocks
        cols = grid.cols
        aspect = grid.aspect_ratio
        penalty = self.overflow_penalty
        rng = self.rng
        inf = math.inf

        # per-block cell centers and per-cluster demand/position, unpacked
        # once so the loop touches only local floats
        cx = [b % cols + 0.5 for b in range(num_blocks)]
        cy = [b // cols + 0.5 for b in range(num_blocks)]
        px = [float(positions[i][0]) for i in range(n)]
        py = [float(positions[i][1]) for i in range(n)]
        r_lut = [c.resources.lut for c in clusters]
        r_dff = [c.resources.dff for c in clusters]
        r_dsp = [c.resources.dsp for c in clusters]
        r_bram = [c.resources.bram_mb for c in clusters]
        cap = grid.capacity
        cap_lut, cap_dff = cap.lut, cap.dff
        cap_dsp, cap_bram = cap.dsp, cap.bram_mb

        assignment = [grid.nearest_block(px[i], py[i]) for i in range(n)]
        u_lut = [0.0] * num_blocks
        u_dff = [0.0] * num_blocks
        u_dsp = [0.0] * num_blocks
        u_bram = [0.0] * num_blocks
        for i, b in enumerate(assignment):
            u_lut[b] += r_lut[i]
            u_dff[b] += r_dff[i]
            u_dsp[b] += r_dsp[i]
            u_bram[b] += r_bram[i]

        def overflow_term() -> float:
            # mirrors ResourceVector.fits_in / utilization_of, component
            # order preserved (lut, dff, dsp, bram) for identical floats
            total = 0.0
            for b in range(num_blocks):
                lut, dff = u_lut[b], u_dff[b]
                dsp, bram = u_dsp[b], u_bram[b]
                if (lut <= cap_lut and dff <= cap_dff
                        and dsp <= cap_dsp and bram <= cap_bram):
                    continue
                worst = 0.0
                if lut != 0:
                    if cap_lut == 0:
                        total += penalty * inf
                        continue
                    worst = max(worst, lut / cap_lut)
                if dff != 0:
                    if cap_dff == 0:
                        total += penalty * inf
                        continue
                    worst = max(worst, dff / cap_dff)
                if dsp != 0:
                    if cap_dsp == 0:
                        total += penalty * inf
                        continue
                    worst = max(worst, dsp / cap_dsp)
                if bram != 0:
                    if cap_bram == 0:
                        total += penalty * inf
                        continue
                    worst = max(worst, bram / cap_bram)
                total += penalty * worst
            return total / num_blocks

        def move_term(i: int, b: int) -> float:
            return (aspect * abs(cx[b] - px[i]) + abs(cy[b] - py[i])) / n

        move_total = 0.0
        for i in range(n):
            move_total += move_term(i, assignment[i])
        cost = move_total + overflow_term()

        temperature = self.sa_t0
        cooling = 0.995
        for _ in range(self.sa_moves):
            i = rng.randrange(n)
            old_b = assignment[i]
            new_b = rng.randrange(num_blocks)
            if new_b == old_b:
                continue
            lut, dff, dsp, bram = r_lut[i], r_dff[i], r_dsp[i], r_bram[i]
            u_lut[old_b] -= lut
            u_dff[old_b] -= dff
            u_dsp[old_b] -= dsp
            u_bram[old_b] -= bram
            u_lut[new_b] += lut
            u_dff[new_b] += dff
            u_dsp[new_b] += dsp
            u_bram[new_b] += bram
            new_move_total = (move_total - move_term(i, old_b)
                              + move_term(i, new_b))
            new_cost = new_move_total + overflow_term()
            delta = new_cost - cost
            if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-9)):
                assignment[i] = new_b
                move_total = new_move_total
                cost = new_cost
            else:
                u_lut[old_b] += lut
                u_dff[old_b] += dff
                u_dsp[old_b] += dsp
                u_bram[old_b] += bram
                u_lut[new_b] -= lut
                u_dff[new_b] -= dff
                u_dsp[new_b] -= dsp
                u_bram[new_b] -= bram
            temperature *= cooling

        usage = [ResourceVector(u_lut[b], u_dff[b], u_dsp[b], u_bram[b])
                 for b in range(num_blocks)]
        self._refine(clusters, assignment, usage, edges)
        return assignment

    def _refine(self, clusters: list[Cluster], assignment: list[int],
                usage: list[ResourceVector],
                edges: dict[tuple[int, int], float]) -> None:
        """Recovery pass: move clusters to adjacent blocks when that
        reduces wirelength without creating over-utilization (the
        density-preserving refinement adapted from POLAR)."""
        grid = self.grid
        cols = grid.cols
        aspect = grid.aspect_ratio
        cx = [b % cols + 0.5 for b in range(grid.num_blocks)]
        cy = [b // cols + 0.5 for b in range(grid.num_blocks)]
        neighbor_w: dict[int, list[tuple[int, float]]] = {}
        for (a, b), w in edges.items():
            neighbor_w.setdefault(a, []).append((b, w))
            neighbor_w.setdefault(b, []).append((a, w))

        def star_cost(i: int, block: int) -> float:
            x, y = cx[block], cy[block]
            total = 0.0
            for j, w in neighbor_w.get(i, ()):  # current partner positions
                jb = assignment[j]
                total += w * (aspect * (x - cx[jb]) ** 2
                              + (y - cy[jb]) ** 2)
            return total

        for i in range(len(clusters)):
            here = assignment[i]
            best_block, best_cost = here, star_cost(i, here)
            for cand in grid.neighbors(here):
                new_usage = usage[cand] + clusters[i].resources
                if not new_usage.fits_in(grid.capacity):
                    continue
                cand_cost = star_cost(i, cand)
                if cand_cost < best_cost:
                    best_block, best_cost = cand, cand_cost
            if best_block != here:
                usage[here] = usage[here] - clusters[i].resources
                usage[best_block] = usage[best_block] \
                    + clusters[i].resources
                assignment[i] = best_block

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _centers(self, assignment: list[int], n: int) -> np.ndarray:
        return np.array([self.grid.center(assignment[i])
                         for i in range(n)])

    def _wirelength(self, positions: np.ndarray,
                    edges: dict[tuple[int, int], float]) -> float:
        """Eq. 1: weighted quadratic wirelength."""
        total = 0.0
        alpha = self.grid.aspect_ratio
        for (a, b), w in edges.items():
            dx = positions[a][0] - positions[b][0]
            dy = positions[a][1] - positions[b][1]
            total += w * (alpha * dx * dx + dy * dy)
        return total
