"""Compile-time cost model (Fig. 8).

Our substitute stack runs on macro-granular netlists in seconds, but the
Fig. 8 claim is about the *vendor* flow on full netlists: place-and-route
dominates (83.9%), synthesis takes most of the rest, and ViTAL's custom
tools add only ~1.6%.  This model prices each step against the design's
real primitive count (its LUT footprint), with constants calibrated to
public Vivado runtimes for UltraScale+ designs of this class:

- synthesis   ~ 6.0 ms per LUT      (a 165k-LUT design: ~16 min)
- place&route ~ 35 ms per LUT + fixed overhead (165k LUTs: ~1.7 h),
  split 83/17 between local and global P&R;
- custom tools ~ 0.6 ms per LUT     (partition dominates; 165k: ~100 s).

The model deliberately reports the *measured* wall time of our own custom
tools alongside, so the bench can show both the modeled vendor-scale
breakdown and the actual cost of the algorithms in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CompileTimeModel", "CompileTimeBreakdown"]

_SYNTH_S_PER_LUT = 6.0e-3
_PNR_S_PER_LUT = 3.5e-2
_PNR_FIXED_S = 120.0
_CUSTOM_S_PER_LUT = 6.0e-4
_LOCAL_PNR_SHARE = 0.83
#: Within the custom tools: partition dominates, as in the paper.
_CUSTOM_SPLIT = {"partition": 0.80, "interface_gen": 0.12,
                 "relocation": 0.08}


@dataclass(slots=True)
class CompileTimeBreakdown:
    """Per-step compile time of one application, seconds."""

    synthesis_s: float
    partition_s: float
    interface_gen_s: float
    local_pnr_s: float
    relocation_s: float
    global_pnr_s: float
    measured_custom_s: float = 0.0  # wall time of our actual tools
    #: measured wall time of the whole flow run (all six steps as they
    #: actually executed in this repository, not the vendor model)
    measured_wall_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def total_s(self) -> float:
        return (self.synthesis_s + self.partition_s + self.interface_gen_s
                + self.local_pnr_s + self.relocation_s + self.global_pnr_s)

    @property
    def pnr_s(self) -> float:
        return self.local_pnr_s + self.global_pnr_s

    @property
    def custom_s(self) -> float:
        """Time in ViTAL's custom tools (steps 2, 3 and 5)."""
        return self.partition_s + self.interface_gen_s + self.relocation_s

    @property
    def pnr_fraction(self) -> float:
        return self.pnr_s / self.total_s

    @property
    def custom_fraction(self) -> float:
        return self.custom_s / self.total_s

    @property
    def synthesis_fraction(self) -> float:
        return self.synthesis_s / self.total_s

    def as_dict(self) -> dict[str, float]:
        return {
            "synthesis_s": self.synthesis_s,
            "partition_s": self.partition_s,
            "interface_gen_s": self.interface_gen_s,
            "local_pnr_s": self.local_pnr_s,
            "relocation_s": self.relocation_s,
            "global_pnr_s": self.global_pnr_s,
        }

    @staticmethod
    def aggregate(items: "list[CompileTimeBreakdown]",
                  ) -> "CompileTimeBreakdown":
        """Sum of several breakdowns (whole-benchmark-set totals)."""
        if not items:
            raise ValueError("nothing to aggregate")
        return CompileTimeBreakdown(
            synthesis_s=sum(b.synthesis_s for b in items),
            partition_s=sum(b.partition_s for b in items),
            interface_gen_s=sum(b.interface_gen_s for b in items),
            local_pnr_s=sum(b.local_pnr_s for b in items),
            relocation_s=sum(b.relocation_s for b in items),
            global_pnr_s=sum(b.global_pnr_s for b in items),
            measured_custom_s=sum(b.measured_custom_s for b in items),
            measured_wall_s=sum(b.measured_wall_s for b in items),
        )


@dataclass(slots=True)
class CompileTimeModel:
    """Vendor-calibrated per-step cost model."""

    synth_s_per_lut: float = _SYNTH_S_PER_LUT
    pnr_s_per_lut: float = _PNR_S_PER_LUT
    pnr_fixed_s: float = _PNR_FIXED_S
    custom_s_per_lut: float = _CUSTOM_S_PER_LUT
    local_pnr_share: float = _LOCAL_PNR_SHARE
    custom_split: dict[str, float] = field(
        default_factory=lambda: dict(_CUSTOM_SPLIT))

    def breakdown(self, luts: float,
                  measured_custom_s: float = 0.0) -> CompileTimeBreakdown:
        """Breakdown for a design of ``luts`` look-up tables."""
        if luts <= 0:
            raise ValueError("design must contain logic")
        synth = self.synth_s_per_lut * luts
        pnr = self.pnr_s_per_lut * luts + self.pnr_fixed_s
        custom = self.custom_s_per_lut * luts
        return CompileTimeBreakdown(
            synthesis_s=synth,
            partition_s=custom * self.custom_split["partition"],
            interface_gen_s=custom * self.custom_split["interface_gen"],
            local_pnr_s=pnr * self.local_pnr_share,
            relocation_s=custom * self.custom_split["relocation"],
            global_pnr_s=pnr * (1.0 - self.local_pnr_share),
            measured_custom_s=measured_custom_s,
        )

    def pnr_time_s(self, luts: float) -> float:
        return self.pnr_s_per_lut * luts + self.pnr_fixed_s
