"""Technology mapping: gate network -> K-input LUT network (Fig. 3b).

"In the second sub-step (technology mapping), the logic gates in the
netlist are further mapped into appropriate-size LUTs and flip-flops."

The mapper is a depth-oriented cone mapper in the FlowMap tradition,
simplified to greedy cone growing: gates are visited in topological
order; each gate tries to absorb its fanin cones as long as the merged
cone's *leaf* count stays within K, which collapses chains and small
trees into single LUTs.  Every mapped LUT stores an explicit truth table
computed by exhaustively simulating its cone over its leaves, so
equivalence with the source network is checked by construction and
re-checked by the tests on random vectors.

Flip-flops pass through unmapped (they become FF primitives and cut the
combinational cones, as on real fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.logic import GateOp, LogicNetwork
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.primitives import PrimitiveType

__all__ = ["MappedLUT", "LUTNetwork", "technology_map"]


@dataclass(slots=True)
class MappedLUT:
    """One K-input LUT: leaves plus an explicit truth table."""

    uid: int
    leaves: tuple[int, ...]       # gate uids feeding this LUT
    truth: tuple[bool, ...]       # 2**len(leaves) entries, LSB-first
    root: int                     # the gate this LUT's output realizes

    def evaluate(self, leaf_values: "list[bool]") -> bool:
        index = 0
        for i, bit in enumerate(leaf_values):
            if bit:
                index |= 1 << i
        return self.truth[index]


@dataclass(slots=True)
class LUTNetwork:
    """The mapped design: LUTs, pass-through FFs and port bindings."""

    name: str
    k: int
    luts: dict[int, MappedLUT] = field(default_factory=dict)
    #: FF uid -> the driver gate uid of its D pin (post-mapping signal)
    flops: dict[int, int] = field(default_factory=dict)
    inputs: dict[str, int] = field(default_factory=dict)
    outputs: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_luts(self) -> int:
        return len(self.luts)

    def depth(self) -> int:
        """LUT levels on the longest combinational path."""
        memo: dict[int, int] = {}

        def level(signal: int) -> int:
            if signal in memo:
                return memo[signal]
            lut = self.luts.get(signal)
            if lut is None:  # primary input or FF output
                memo[signal] = 0
            else:
                memo[signal] = 1 + max((level(leaf)
                                        for leaf in lut.leaves),
                                       default=0)
            return memo[signal]

        targets = list(self.outputs.values()) + list(self.flops.values())
        return max((level(t) for t in targets), default=0)

    def evaluate(self, assignment: dict[str, bool],
                 state: dict[int, bool] | None = None,
                 ) -> tuple[dict[str, bool], dict[int, bool]]:
        """Reference evaluation mirroring ``LogicNetwork.evaluate``."""
        state = state or {}
        values: dict[int, bool] = {}

        def value(signal: int) -> bool:
            if signal in values:
                return values[signal]
            if signal in self.flops:
                out = state.get(signal, False)
            elif signal in self.luts:
                lut = self.luts[signal]
                out = lut.evaluate([value(leaf)
                                    for leaf in lut.leaves])
            else:
                name = self._input_name(signal)
                out = assignment[name]
            values[signal] = out
            return out

        outputs = {name: value(uid)
                   for name, uid in self.outputs.items()}
        next_state = {ff: value(d) for ff, d in self.flops.items()}
        return outputs, next_state

    def _input_name(self, signal: int) -> str:
        for name, uid in self.inputs.items():
            if uid == signal:
                return name
        raise KeyError(f"signal {signal} is not an input")

    # ------------------------------------------------------------------
    def to_netlist(self) -> Netlist:
        """Lower to the physical-IR :class:`~repro.netlist.Netlist`."""
        netlist = Netlist(self.name)
        prim_of: dict[int, int] = {}
        for name, uid in self.inputs.items():
            port = netlist.add_port(name, PortDirection.INPUT, 1)
            prim_of[uid] = port.primitive_uid
        for signal in self.luts:
            prim_of[signal] = netlist.add_primitive(
                PrimitiveType.LUT, name=f"lut{signal}")
        for ff in self.flops:
            prim_of[ff] = netlist.add_primitive(
                PrimitiveType.FF, name=f"ff{ff}")
        for signal, lut in self.luts.items():
            for leaf in lut.leaves:
                netlist.add_net(prim_of[leaf], [prim_of[signal]])
        for ff, driver in self.flops.items():
            netlist.add_net(prim_of[driver], [prim_of[ff]])
        for name, uid in self.outputs.items():
            port = netlist.add_port(name, PortDirection.OUTPUT, 1)
            netlist.add_net(prim_of[uid], [port.primitive_uid])
        netlist.validate()
        return netlist


# ----------------------------------------------------------------------
def technology_map(network: LogicNetwork, k: int = 6) -> LUTNetwork:
    """Map ``network`` onto K-input LUTs; raises on k < 2."""
    if k < 2:
        raise ValueError("LUTs need at least 2 inputs")

    # cone per combinational gate: the set of leaves (inputs/FF outputs
    # or other cone roots) it is computed from
    cone: dict[int, tuple[int, ...]] = {}
    order = sorted(network.gates)  # uids are topological by construction

    def is_leaf_kind(uid: int) -> bool:
        return network.gates[uid].op in (GateOp.INPUT, GateOp.FF)

    roots: set[int] = set()
    for uid in order:
        gate = network.gates[uid]
        if gate.op in (GateOp.INPUT, GateOp.FF):
            continue
        if gate.op in (GateOp.CONST0, GateOp.CONST1):
            cone[uid] = ()
            continue
        # baseline: every distinct fanin is a leaf (gate arity <= k is
        # required); then greedily absorb fanin cones, smallest first,
        # whenever the merged leaf set still fits in one LUT
        leaves = list(dict.fromkeys(gate.fanins))
        if len(leaves) > k:
            raise RuntimeError(
                f"gate {uid} has {len(leaves)} fanins > k={k} "
                "(decompose wide gates before mapping)")
        absorbable = sorted(
            (f for f in leaves
             if not is_leaf_kind(f) and f not in roots),
            key=lambda f: len(cone[f]))
        for fanin in absorbable:
            merged = [x for x in leaves if x != fanin]
            for leaf in cone[fanin]:
                if leaf not in merged:
                    merged.append(leaf)
            if len(merged) <= k:
                leaves = merged
            else:
                roots.add(fanin)
        cone[uid] = tuple(leaves)

    # every output and FF D-pin pins a root
    for uid in network.outputs.values():
        if not is_leaf_kind(uid):
            roots.add(uid)
    for gate_uid, gate in network.gates.items():
        if gate.op is GateOp.FF and not is_leaf_kind(gate.fanins[0]):
            roots.add(gate.fanins[0])

    # build truth tables by simulating each root's cone
    mapped = LUTNetwork(name=network.name, k=k)
    mapped.inputs = dict(network.inputs)
    mapped.outputs = dict(network.outputs)
    for ff_uid, gate in network.gates.items():
        if gate.op is GateOp.FF:
            mapped.flops[ff_uid] = gate.fanins[0]

    def simulate(root: int, leaf_values: dict[int, bool]) -> bool:
        gate = network.gates[root]
        if root in leaf_values:
            return leaf_values[root]
        if gate.op is GateOp.CONST0:
            return False
        if gate.op is GateOp.CONST1:
            return True
        vals = [simulate(f, leaf_values) for f in gate.fanins]
        if gate.op is GateOp.BUF:
            return vals[0]
        if gate.op is GateOp.NOT:
            return not vals[0]
        if gate.op is GateOp.AND:
            return all(vals)
        if gate.op is GateOp.OR:
            return any(vals)
        return sum(vals) % 2 == 1  # XOR

    for root in sorted(roots):
        leaves = cone[root]
        # truth-table index arithmetic treats leaves[0] as the LSB
        truth = [False] * (1 << len(leaves))
        for index in range(1 << len(leaves)):
            assignment = {leaf: bool(index >> i & 1)
                          for i, leaf in enumerate(leaves)}
            truth[index] = simulate(root, assignment)
        mapped.luts[root] = MappedLUT(uid=root, leaves=leaves,
                                      truth=tuple(truth), root=root)
    return mapped
