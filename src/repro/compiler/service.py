"""Offline compilation service: cached, optionally parallel.

ViTAL's compiles are embarrassingly parallel -- each application targets
the same homogeneous abstraction and shares nothing with its neighbours
(Section 3.2) -- so the offline phase fans independent compiles out
across processes.  :class:`CompileService` layers the two mechanisms of
this package:

1. every request is first resolved against an optional
   :class:`~repro.compiler.cache.CompileCache` (one compile per distinct
   (spec, abstraction, flow config), ever);
2. the remaining cache misses are compiled either inline (``jobs=1``,
   the reference path for determinism debugging) or on a
   ``ProcessPoolExecutor`` (``jobs>1``).

Workers ship artifacts back in the canonical
:meth:`~repro.compiler.bitstream.CompiledApp.to_dict` form -- a pure
function of the compile inputs -- plus their measured wall clocks as
separate values, so a parallel compile is *bit-identical* to a
sequential one while profiling data still reflects reality.  Results
merge in input-spec order (deterministic: callers pass a deterministic
spec list), and compile-stage trace spans are emitted in that same
order from the modeled breakdown, which is why a trace produced with
``jobs=4`` or a warm cache matches the sequential cold trace byte for
byte, modulo the ``cache.*`` lookup events.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.compiler.bitstream import CompiledApp
from repro.compiler.cache import CompileCache, fingerprint_for_flow
from repro.compiler.flow import CompilationFlow, trace_compile_stages
from repro.fabric.partition import FabricPartition
from repro.hls.kernels import KernelSpec
from repro.obs.tracer import Tracer

__all__ = ["CompileService"]


def _mp_context():
    """Fork when the platform has it (cheap, no re-import); else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


#: per-worker flow, built once by the pool initializer so repeated
#: compiles in one worker reuse the frontend and time model
_WORKER_FLOW: CompilationFlow | None = None


def _worker_init(fabric: FabricPartition, shell_clock_mhz: float,
                 seed: int, detailed_pnr: bool) -> None:
    global _WORKER_FLOW
    _WORKER_FLOW = CompilationFlow(
        fabric=fabric, shell_clock_mhz=shell_clock_mhz, seed=seed,
        verify_with_detailed_pnr=detailed_pnr)


def _worker_compile(spec: KernelSpec) -> tuple[dict, float, float]:
    """Compile one spec; returns (canonical dict, measured walls)."""
    app = _WORKER_FLOW.compile(spec)
    return (app.to_dict(), app.breakdown.measured_custom_s,
            app.breakdown.measured_wall_s)


@dataclass(slots=True)
class CompileService:
    """Compiles spec sets against one fabric abstraction.

    Attributes mirror :class:`~repro.compiler.flow.CompilationFlow`'s
    configuration (they define the cache fingerprint); ``cache`` and
    ``tracer`` are optional collaborators.
    """

    fabric: FabricPartition
    cache: CompileCache | None = None
    shell_clock_mhz: float = 250.0
    seed: int = 0
    verify_with_detailed_pnr: bool = False
    tracer: Tracer | None = None

    def _flow(self, tracer: Tracer | None = None) -> CompilationFlow:
        return CompilationFlow(
            fabric=self.fabric,
            shell_clock_mhz=self.shell_clock_mhz,
            seed=self.seed,
            verify_with_detailed_pnr=self.verify_with_detailed_pnr,
            tracer=tracer)

    def fingerprint(self, spec: KernelSpec) -> str:
        """The cache fingerprint this service assigns to ``spec``."""
        return fingerprint_for_flow(spec, self._flow())

    # ------------------------------------------------------------------
    def compile_one(self, spec: KernelSpec) -> CompiledApp:
        """Compile (or fetch) a single application inline."""
        return self.compile_many([spec])[spec.name]

    def compile_many(self, specs, jobs: int = 1,
                     ) -> dict[str, CompiledApp]:
        """Compile every spec, reusing cached artifacts.

        Args:
            specs: iterable of :class:`KernelSpec`; names must be
                unique (they key the result dict).
            jobs: worker processes for the cache misses.  ``1``
                compiles inline in this process.

        Returns:
            ``{spec.name: CompiledApp}`` in input order.
        """
        specs = list(specs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate spec names: {dupes}")

        # pass 1: resolve against the cache (emits cache.hit/cache.miss
        # events for every lookup, before any compile span -- so the
        # event order is identical however the misses then execute)
        hits: dict[str, CompiledApp] = {}
        fingerprints: dict[str, str] = {}
        misses: list[KernelSpec] = []
        for spec in specs:
            if self.cache is None:
                misses.append(spec)
                continue
            fp = self.fingerprint(spec)
            fingerprints[spec.name] = fp
            app = self.cache.get(fp, app_name=spec.name,
                                 tracer=self.tracer)
            if app is None:
                misses.append(spec)
            else:
                hits[spec.name] = app

        # pass 2: compile the misses
        parallel = jobs > 1 and len(misses) > 1
        compiled: dict[str, CompiledApp] = {}
        if parallel:
            compiled = self._compile_parallel(misses, jobs)
        flow = self._flow(tracer=self.tracer)

        # pass 3: merge in input order, emitting one set of compile
        # spans per app (inline compiles emit as they run; cached and
        # worker-compiled apps replay the modeled spans, which are the
        # same bytes)
        results: dict[str, CompiledApp] = {}
        for spec in specs:
            if spec.name in hits:
                app = hits[spec.name]
                if self.tracer:
                    trace_compile_stages(self.tracer, spec.name,
                                         app.breakdown)
            else:
                if parallel:
                    app = compiled[spec.name]
                    if self.tracer:
                        trace_compile_stages(self.tracer, spec.name,
                                             app.breakdown)
                else:
                    app = flow.compile(spec)
                if self.cache is not None:
                    self.cache.put(fingerprints[spec.name], app)
            results[spec.name] = app
        return results

    # ------------------------------------------------------------------
    def _compile_parallel(self, specs: list[KernelSpec],
                          jobs: int) -> dict[str, CompiledApp]:
        workers = min(jobs, len(specs))
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=_mp_context(),
                initializer=_worker_init,
                initargs=(self.fabric, self.shell_clock_mhz, self.seed,
                          self.verify_with_detailed_pnr)) as pool:
            payloads = list(pool.map(_worker_compile, specs))
        out: dict[str, CompiledApp] = {}
        for spec, (data, custom_s, wall_s) in zip(specs, payloads):
            app = CompiledApp.from_dict(data)
            # measured wall clocks ride outside the canonical payload:
            # they are profiling data, not part of the artifact
            app.breakdown.measured_custom_s = custom_s
            app.breakdown.measured_wall_s = wall_s
            out[spec.name] = app
        return out
