"""Compilation artifacts: per-virtual-block images and the compiled app.

A :class:`VirtualBlockImage` is the position-independent unit the runtime
deploys: the partial bitstream of one virtual block, compiled once against
the physical-block *footprint* and relocatable to any physical block with
that footprint (Section 3.3, step 5).  A :class:`CompiledApp` bundles all
of an application's images with its latency-insensitive interface and the
metadata the System Layer's databases index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.compiler.interface_gen import LatencyInsensitiveInterface
from repro.compiler.pnr import PlacedVirtualBlock
from repro.compiler.timing import CompileTimeBreakdown
from repro.fabric.resources import ResourceVector
from repro.hls.kernels import KernelSpec

__all__ = ["VirtualBlockImage", "CompiledApp"]

#: Partial-bitstream size of one physical block, MB (frame count scales
#: with block area; a full XCVU37P bitstream is ~180 MB over 15 blocks
#: plus shell).
BLOCK_BITSTREAM_MB = 9.5


@dataclass(frozen=True, slots=True)
class VirtualBlockImage:
    """One relocatable partial bitstream."""

    app_name: str
    virtual_block: int
    footprint: str
    usage: ResourceVector
    fmax_mhz: float
    size_mb: float = BLOCK_BITSTREAM_MB

    @property
    def image_id(self) -> str:
        digest = hashlib.sha1(
            f"{self.app_name}/{self.virtual_block}/{self.footprint}"
            .encode()).hexdigest()
        return digest[:12]

    @classmethod
    def from_placed(cls, app_name: str, placed: PlacedVirtualBlock,
                    ) -> "VirtualBlockImage":
        return cls(app_name=app_name,
                   virtual_block=placed.virtual_block,
                   footprint=placed.footprint,
                   usage=placed.usage,
                   fmax_mhz=placed.fmax_mhz)


@dataclass(slots=True)
class CompiledApp:
    """Everything the runtime needs to deploy one application."""

    spec: KernelSpec
    images: list[VirtualBlockImage]
    interface: LatencyInsensitiveInterface
    fmax_mhz: float
    footprint: str
    breakdown: CompileTimeBreakdown
    cut_bandwidth_bits: float = 0.0
    flows: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_blocks(self) -> int:
        """Virtual blocks (= physical blocks needed at deploy time)."""
        return len(self.images)

    @property
    def resources(self) -> ResourceVector:
        return self.spec.resources

    def service_time_s(self) -> float:
        """Nominal single-FPGA job execution time (roofline)."""
        return self.spec.service_time_s()

    def validate(self) -> None:
        if not self.images:
            raise ValueError(f"{self.name}: compiled app has no images")
        footprints = {img.footprint for img in self.images}
        if footprints != {self.footprint}:
            raise ValueError(f"{self.name}: mixed footprints {footprints}")
        ids = {img.virtual_block for img in self.images}
        if ids != set(range(self.num_blocks)):
            raise ValueError(f"{self.name}: non-contiguous block ids {ids}")
        if not self.interface.verify_deadlock_free():
            raise ValueError(f"{self.name}: interface may deadlock")
