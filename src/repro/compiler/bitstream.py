"""Compilation artifacts: per-virtual-block images and the compiled app.

A :class:`VirtualBlockImage` is the position-independent unit the runtime
deploys: the partial bitstream of one virtual block, compiled once against
the physical-block *footprint* and relocatable to any physical block with
that footprint (Section 3.3, step 5).  A :class:`CompiledApp` bundles all
of an application's images with its latency-insensitive interface and the
metadata the System Layer's databases index.

:meth:`CompiledApp.to_dict` / :meth:`CompiledApp.from_dict` give the
canonical serialized form.  The dict is *deterministic*: it contains only
quantities that are pure functions of (spec, fabric abstraction, flow
config) -- the wall-clock profiling fields of the compile-time breakdown
are deliberately excluded -- so serializing the same artifact twice, or an
artifact produced by a different worker process, yields byte-identical
JSON.  The compile cache and the bitstream-database persistence both rely
on this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.compiler.interface_gen import (
    ChannelSpec,
    LatencyInsensitiveInterface,
)
from repro.compiler.pnr import PlacedVirtualBlock
from repro.compiler.timing import CompileTimeBreakdown
from repro.fabric.resources import ResourceVector
from repro.hls.kernels import KernelSpec, SizeClass

__all__ = ["VirtualBlockImage", "CompiledApp"]

#: Partial-bitstream size of one physical block, MB (frame count scales
#: with block area; a full XCVU37P bitstream is ~180 MB over 15 blocks
#: plus shell).
BLOCK_BITSTREAM_MB = 9.5


@dataclass(frozen=True, slots=True)
class VirtualBlockImage:
    """One relocatable partial bitstream."""

    app_name: str
    virtual_block: int
    footprint: str
    usage: ResourceVector
    fmax_mhz: float
    size_mb: float = BLOCK_BITSTREAM_MB

    @property
    def image_id(self) -> str:
        digest = hashlib.sha1(
            f"{self.app_name}/{self.virtual_block}/{self.footprint}"
            .encode()).hexdigest()
        return digest[:12]

    @classmethod
    def from_placed(cls, app_name: str, placed: PlacedVirtualBlock,
                    ) -> "VirtualBlockImage":
        return cls(app_name=app_name,
                   virtual_block=placed.virtual_block,
                   footprint=placed.footprint,
                   usage=placed.usage,
                   fmax_mhz=placed.fmax_mhz)


@dataclass(slots=True)
class CompiledApp:
    """Everything the runtime needs to deploy one application."""

    spec: KernelSpec
    images: list[VirtualBlockImage]
    interface: LatencyInsensitiveInterface
    fmax_mhz: float
    footprint: str
    breakdown: CompileTimeBreakdown
    cut_bandwidth_bits: float = 0.0
    flows: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_blocks(self) -> int:
        """Virtual blocks (= physical blocks needed at deploy time)."""
        return len(self.images)

    @property
    def resources(self) -> ResourceVector:
        return self.spec.resources

    def service_time_s(self) -> float:
        """Nominal single-FPGA job execution time (roofline)."""
        return self.spec.service_time_s()

    def validate(self) -> None:
        if not self.images:
            raise ValueError(f"{self.name}: compiled app has no images")
        footprints = {img.footprint for img in self.images}
        if footprints != {self.footprint}:
            raise ValueError(f"{self.name}: mixed footprints {footprints}")
        ids = {img.virtual_block for img in self.images}
        if ids != set(range(self.num_blocks)):
            raise ValueError(f"{self.name}: non-contiguous block ids {ids}")
        if not self.interface.verify_deadlock_free():
            raise ValueError(f"{self.name}: interface may deadlock")

    # ------------------------------------------------------------------
    # canonical serialization (deterministic round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic dict form of the artifact.

        Contains every deploy-relevant field and the *modeled* compile
        breakdown; the measured wall-clock fields
        (``measured_custom_s`` / ``measured_wall_s``) are excluded so the
        dict is a pure function of the compile inputs -- two compiles of
        the same (spec, abstraction, flow config) serialize to identical
        bytes regardless of machine, process, or run.
        """
        return {
            "spec": {
                "family": self.spec.family,
                "size": self.spec.size.value,
                "resources": self.spec.resources.as_dict(),
                "work_gops": self.spec.work_gops,
                "stream_width_bits": self.spec.stream_width_bits,
                "paper_blocks": self.spec.paper_blocks,
            },
            "footprint": self.footprint,
            "fmax_mhz": self.fmax_mhz,
            "cut_bandwidth_bits": self.cut_bandwidth_bits,
            "flows": [[src, dst, bits]
                      for (src, dst), bits in sorted(self.flows.items())],
            "images": [
                {
                    "virtual_block": img.virtual_block,
                    "usage": img.usage.as_dict(),
                    "fmax_mhz": img.fmax_mhz,
                    "size_mb": img.size_mb,
                }
                for img in sorted(self.images,
                                  key=lambda im: im.virtual_block)
            ],
            "channels": [
                {
                    "src": ch.src_block,
                    "dst": ch.dst_block,
                    "payload_bits": ch.payload_bits,
                    "fifo_depth": ch.fifo_depth,
                    "width_bits": ch.width_bits,
                    "init_tokens": ch.init_tokens,
                }
                for ch in self.interface.channels
            ],
            "breakdown": self.breakdown.as_dict(),
        }

    def to_json(self) -> str:
        """Byte-stable canonical JSON (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "CompiledApp":
        """Reconstruct an artifact; validates before returning."""
        spec_data = data["spec"]
        spec = KernelSpec(
            family=spec_data["family"],
            size=SizeClass(spec_data["size"]),
            resources=ResourceVector(**spec_data["resources"]),
            work_gops=spec_data["work_gops"],
            stream_width_bits=spec_data["stream_width_bits"],
            paper_blocks=spec_data["paper_blocks"],
        )
        images = [
            VirtualBlockImage(
                app_name=spec.name,
                virtual_block=img["virtual_block"],
                footprint=data["footprint"],
                usage=ResourceVector(**img["usage"]),
                fmax_mhz=img["fmax_mhz"],
                size_mb=img["size_mb"],
            )
            for img in data["images"]
        ]
        channels = [
            ChannelSpec(
                src_block=ch["src"], dst_block=ch["dst"],
                payload_bits=ch["payload_bits"],
                fifo_depth=ch["fifo_depth"],
                width_bits=ch["width_bits"],
                init_tokens=ch["init_tokens"],
            )
            for ch in data["channels"]
        ]
        interface = LatencyInsensitiveInterface(
            app_name=spec.name, channels=channels,
            num_blocks=len(images))
        b = data["breakdown"]
        breakdown = CompileTimeBreakdown(
            synthesis_s=b["synthesis_s"],
            partition_s=b["partition_s"],
            interface_gen_s=b["interface_gen_s"],
            local_pnr_s=b["local_pnr_s"],
            relocation_s=b["relocation_s"],
            global_pnr_s=b["global_pnr_s"],
            measured_custom_s=b.get("measured_custom_s", 0.0),
        )
        app = cls(
            spec=spec,
            images=images,
            interface=interface,
            fmax_mhz=data["fmax_mhz"],
            footprint=data["footprint"],
            breakdown=breakdown,
            cut_bandwidth_bits=data["cut_bandwidth_bits"],
            flows={(src, dst): bits
                   for src, dst, bits in data["flows"]},
        )
        app.validate()
        return app
