"""Configuration frames: the bit-level substrate of relocation.

Xilinx devices are configured in *frames* -- fixed-size columns of
configuration bits addressed by (block type, row, column, minor).  A
partial bitstream is a sequence of (frame address, payload) writes plus a
CRC.  Relocating an implementation from one physical block to another
(RapidWright's trick, flow step 5) is a pure *frame-address rewrite*: the
payloads are untouched, each address's row field is rebased from the
source block's frame window to the target's, and the CRC is recomputed.

This module models exactly that, which pins down why relocation is only
legal between identical blocks: the rewrite is a bijection between frame
windows only when the two blocks span congruent column/row ranges.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.fabric.partition import PhysicalBlock

__all__ = ["FrameAddress", "ConfigFrame", "PartialBitstream",
           "frame_window", "relocate_bitstream", "FrameRelocationError"]

#: Words per configuration frame (UltraScale+: 93 x 32-bit words).
FRAME_WORDS = 93
#: Frames per tile row of one column (model constant).
FRAMES_PER_TILE_ROW = 1


class FrameRelocationError(RuntimeError):
    """Frame-address rewrite between incompatible windows."""


@dataclass(frozen=True, slots=True, order=True)
class FrameAddress:
    """(row, column, minor) address of one configuration frame."""

    row: int
    column: int
    minor: int = 0

    def rebased(self, row_delta: int) -> "FrameAddress":
        return FrameAddress(row=self.row + row_delta,
                            column=self.column, minor=self.minor)


@dataclass(frozen=True, slots=True)
class ConfigFrame:
    """One frame write: address plus payload."""

    address: FrameAddress
    payload: bytes

    def __post_init__(self) -> None:
        if len(self.payload) != FRAME_WORDS * 4:
            raise ValueError(
                f"frame payload must be {FRAME_WORDS * 4} bytes, "
                f"got {len(self.payload)}")


def frame_window(block: PhysicalBlock,
                 num_columns: int) -> tuple[range, range]:
    """(row range, column range) of a physical block's frame window.

    Rows are tile rows in *device-global* coordinates: the die index and
    the block's position within the die determine the offset.
    """
    first_row = (block.die_index * 10_000
                 + block.clock_region_row * block.tile_rows
                 // block.height_clock_regions)
    return (range(first_row, first_row + block.tile_rows),
            range(0, num_columns))


class PartialBitstream:
    """An ordered frame sequence with a trailing CRC."""

    def __init__(self, frames: list[ConfigFrame]) -> None:
        addresses = [f.address for f in frames]
        if len(set(addresses)) != len(addresses):
            raise ValueError("duplicate frame addresses")
        self.frames = sorted(frames, key=lambda f: f.address)
        self.crc = self._compute_crc()

    # ------------------------------------------------------------------
    @classmethod
    def for_block(cls, block: PhysicalBlock, num_columns: int,
                  seed: int = 0) -> "PartialBitstream":
        """Synthesize a plausible bitstream filling a block's window.

        One frame per (tile row, column); payload bytes are a cheap
        deterministic function of the seed so distinct designs produce
        distinct bitstreams (tests rely on payload stability).
        """
        rows, cols = frame_window(block, num_columns)
        frames = []
        for row in rows:
            for col in cols:
                raw = (seed * 2654435761 + row * 97 + col) & 0xFFFFFFFF
                payload = raw.to_bytes(4, "little") * FRAME_WORDS
                frames.append(ConfigFrame(
                    address=FrameAddress(row=row, column=col),
                    payload=payload))
        return cls(frames)

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def size_bytes(self) -> int:
        return self.num_frames * FRAME_WORDS * 4

    def _compute_crc(self) -> int:
        crc = 0
        for frame in self.frames:
            crc = zlib.crc32(frame.payload, crc)
            crc = zlib.crc32(
                f"{frame.address.row}/{frame.address.column}/"
                f"{frame.address.minor}".encode(), crc)
        return crc

    def verify(self) -> bool:
        """Re-derive the CRC; False indicates corruption."""
        return self.crc == self._compute_crc()

    def payload_digest(self) -> int:
        """CRC over payloads only (address-independent): relocation must
        preserve this exactly."""
        crc = 0
        for frame in self.frames:
            crc = zlib.crc32(frame.payload, crc)
        return crc


def relocate_bitstream(bitstream: PartialBitstream,
                       source: PhysicalBlock, target: PhysicalBlock,
                       num_columns: int) -> PartialBitstream:
    """Rewrite frame addresses from ``source``'s window to ``target``'s.

    Payloads are byte-identical; only row fields move.  Raises
    :class:`FrameRelocationError` when the windows are not congruent
    (different footprints) or the bitstream strays outside the source
    window (a corrupted or foreign bitstream).
    """
    if source.footprint != target.footprint:
        raise FrameRelocationError(
            f"windows not congruent: {source.footprint!r} vs "
            f"{target.footprint!r}")
    src_rows, src_cols = frame_window(source, num_columns)
    dst_rows, _ = frame_window(target, num_columns)
    if len(src_rows) != len(dst_rows):
        raise FrameRelocationError("row windows differ in height")
    delta = dst_rows.start - src_rows.start
    rewritten = []
    for frame in bitstream.frames:
        if frame.address.row not in src_rows \
                or frame.address.column not in src_cols:
            raise FrameRelocationError(
                f"frame {frame.address} outside the source window")
        rewritten.append(ConfigFrame(
            address=frame.address.rebased(delta),
            payload=frame.payload))
    return PartialBitstream(rewritten)
