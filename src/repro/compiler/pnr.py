"""Simulated local and global place-and-route (flow steps 4 and 6).

The paper reuses Vivado's P&R; this substitute models the two properties
the stack consumes:

- **feasibility and quality** -- a virtual block's logic is placed into the
  physical-block footprint, yielding a utilization, a wirelength estimate
  and an achievable clock frequency (congestion degrades timing);
- **position independence** -- the result is tied to a *footprint*, not a
  location: any physical block with the same footprint accepts the image
  (which is what makes step 5, relocation, possible).

Frequency model: the critical path is a pipeline stage's logic depth plus
a routing term that grows with block utilization (congestion).  Constants
are set so a ~70%-full block closes timing at the 250 MHz shell clock with
margin, and a pathologically full block does not -- the qualitative behavior
vendor tools exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.interface_gen import LatencyInsensitiveInterface
from repro.compiler.partitioner import PartitionResult
from repro.fabric.resources import ResourceVector

__all__ = ["PlacedVirtualBlock", "LocalPnR", "GlobalPnR"]

#: Raw fabric limits (ns) for the timing model.
_LOGIC_DELAY_NS = 0.12        # one LUT level, UltraScale+ class
_BASE_WIRE_NS = 0.45          # routing at low congestion
_CONGESTION_WIRE_NS = 2.2     # extra routing delay at 100% utilization
_PIPELINE_LOGIC_LEVELS = 8    # levels between registers inside macros
#: The latency-insensitive interface itself closes timing at this clock.
INTERFACE_FMAX_MHZ = 450.0


@dataclass(frozen=True, slots=True)
class PlacedVirtualBlock:
    """Mapping of one virtual block into the physical-block footprint."""

    virtual_block: int
    usage: ResourceVector
    utilization: float
    wirelength_estimate: float
    fmax_mhz: float
    footprint: str

    def meets_timing(self, clock_mhz: float) -> bool:
        return self.fmax_mhz >= clock_mhz


class LocalPnR:
    """Step 4: map each virtual block into a physical-block footprint."""

    def __init__(self, block_capacity: ResourceVector,
                 footprint: str) -> None:
        self.block_capacity = block_capacity
        self.footprint = footprint

    def run(self, partition: PartitionResult,
            ) -> list[PlacedVirtualBlock]:
        placed = []
        for vb, usage in enumerate(partition.block_usage):
            util = usage.utilization_of(self.block_capacity)
            if util > 1.0:
                raise ValueError(
                    f"virtual block {vb} of {partition.netlist.name} "
                    f"does not fit its footprint (util={util:.2f})")
            placed.append(PlacedVirtualBlock(
                virtual_block=vb,
                usage=usage,
                utilization=util,
                wirelength_estimate=self._wirelength(usage),
                fmax_mhz=self._fmax(util),
                footprint=self.footprint,
            ))
        return placed

    @staticmethod
    def _wirelength(usage: ResourceVector) -> float:
        """Half-perimeter-style estimate: grows as area^1.5 (Rent-ish)."""
        cells = max(1.0, usage.lut)
        return cells ** 1.5 / 1e3

    @staticmethod
    def _fmax(utilization: float) -> float:
        logic = _PIPELINE_LOGIC_LEVELS * _LOGIC_DELAY_NS
        wire = _BASE_WIRE_NS + _CONGESTION_WIRE_NS * utilization ** 2
        return 1e3 / (logic + wire)


@dataclass(frozen=True, slots=True)
class GlobalPnRResult:
    """Step 6 outcome: the integrated design."""

    fmax_mhz: float
    worst_block_fmax_mhz: float
    routed_channels: int
    meets_shell_clock: bool


class GlobalPnR:
    """Step 6: integrate placed blocks + interface, finalize timing.

    Channels land in the communication region whose circuits are
    pre-implemented, so integration succeeds as long as every block closed
    timing and the interface clock holds.
    """

    def __init__(self, shell_clock_mhz: float = 250.0) -> None:
        self.shell_clock_mhz = shell_clock_mhz

    def run(self, placed: list[PlacedVirtualBlock],
            interface: LatencyInsensitiveInterface) -> GlobalPnRResult:
        if not placed:
            raise ValueError("no placed blocks to integrate")
        worst = min(p.fmax_mhz for p in placed)
        fmax = min(worst, INTERFACE_FMAX_MHZ)
        return GlobalPnRResult(
            fmax_mhz=fmax,
            worst_block_fmax_mhz=worst,
            routed_channels=len(interface.channels),
            meets_shell_clock=fmax >= self.shell_clock_mhz,
        )
