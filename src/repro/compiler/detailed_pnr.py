"""Detailed intra-block place-and-route.

The analytic :class:`repro.compiler.pnr.LocalPnR` prices a virtual block's
feasibility and timing from utilization alone -- fast, and calibrated, but
a model.  This module implements the real thing at the granularity our
netlists carry: the macros of one virtual block are *placed* into a binned
version of the physical block's tile grid (greedy seed + simulated
annealing on half-perimeter wirelength with bin-capacity penalties), and
their nets are *routed* over the bin graph with PathFinder-style
negotiated congestion.  Timing then follows from actual placed distances
instead of a utilization proxy.

The point is not speed -- vendor tools spend hours here (Fig. 8); it is to
demonstrate the full path and to sanity-check the analytic model: the
detailed fmax agrees with the calibrated model within tens of MHz for the
Table 2 designs (asserted in the tests).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass

from repro.compiler.partitioner import PartitionResult
from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist

__all__ = ["BinGrid", "DetailedPnRResult", "detailed_place_and_route"]

_LOGIC_DELAY_NS = 0.12
_PIPELINE_LOGIC_LEVELS = 8
_WIRE_NS_PER_BIN = 0.18       # one bin hop of routed wire
_BASE_WIRE_NS = 0.25


@dataclass(slots=True)
class BinGrid:
    """The physical block's tile grid, coarsened into square bins."""

    cols: int
    rows: int
    bin_capacity: ResourceVector
    #: routing wires crossing each bin boundary
    channel_capacity: int = 64

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError("grid needs at least one bin")

    @classmethod
    def for_block(cls, block_capacity: ResourceVector,
                  cols: int = 8, rows: int = 6,
                  fill_target: float = 0.85) -> "BinGrid":
        """Bins sized so a legally partitioned block fits at
        ``fill_target`` density.

        LUT/DFF spread uniformly over all bins; DSP and BRAM live in
        full-height hard-IP columns, so a bin can draw on its whole
        column's worth of them (a BRAM-heavy buffer macro legally
        concentrates in one spot, as it does on silicon).
        """
        area_share = 1.0 / (cols * rows * fill_target)
        column_share = 1.0 / (cols * fill_target)
        per_bin = ResourceVector(
            lut=block_capacity.lut * area_share,
            dff=block_capacity.dff * area_share,
            dsp=block_capacity.dsp * column_share,
            bram_mb=block_capacity.bram_mb * column_share,
        )
        return cls(cols=cols, rows=rows, bin_capacity=per_bin)

    @property
    def num_bins(self) -> int:
        return self.cols * self.rows

    def position(self, bin_index: int) -> tuple[int, int]:
        return bin_index % self.cols, bin_index // self.cols

    def index(self, x: int, y: int) -> int:
        return y * self.cols + x

    def neighbors(self, bin_index: int) -> list[int]:
        x, y = self.position(bin_index)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.cols and 0 <= ny < self.rows:
                out.append(self.index(nx, ny))
        return out


@dataclass(slots=True)
class DetailedPnRResult:
    """Outcome of detailed P&R for one virtual block."""

    placement: dict[int, int]          # macro uid -> bin index
    hpwl: float                        # total half-perimeter wirelength
    routed: bool                       # router converged (no overuse)
    max_channel_use: int
    router_iterations: int
    critical_path_ns: float
    fmax_mhz: float
    overflow_bins: int = 0


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def _block_nets(netlist: Netlist, members: set[int]):
    """Nets fully or partially inside the block, clipped to members."""
    nets = []
    for net in netlist.nets.values():
        inside = [u for u in net.endpoints() if u in members]
        if len(inside) >= 2:
            nets.append((inside, net.width_bits))
    return nets


def _hpwl(nets, placement, grid: BinGrid) -> float:
    total = 0.0
    for members, width in nets:
        xs = [grid.position(placement[u])[0] for u in members]
        ys = [grid.position(placement[u])[1] for u in members]
        total += (max(xs) - min(xs) + max(ys) - min(ys)) \
            * math.log2(1 + width)
    return total


def _place(netlist: Netlist, members: list[int], grid: BinGrid,
           rng: random.Random, sa_moves: int) -> tuple[dict[int, int],
                                                       float, int]:
    """Greedy seed + SA; returns placement, hpwl, overflowing bins."""
    prims = netlist.primitives
    usage = [ResourceVector.zero() for _ in range(grid.num_bins)]
    placement: dict[int, int] = {}

    # greedy seed: scan order, first bin with room (keeps neighbors near)
    scan = list(range(grid.num_bins))
    cursor = 0
    for uid in members:
        res = prims[uid].resources
        placed = False
        for probe in range(grid.num_bins):
            b = scan[(cursor + probe) % grid.num_bins]
            if (usage[b] + res).fits_in(grid.bin_capacity):
                placement[uid] = b
                usage[b] = usage[b] + res
                cursor = (cursor + probe) % grid.num_bins
                placed = True
                break
        if not placed:  # overfull fallback: densest-last bin
            b = scan[cursor]
            placement[uid] = b
            usage[b] = usage[b] + res

    member_set = set(members)
    nets = _block_nets(netlist, member_set)
    cost = _hpwl(nets, placement, grid)

    # incremental SA on single-macro moves
    incident: dict[int, list[int]] = {u: [] for u in members}
    for i, (net_members, _w) in enumerate(nets):
        for u in net_members:
            incident[u].append(i)

    def net_len(i: int) -> float:
        net_members, width = nets[i]
        xs = [grid.position(placement[u])[0] for u in net_members]
        ys = [grid.position(placement[u])[1] for u in net_members]
        return (max(xs) - min(xs) + max(ys) - min(ys)) \
            * math.log2(1 + width)

    temperature = max(1.0, cost / max(1, len(members)))
    for _ in range(sa_moves):
        uid = members[rng.randrange(len(members))]
        old_bin = placement[uid]
        new_bin = rng.randrange(grid.num_bins)
        if new_bin == old_bin:
            continue
        res = prims[uid].resources
        if not (usage[new_bin] + res).fits_in(grid.bin_capacity):
            continue
        before = sum(net_len(i) for i in incident[uid])
        placement[uid] = new_bin
        after = sum(net_len(i) for i in incident[uid])
        delta = after - before
        if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-9)):
            usage[old_bin] = usage[old_bin] - res
            usage[new_bin] = usage[new_bin] + res
            cost += delta
        else:
            placement[uid] = old_bin
        temperature *= 0.999

    overflow = sum(1 for u in usage
                   if not u.fits_in(grid.bin_capacity))
    return placement, _hpwl(nets, placement, grid), overflow


# ----------------------------------------------------------------------
# routing (PathFinder-lite over the bin graph)
# ----------------------------------------------------------------------
def _route(nets, placement, grid: BinGrid, max_iterations: int = 12,
           ) -> tuple[bool, int, int]:
    """Negotiated-congestion routing of two-point net fragments.

    Multi-terminal nets are decomposed into star fragments from the
    first member.  Returns (converged, max edge use, iterations)."""
    fragments: list[tuple[int, int, int]] = []  # (src bin, dst bin, w)
    for members, width in nets:
        src = placement[members[0]]
        lanes = max(1, round(math.log2(1 + width)))
        for u in members[1:]:
            dst = placement[u]
            if dst != src:
                fragments.append((src, dst, lanes))
    if not fragments:
        return True, 0, 0

    history: dict[tuple[int, int], float] = {}
    use: dict[tuple[int, int], int] = {}

    def edge(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def dijkstra(src: int, dst: int) -> list[int]:
        dist = {src: 0.0}
        prev: dict[int, int] = {}
        heap = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == dst:
                break
            if d > dist.get(node, math.inf):
                continue
            for nxt in grid.neighbors(node):
                e = edge(node, nxt)
                congestion = max(0, use.get(e, 0)
                                 - grid.channel_capacity)
                cost = 1.0 + history.get(e, 0.0) + 4.0 * congestion
                nd = d + cost
                if nd < dist.get(nxt, math.inf):
                    dist[nxt] = nd
                    prev[nxt] = node
                    heapq.heappush(heap, (nd, nxt))
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        return path[::-1]

    routes: list[list[int]] = [[] for _ in fragments]
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        use.clear()
        for i, (src, dst, lanes) in enumerate(fragments):
            path = dijkstra(src, dst)
            routes[i] = path
            for a, b in zip(path, path[1:]):
                use[edge(a, b)] = use.get(edge(a, b), 0) + lanes
        over = {e: u for e, u in use.items()
                if u > grid.channel_capacity}
        if not over:
            return True, max(use.values(), default=0), iterations
        for e, u in over.items():
            history[e] = history.get(e, 0.0) \
                + 0.5 * (u - grid.channel_capacity)
    return False, max(use.values(), default=0), iterations


# ----------------------------------------------------------------------
def detailed_place_and_route(netlist: Netlist,
                             partition: PartitionResult,
                             virtual_block: int,
                             block_capacity: ResourceVector,
                             seed: int = 0,
                             sa_moves: int = 3000,
                             grid: BinGrid | None = None,
                             ) -> DetailedPnRResult:
    """Place and route one virtual block's macros in its block grid."""
    members = sorted(u for u, vb in partition.assignment.items()
                     if vb == virtual_block
                     and not netlist.primitives[u].is_io())
    if not members:
        raise ValueError(f"virtual block {virtual_block} holds no logic")
    grid = grid or BinGrid.for_block(block_capacity)
    rng = random.Random(seed)

    placement, hpwl, overflow = _place(netlist, members, grid, rng,
                                       sa_moves)
    nets = _block_nets(netlist, set(members))
    routed, max_use, iterations = _route(nets, placement, grid)

    # timing: worst placed net span sets the wire term
    worst_span = 0
    for net_members, _w in nets:
        xs = [grid.position(placement[u])[0] for u in net_members]
        ys = [grid.position(placement[u])[1] for u in net_members]
        worst_span = max(worst_span,
                         (max(xs) - min(xs)) + (max(ys) - min(ys)))
    critical = (_PIPELINE_LOGIC_LEVELS * _LOGIC_DELAY_NS
                + _BASE_WIRE_NS + worst_span * _WIRE_NS_PER_BIN)
    return DetailedPnRResult(
        placement=placement,
        hpwl=hpwl,
        routed=routed,
        max_channel_use=max_use,
        router_iterations=iterations,
        critical_path_ns=critical,
        fmax_mhz=1e3 / critical,
        overflow_bins=overflow,
    )
