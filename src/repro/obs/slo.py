"""Declarative SLO / alert rules evaluated online over the timeline.

Rules are compact strings -- ``"p99_response_s < 40"``,
``"goodput > 0.9"``, ``"fragmentation < 0.8 @ 60"`` -- parsed into
:class:`SLORule` objects and checked by :class:`SLOEngine` at every
timeline bucket close.  The optional ``@ window`` suffix restricts the
rule to a trailing window of that many simulated seconds; without it a
gauge rule reads the instantaneous bucket sample and a distribution
rule the whole run so far.

Two metric families:

- **gauge** metrics come straight from the timeline bucket sample
  (``utilization``, ``fragmentation``, ``queue_depth``,
  ``ring_max_flows``, ``failed_boards``, ``quarantined_boards``,
  ``max_tenant_share``, ``allocated_blocks``, ``active_tenants``); a
  windowed gauge rule averages the trailing bucket samples;
- **distribution** metrics are accumulated from the raw event stream
  (the engine is a tracer sink, like the timeline):
  ``p50/p95/p99_response_s`` from ``sim.complete``, ``mttr_s`` from the
  eviction-to-redeployment durations (reconstructed exactly as
  :class:`~repro.sim.metrics.MetricsCollector` records them), and
  ``goodput`` from useful vs. lost service seconds.

State transitions are emitted back into the trace as point events --
``slo.violation`` when a rule starts failing and ``slo.recovered`` when
it heals, both timestamped at the bucket boundary with machine-readable
reasons -- so a fault-injection run can assert "the outage tripped the
SLO and recovery closed it" straight from the trace.  The timeline
ignores ``slo.*`` events, so this feedback loop cannot recurse.

Everything is a pure function of the (deterministic) event stream: two
seeded runs produce byte-identical violation events.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.obs.stats import percentile
from repro.obs.tracer import Tracer

__all__ = ["SLORule", "SLOEngine", "parse_slo", "DEFAULT_RULES",
           "GAUGE_METRICS", "DISTRIBUTION_METRICS"]

#: Metrics read from the timeline bucket sample.
GAUGE_METRICS: frozenset[str] = frozenset({
    "utilization", "fragmentation", "queue_depth", "ring_max_flows",
    "failed_boards", "quarantined_boards", "max_tenant_share",
    "allocated_blocks", "active_tenants"})

#: Metrics accumulated from raw trace events.
DISTRIBUTION_METRICS: frozenset[str] = frozenset({
    "p50_response_s", "p95_response_s", "p99_response_s", "mttr_s",
    "goodput"})

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_RULE_RE = re.compile(
    r"^\s*([a-z0-9_]+)\s*(<=|>=|<|>)\s*([0-9.eE+-]+)"
    r"\s*(?:@\s*([0-9.eE+-]+))?\s*$")

#: The ``--health`` defaults: deterministic alerts for the demo fault
#: scenario (a board outage trips ``failed_boards``; repair heals it)
#: plus fleet-health guards that stay quiet on a healthy run.
DEFAULT_RULES: tuple[str, ...] = (
    "failed_boards < 1",
    "goodput > 0.5",
    "fragmentation < 0.95",
)


@dataclass(frozen=True, slots=True)
class SLORule:
    """One parsed rule: ``metric op threshold`` over an optional window."""

    metric: str
    op: str
    threshold: float
    window_s: float | None = None

    def __post_init__(self) -> None:
        if self.metric not in GAUGE_METRICS \
                and self.metric not in DISTRIBUTION_METRICS:
            known = sorted(GAUGE_METRICS | DISTRIBUTION_METRICS)
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; known: {known}")
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO operator {self.op!r}")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError("SLO window must be positive")

    def holds(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def __str__(self) -> str:
        text = f"{self.metric} {self.op} {self.threshold:g}"
        if self.window_s is not None:
            text += f" @ {self.window_s:g}"
        return text


def parse_slo(spec: "str | SLORule") -> SLORule:
    """Parse ``"metric op threshold [@ window_s]"`` into a rule."""
    if isinstance(spec, SLORule):
        return spec
    match = _RULE_RE.match(spec)
    if match is None:
        raise ValueError(
            f"cannot parse SLO rule {spec!r} "
            "(expected 'metric op threshold [@ window_s]')")
    metric, op, threshold, window = match.groups()
    return SLORule(metric=metric, op=op, threshold=float(threshold),
                   window_s=float(window) if window else None)


class _RuleState:
    """Mutable evaluation state of one rule."""

    __slots__ = ("rule", "violated", "violations", "recovered",
                 "violated_s", "last_value")

    def __init__(self, rule: SLORule) -> None:
        self.rule = rule
        self.violated = False
        self.violations = 0      # episodes (ok -> violated edges)
        self.recovered = 0       # episodes that healed
        self.violated_s = 0.0    # sum of violating bucket intervals
        self.last_value: float | None = None


class SLOEngine:
    """Evaluates a rule set at every timeline bucket close.

    Wire-up (``run_experiment(slo=...)`` does all three):

    - :meth:`on_record` subscribed as a tracer sink *after* the
      timeline's, so distribution samples stay ahead of evaluation;
    - :meth:`on_bucket` subscribed as a timeline listener;
    - :meth:`bind` remembers the tracer (violation events) and the
      timeline's bucket interval (violated-seconds accounting).
    """

    def __init__(self, rules: "list[str | SLORule] | None" = None) -> None:
        parsed = [parse_slo(r) for r in
                  (DEFAULT_RULES if rules is None else rules)]
        self._states = [_RuleState(r) for r in parsed]
        self._tracer: Tracer | None = None
        self.interval_s = 0.0
        #: which distribution metrics any rule actually needs -- the
        #: sink does zero work for families nobody asked about
        self._want_response = any(
            s.rule.metric.endswith("_response_s") for s in self._states)
        self._want_mttr = any(
            s.rule.metric == "mttr_s" for s in self._states)
        self._want_goodput = any(
            s.rule.metric == "goodput" for s in self._states)
        # ---- distribution accumulators (time-ordered) ----------------
        self._responses: list[tuple[float, float]] = []
        self._recoveries: list[tuple[float, float]] = []
        self._useful: list[tuple[float, float]] = []
        self._lost: list[tuple[float, float]] = []
        self._useful_total = 0.0
        self._lost_total = 0.0
        #: request id -> eviction time of open (re-queue) recoveries
        self._evicted_at: dict[int, float] = {}
        self._buckets: list[tuple[float, dict]] = []
        self.finalized = False

    @property
    def rules(self) -> list[SLORule]:
        return [s.rule for s in self._states]

    def bind(self, timeline, tracer: Tracer | None = None) -> None:
        """Attach to a timeline (and optionally the trace stream)."""
        self.interval_s = timeline.interval_s
        timeline.add_listener(self.on_bucket)
        if tracer is not None:
            self._tracer = tracer
            tracer.add_sink(self.on_record)

    # ------------------------------------------------------------------
    # event intake (distribution metrics)
    # ------------------------------------------------------------------
    def on_record(self, kind: str, name: str, t: float,
                  duration_s: float | None, fields: dict) -> None:
        if kind != "event" or name.startswith("slo.") or self.finalized:
            return
        if name == "sim.complete":
            if self._want_response:
                self._responses.append(
                    (t, float(fields.get("response_s", 0.0))))
            if self._want_goodput:
                useful = float(fields.get("service_s", 0.0))
                self._useful.append((t, useful))
                self._useful_total += useful
        elif name == "sim.evict":
            if fields.get("reason") == "requeued":
                if self._want_mttr:
                    self._evicted_at[fields.get("request")] = t
                if self._want_goodput:
                    lost = float(fields.get("progress_lost_s", 0.0))
                    self._lost.append((t, lost))
                    self._lost_total += lost
            elif fields.get("reason") == "migrated" and self._want_mttr:
                self._recoveries.append(
                    (t, float(fields.get("recovery_s", 0.0))))
        elif name == "sim.deploy" and self._want_mttr:
            evicted = self._evicted_at.pop(fields.get("request"), None)
            if evicted is not None:
                # recovery closes when the replacement is programmed --
                # the exact quantity MetricsCollector.record_recovery
                # accumulates on the re-queue path
                self._recoveries.append(
                    (t, t + float(fields.get("reconfig_s", 0.0))
                     - evicted))

    def observe(self, entry: dict) -> None:
        """Replay one exported JSONL trace entry."""
        self.on_record(entry.get("kind", "event"), entry["name"],
                       entry["t"], entry.get("duration_s"),
                       entry.get("fields", {}))

    # ------------------------------------------------------------------
    # evaluation (timeline listener)
    # ------------------------------------------------------------------
    def on_bucket(self, t_end: float, sample: dict) -> None:
        self._buckets.append((t_end, sample))
        for state in self._states:
            value = self._value(state.rule, t_end, sample)
            if value is None:
                continue  # no samples yet: a rule cannot fail vacuously
            state.last_value = value
            ok = state.rule.holds(value)
            if not ok:
                state.violated_s += self.interval_s
            if not ok and not state.violated:
                state.violated = True
                state.violations += 1
                self._emit("slo.violation", t_end, state.rule, value)
            elif ok and state.violated:
                state.violated = False
                state.recovered += 1
                self._emit("slo.recovered", t_end, state.rule, value)

    def finalize(self, t_end: float) -> None:
        """Stop consuming events (a rule still violated at this point
        simply never recovered).  A finalized engine left registered as
        a tracer sink -- e.g. when several runs share one tracer --
        ignores the later runs' events."""
        self.finalized = True

    def _emit(self, name: str, t: float, rule: SLORule,
              value: float) -> None:
        if self._tracer is None or not self._tracer:
            return
        verb = "violates" if name == "slo.violation" else "satisfies"
        self._tracer.event(
            name, t=t, rule=str(rule), metric=rule.metric, op=rule.op,
            threshold=rule.threshold, value=value,
            window_s=rule.window_s,
            reason=f"{rule.metric}={value:g} {verb} "
                   f"{rule.op} {rule.threshold:g}")

    # ------------------------------------------------------------------
    # metric values
    # ------------------------------------------------------------------
    def _value(self, rule: SLORule, t_end: float,
               sample: dict) -> float | None:
        if rule.metric in GAUGE_METRICS:
            if rule.window_s is None:
                return float(sample[rule.metric])
            cutoff = t_end - rule.window_s
            window = [float(s[rule.metric]) for t, s in self._buckets
                      if t > cutoff]
            return sum(window) / len(window) if window else None
        if rule.metric.endswith("_response_s"):
            q = int(rule.metric[1:3]) / 100.0
            values = self._window_values(self._responses, t_end,
                                         rule.window_s)
            return percentile(sorted(values), q) if values else None
        if rule.metric == "mttr_s":
            values = self._window_values(self._recoveries, t_end,
                                         rule.window_s)
            return sum(values) / len(values) if values else None
        if rule.metric == "goodput":
            if rule.window_s is None:
                useful, lost = self._useful_total, self._lost_total
            else:
                useful = sum(self._window_values(
                    self._useful, t_end, rule.window_s))
                lost = sum(self._window_values(
                    self._lost, t_end, rule.window_s))
            if useful + lost == 0:
                return None  # no service finished or was lost yet
            return useful / (useful + lost)
        raise AssertionError(f"unhandled metric {rule.metric!r}")

    @staticmethod
    def _window_values(samples: list[tuple[float, float]], t_end: float,
                       window_s: float | None) -> list[float]:
        if window_s is None:
            return [v for _, v in samples]
        cutoff = t_end - window_s
        return [v for t, v in samples if t > cutoff]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> list[dict]:
        """Per-rule outcome, in rule order (JSON-able)."""
        return [{
            "rule": str(state.rule),
            "metric": state.rule.metric,
            "violations": state.violations,
            "recovered": state.recovered,
            "violated_s": state.violated_s,
            "still_violated": state.violated,
            "last_value": state.last_value,
        } for state in self._states]

    def total_violations(self) -> int:
        return sum(s.violations for s in self._states)

    def total_violated_s(self) -> float:
        return sum(s.violated_s for s in self._states)

    def total_recovered(self) -> int:
        return sum(s.recovered for s in self._states)

    def all_recovered(self) -> bool:
        """True when no rule is still in violation -- the
        "recovered within SLO" assertion for fault-injection runs."""
        return not any(s.violated for s in self._states)
