"""Phase profiler: where did the experiment wall clock go?

A campaign that runs dozens of scenario configurations needs more than
one ``time.perf_counter()`` around the whole run -- regressions hide
inside phases (compile vs. policy search vs. migration vs. timeline
folding), and the ROADMAP's surviving hot spots were only found by
breaking the wall down.  :class:`PhaseProfiler` accumulates named
*phases* (wall-clock seconds + invocation counts + the last simulated
time each phase saw) and *op counters* (policy subsets visited, blocks
moved, events popped), and exports the result as the same sorted-key
JSON profile document ``repro report --trace --format json`` emits --
so the existing ``repro diff`` tool compares two profiles and
``find_regressions`` classifies phase p95 shifts with no new plumbing.

Determinism contract: wall-clock durations are measurements and differ
between runs by nature, but everything else in the export -- the phase
names, invocation counts, op counters, and sim-time fields -- is a pure
function of the simulated run, so two same-seed profiles differ only in
their ``*_s`` duration values.  The profiler is passive: attaching one
never changes simulation results (the instrumented loops only read
clocks around calls they were making anyway).

Two accumulation styles:

- ``with profiler.phase("compile"):`` -- a context manager around a
  contiguous phase (the CLI drivers wrap compile / simulate / report
  this way; their spans tile the run, so the top-level total matches
  the measured wall to within the clock-read overhead);
- ``profiler.add("admit", dt, nested=True)`` -- explicit accumulation
  for phases that recur thousands of times inside another phase (the
  event loop's per-event sections).  ``nested`` phases are excluded
  from :meth:`top_wall_s` so the coverage identity "top-level phases
  sum to the measured wall" survives nesting.

Op counters arrive either directly (:meth:`count`) or by subscribing to
a :class:`~repro.obs.tracer.Tracer` (:meth:`attach_tracer`): the sink
folds ``policy.allocate`` search effort, migrations, defrag passes and
blocks moved out of the event stream the instrumentation already emits.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs.stats import percentile as _percentile

__all__ = ["PhaseProfiler"]


class _PhaseRecord:
    """Accumulated state of one named phase."""

    __slots__ = ("count", "total_s", "durations", "nested", "sim_t")

    def __init__(self, nested: bool) -> None:
        self.count = 0
        self.total_s = 0.0
        #: individual samples (for p50/p95); bounded by the run length
        self.durations: list[float] = []
        self.nested = nested
        #: last simulated time this phase was charged at (-1: never)
        self.sim_t = -1.0


class PhaseProfiler:
    """Accumulating wall/sim-time phase breakdown with op counters."""

    def __init__(self, clock=time.perf_counter,
                 keep_samples: bool = True) -> None:
        self._clock = clock
        self.keep_samples = keep_samples
        self._phases: dict[str, _PhaseRecord] = {}
        self._counters: dict[str, int] = {}
        #: strong refs, identity-scanned: a dead tracer's recycled id
        #: must never make a fresh tracer look already-attached
        self._attached: list = []
        #: highest simulated time any phase reported (run makespan)
        self.sim_makespan_s = 0.0
        self._t0 = clock()

    def __bool__(self) -> bool:  # mirrors the tracer's guard idiom
        return True

    # ------------------------------------------------------------------
    def _record(self, name: str, nested: bool) -> _PhaseRecord:
        record = self._phases.get(name)
        if record is None:
            record = self._phases[name] = _PhaseRecord(nested)
        return record

    @contextmanager
    def phase(self, name: str, nested: bool = False,
              sim_t: "float | None" = None):
        """Time one contiguous phase invocation (wall clock)."""
        start = self._clock()
        try:
            yield self
        finally:
            self.add(name, self._clock() - start, nested=nested,
                     sim_t=sim_t)

    def add(self, name: str, wall_s: float, nested: bool = False,
            sim_t: "float | None" = None) -> None:
        """Accumulate ``wall_s`` seconds into phase ``name``."""
        record = self._record(name, nested)
        record.count += 1
        record.total_s += wall_s
        if self.keep_samples:
            record.durations.append(wall_s)
        if sim_t is not None:
            record.sim_t = sim_t
            if sim_t > self.sim_makespan_s:
                self.sim_makespan_s = sim_t

    def count(self, name: str, n: int = 1) -> None:
        """Bump op counter ``name`` by ``n``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def mark_sim(self, t: float) -> None:
        """Advance the observed simulated makespan."""
        if t > self.sim_makespan_s:
            self.sim_makespan_s = t

    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Fold op counters out of a tracer's event stream.

        Subscribes a sink that accumulates the search-effort and
        migration telemetry the instrumentation already emits:
        ``policy.allocate`` rounds/visited/pruned, ``ctrl.migrate``
        moves, ``defrag.pass`` blocks moved, and deploy/reject counts.
        Idempotent per tracer: re-attaching (e.g. one profiler across
        a multi-manager loop sharing one tracer) never double-counts.
        """
        if any(t is tracer for t in self._attached):
            return
        self._attached.append(tracer)
        def sink(kind, name, t, duration_s, fields) -> None:
            if name == "policy.allocate":
                self.count("policy_searches")
                self.count("policy_rounds",
                           int(fields.get("rounds", 0)))
                self.count("policy_visited",
                           int(fields.get("visited", 0)))
                self.count("policy_pruned",
                           int(fields.get("pruned", 0)))
            elif name == "ctrl.reject":
                search = fields.get("search")
                if search:
                    self.count("policy_searches")
                    self.count("policy_visited", int(search[2]))
                    self.count("policy_pruned", int(search[3]))
            elif name == "ctrl.migrate":
                self.count("migrations")
                self.count("blocks_moved",
                           int(fields.get("blocks", 0)))
            elif name == "defrag.pass":
                # moved blocks are counted by the per-move
                # ``ctrl.migrate`` events; counting ``moved_blocks``
                # here too would double-charge each pass
                self.count("defrag_passes")
            elif name == "ctrl.deploy":
                self.count("deploys")

        tracer.add_sink(sink)

    # ------------------------------------------------------------------
    def total_wall_s(self) -> float:
        """Wall seconds since the profiler was created."""
        return self._clock() - self._t0

    def top_wall_s(self) -> float:
        """Sum of the non-nested phase totals (the coverage check)."""
        return sum(r.total_s for r in self._phases.values()
                   if not r.nested)

    def counters(self) -> dict[str, int]:
        return dict(sorted(self._counters.items()))

    def phase_wall_s(self, name: str) -> float:
        """Accumulated wall seconds of one phase (0.0 if never seen)."""
        record = self._phases.get(name)
        return record.total_s if record is not None else 0.0

    def phase_share(self, name: str,
                    of: "str | None" = None) -> float:
        """``name``'s fraction of ``of``'s wall (default: total wall).

        The perf-regression gate compares ``sim.admit``'s share across
        engines with this -- shares, unlike raw walls, survive machine
        speed differences.  Returns 0.0 when the denominator is empty.
        """
        denom = self.phase_wall_s(of) if of is not None \
            else self.total_wall_s()
        return self.phase_wall_s(name) / denom if denom > 0 else 0.0

    # ------------------------------------------------------------------
    def as_profile(self) -> dict:
        """The diff-consumable profile document.

        Shape-compatible with :func:`repro.analysis.diff.trace_profile`
        (``spans`` + ``decisions``), so ``repro diff`` compares two
        phase profiles directly: phase p95 shifts show up as span
        regressions, counter drifts as decision deltas.
        """
        spans: dict[str, dict] = {}
        entries = 0
        for name in sorted(self._phases):
            record = self._phases[name]
            entries += record.count
            row: dict = {
                "kind": "phase",
                "count": record.count,
                "nested": record.nested,
                "total_s": record.total_s,
                "mean_s": record.total_s / record.count
                if record.count else 0.0,
            }
            if record.durations:
                durations = sorted(record.durations)
                row["p95_s"] = _percentile(durations, 0.95)
            if record.sim_t >= 0:
                row["sim_t"] = record.sim_t
            spans[name] = row
        decisions = {
            **self.counters(),
            "rejects": {},
            "evictions": {},
        }
        return {
            "entries": entries,
            "spans": spans,
            "decisions": decisions,
            "slo": {"violations": {}, "recovered": {}},
            "sim_makespan_s": self.sim_makespan_s,
            "top_wall_s": self.top_wall_s(),
        }

    def to_json(self) -> str:
        """Key-sorted, indented JSON of :meth:`as_profile`."""
        return json.dumps(self.as_profile(), sort_keys=True, indent=2)

    def dump(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    def format(self) -> str:
        """Human-readable phase table (the CLI ``--profile`` output)."""
        from repro.analysis.report import format_table
        top = self.top_wall_s()
        rows = []
        for name in sorted(self._phases,
                           key=lambda n: -self._phases[n].total_s):
            record = self._phases[name]
            share = record.total_s / top if top > 0 else 0.0
            rows.append([
                name + ("*" if record.nested else ""),
                record.count,
                f"{record.total_s:.4f}",
                f"{record.total_s / record.count:.6f}"
                if record.count else "-",
                f"{share:.1%}" if not record.nested else "-",
            ])
        parts = [format_table(
            ["phase", "count", "total_s", "mean_s", "share"], rows,
            title="phase profile (* = nested, excluded from share)")]
        if self._counters:
            parts.append("")
            parts.append(format_table(
                ["counter", "value"],
                [[k, v] for k, v in sorted(self._counters.items())],
                title="op counters"))
        parts.append("")
        parts.append(
            f"top-level phases {top:.4f} s of "
            f"{self.total_wall_s():.4f} s measured wall; "
            f"sim makespan {self.sim_makespan_s:.1f} s")
        return "\n".join(parts)
