"""Shared observability math: percentiles and the fragmentation index.

Three consumers used to carry private copies of this arithmetic -- the
span viewer (``analysis/spans.py``), the simulator's summary
(``sim/metrics.py``) and the metrics histogram (``obs/metrics.py``) --
and the cluster health engine adds two more (the timeline aggregator and
the SLO rule engine).  One definition here keeps every layer reporting
the *same* p95 for the same samples, which matters once the trace-diff
gate starts comparing percentiles across runs.

Everything in this module is a pure function of its arguments: no
clocks, no randomness, no global state.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence, Sized

__all__ = ["percentile", "quantile_from_cumulative",
           "fragmentation_index"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list.

    The rank is ``int(q * n)`` clamped to the last element -- the exact
    convention the span viewer and the experiment summary have always
    used, so unifying the implementations changes no reported number.
    Edge cases: an empty sample returns ``0.0``; a single sample is
    every percentile of itself; ``q=0`` is the minimum and ``q=1`` the
    maximum.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q}")
    n = len(sorted_values)
    if n == 0:
        return 0.0
    return sorted_values[min(n - 1, int(q * n))]


def quantile_from_cumulative(
        pairs: Iterable[tuple[float, int]], total: int,
        q: float) -> float:
    """Bucket-resolution quantile over cumulative ``(bound, count)`` pairs.

    Returns the first upper bound whose cumulative count reaches
    ``q * total`` (the convention of Prometheus-style fixed-bucket
    histograms), or ``+inf`` when the target falls in the overflow
    bucket.  ``total == 0`` returns ``0.0``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    if total == 0:
        return 0.0
    target = q * total
    for bound, cumulative in pairs:
        if cumulative >= target:
            return bound
    return math.inf


def fragmentation_index(
        free_by_board: "Mapping[object, object] | Iterable[object]",
) -> float:
    """How split the cluster's free capacity is across boards, in [0, 1).

    ``1 - (largest single-board free pool / total free blocks)``: 0.0
    when every free block sits on one board (any application that fits
    the cluster fits without spanning), approaching ``1 - 1/n`` when the
    free space is shredded evenly across ``n`` boards and a large
    application must pay ring crossings -- the condition Fig. 10's
    relocation story is about.  A cluster with no free blocks reports
    0.0 (saturation is not fragmentation).

    Accepts a mapping ``board -> free count`` (or ``board -> free block
    list``, the shape of ``ResourceDB.free_by_board``) or a bare
    iterable of per-board counts.
    """
    values = (free_by_board.values()
              if isinstance(free_by_board, Mapping) else free_by_board)
    counts = [v if isinstance(v, (int, float)) else len(v)
              for v in values
              if isinstance(v, (int, float)) or isinstance(v, Sized)]
    total = sum(counts)
    if total <= 0:
        return 0.0
    return 1.0 - max(counts) / total
