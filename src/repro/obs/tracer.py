"""Structured event tracing with deterministic sim-time timestamps.

The simulator's claims (utilization, co-running apps, interface
overhead, allocation latency) are aggregates; the tracer explains the
individual decisions behind them.  It records two shapes:

- **events** -- one timestamped occurrence (a deploy decision, a
  rejection with its machine-readable reason, a fault);
- **spans** -- an interval with a duration (a compilation stage, a
  recovery window).

Timestamps are *simulation* times supplied by the instrumented code (or
taken from :attr:`Tracer.now`, which the event loop advances), never
wall-clock reads -- so a seeded run produces byte-identical trace output
across invocations.  Wall-clock durations (e.g. the compiler's measured
stage times) are attached only when the tracer is created with
``record_wall=True``, which deliberately trades reproducible bytes for
profiling data.

Cost model: a *disabled* tracer is falsy and every instrumentation site
guards with ``if tracer:`` before building any payload, so the disabled
path is a single attribute check -- simulation results are bit-identical
with tracing on, off, or absent, because the tracer only observes.
Recording appends one tuple per event; JSON formatting happens only at
export.

Streaming consumers (the timeline aggregator and SLO engine of
:mod:`repro.obs.timeline` / :mod:`repro.obs.slo`) subscribe with
:meth:`Tracer.add_sink` and receive every recorded entry as it happens,
through the exact same hooks the retained trace is built from -- so an
online aggregate is computed from the same stream a batch recomputation
over the exported JSONL would see.  A tracer created with
``retain=False`` forwards to its sinks without storing entries, keeping
a health-monitored run's memory O(1) in trace length.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "NULL_TRACER"]


def _jsonable(value: Any) -> Any:
    """Coerce payload values to deterministic JSON-friendly forms."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return value


class Span:
    """One open interval; :meth:`end` records it as a single entry.

    Spans are cheap handles, not context managers bound to wall time:
    the caller supplies simulation times (or leans on ``tracer.now``),
    and may attach more fields at the end -- e.g. a compile stage's
    modeled cost, known only after the stage ran.
    """

    __slots__ = ("_tracer", "name", "t_start", "fields", "_open")

    def __init__(self, tracer: "Tracer", name: str, t_start: float,
                 fields: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.t_start = t_start
        self.fields = fields
        self._open = True

    def end(self, t: float | None = None, **fields) -> None:
        """Close the span, recording ``duration_s = t - t_start``."""
        if not self._open:
            raise RuntimeError(f"span {self.name!r} already ended")
        self._open = False
        t_end = self._tracer.now if t is None else t
        merged = {**self.fields, **fields}
        self._tracer._record("span", self.name, self.t_start,
                             max(0.0, t_end - self.t_start), merged)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._open:
            self.end(err=repr(exc) if exc is not None else None)


class _NullSpan:
    """Span of a disabled tracer: every operation is a no-op."""

    __slots__ = ()

    def end(self, t: float | None = None, **fields) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Append-only structured trace with JSON-lines export.

    Attributes:
        enabled: a disabled tracer is falsy and records nothing.
        record_wall: include wall-clock durations in exported entries
            (breaks byte-for-byte reproducibility; off by default).
        retain: keep entries for export (default).  ``retain=False``
            turns the tracer into a pure stream head for its sinks:
            nothing is stored, ``to_jsonl`` exports nothing, and memory
            stays O(1) however long the run.
        now: the current simulation time; instrumented loops advance it
            so deeper layers (policy, controller) need no clock of
            their own.
    """

    def __init__(self, enabled: bool = True,
                 record_wall: bool = False,
                 retain: bool = True) -> None:
        self.enabled = enabled
        self.record_wall = record_wall
        self.retain = retain
        self.now = 0.0
        #: (kind, name, t, duration_s | None, fields)
        self._entries: list[tuple] = []
        #: streaming subscribers: ``fn(kind, name, t, duration_s,
        #: fields)`` called once per recorded entry, in subscription
        #: order.  Empty (the common case) costs one falsy check.
        self._sinks: list = []

    def __bool__(self) -> bool:
        return self.enabled

    def __len__(self) -> int:
        return len(self._entries)

    def add_sink(self, sink) -> None:
        """Subscribe a streaming consumer to every future entry.

        ``sink(kind, name, t, duration_s, fields)`` is invoked with the
        raw (pre-JSON) payload at record time.  Sinks must treat
        ``fields`` as read-only -- it is the same dict the retained
        entry references.
        """
        if not callable(sink):
            raise TypeError(f"sink must be callable, got {sink!r}")
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    def _record(self, kind: str, name: str, t: float,
                duration_s: float | None, fields: dict) -> None:
        if not self.enabled:
            return
        if self.retain:
            self._entries.append((kind, name, t, duration_s, fields))
        if self._sinks:
            for sink in self._sinks:
                sink(kind, name, t, duration_s, fields)

    def event(self, name: str, t: float | None = None,
              **fields) -> None:
        """Record one point-in-time occurrence."""
        if not self.enabled:
            return
        t_event = self.now if t is None else t
        if self.retain:
            self._entries.append(
                ("event", name, t_event, None, fields))
        if self._sinks:
            for sink in self._sinks:
                sink("event", name, t_event, None, fields)

    def span(self, name: str, t: float | None = None,
             **fields) -> "Span | _NullSpan":
        """Open a span; the caller ends it (``with`` also works)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, self.now if t is None else t, fields)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[dict]:
        """Yield entries as dicts (the JSONL schema, pre-serialization)."""
        for seq, (kind, name, t, duration_s, fields) in \
                enumerate(self._entries):
            entry: dict[str, Any] = {
                "seq": seq, "t": t, "kind": kind, "name": name}
            if duration_s is not None:
                entry["duration_s"] = duration_s
            if fields:
                entry["fields"] = {
                    k: _jsonable(v) for k, v in sorted(fields.items())}
            yield entry

    def to_jsonl(self) -> str:
        """One compact, key-sorted JSON object per line (byte-stable)."""
        return "\n".join(
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
            for entry in self.entries())

    def dump(self, path: "str | Path") -> int:
        """Write the JSONL trace; returns the number of entries."""
        text = self.to_jsonl()
        Path(path).write_text(text + "\n" if text else "")
        return len(self._entries)


#: Shared disabled tracer for call sites that want a non-None default.
NULL_TRACER = Tracer(enabled=False)
