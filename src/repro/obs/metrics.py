"""Metrics registry: counters, gauges and fixed-bucket histograms.

The tracer (:mod:`repro.obs.tracer`) answers "why did decision X
happen"; the registry answers "how many / how much" -- the shape
production schedulers export to monitoring systems.  Instruments are
created through :class:`MetricsRegistry` and identified by ``(name,
labels)``, so the same experiment loop can account several managers
side by side (``deploys_total{manager="vital"}`` vs
``{manager="per-device"}``).

Two export formats:

- :meth:`MetricsRegistry.as_dict` / ``as_json`` -- nested JSON for the
  analysis layer and archival next to a trace;
- :meth:`MetricsRegistry.to_prometheus` -- the Prometheus text
  exposition format (``# TYPE`` comments, cumulative ``_bucket{le=}``
  histogram series), so a real scrape endpoint could serve it verbatim.

Like the tracer, the registry is purely observational: instruments are
plain Python accumulators and nothing here reads clocks or randomness.
"""

from __future__ import annotations

import json
import math

from repro.obs.stats import quantile_from_cumulative

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_TIME_BUCKETS"]

#: Default histogram buckets for durations in seconds: wide enough for
#: both reconfiguration (~10 ms) and saturated response times (~1000 s).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
    600.0, 1800.0, 3600.0)


def _format_value(value: float) -> str:
    """Prometheus-style number: integers render without a decimal."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing accumulator."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value (set, or moved up and down)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram (cumulative on export, like Prometheus).

    ``buckets`` are upper bounds in increasing order; an implicit
    ``+Inf`` bucket catches the tail.  Only counts, the sum and the
    bucket tallies are kept -- O(1) memory however long the run.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
                 ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        if list(buckets) != sorted(buckets):
            raise ValueError("buckets must be increasing")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        cumulative = []
        running = 0
        for i, bound in enumerate(self.buckets):
            running += self.counts[i]
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": math.inf,
                           "count": running + self.counts[-1]})
        return {"sum": self.sum, "count": self.count,
                "buckets": cumulative}

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the q-bucket)."""
        running = 0
        cumulative = []
        for i, bound in enumerate(self.buckets):
            running += self.counts[i]
            cumulative.append((bound, running))
        return quantile_from_cumulative(cumulative, self.count, q)


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, factory, name: str, help: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
            self._help.setdefault(name, help)
        elif instrument.kind != factory().kind:
            raise ValueError(
                f"{name}: already registered as {instrument.kind}")
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
                  **labels) -> Histogram:
        return self._get(lambda: Histogram(buckets), name, help, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Nested snapshot: ``{name: [{labels, kind, value}, ...]}``."""
        out: dict[str, list] = {}
        for (name, labels), instrument in sorted(
                self._instruments.items()):
            out.setdefault(name, []).append({
                "labels": dict(labels),
                "kind": instrument.kind,
                "value": instrument.snapshot(),
            })
        return out

    def as_json(self) -> str:
        def _clean(obj):
            if isinstance(obj, dict):
                return {k: _clean(v) for k, v in obj.items()}
            if isinstance(obj, list):
                return [_clean(v) for v in obj]
            if obj == math.inf:
                return "+Inf"
            return obj
        return json.dumps(_clean(self.as_dict()), sort_keys=True,
                          indent=2)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for (name, labels), instrument in sorted(
                self._instruments.items()):
            if name not in seen_header:
                seen_header.add(name)
                if self._help.get(name):
                    lines.append(f"# HELP {name} {self._help[name]}")
                lines.append(f"# TYPE {name} {instrument.kind}")
            suffix = _format_labels(labels)
            if instrument.kind == "histogram":
                snap = instrument.snapshot()
                for bucket in snap["buckets"]:
                    le = _format_value(bucket["le"])
                    bucket_labels = labels + (("le", le),)
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(bucket_labels)} "
                        f"{bucket['count']}")
                lines.append(f"{name}_sum{suffix} "
                             f"{_format_value(snap['sum'])}")
                lines.append(f"{name}_count{suffix} {snap['count']}")
            else:
                lines.append(
                    f"{name}{suffix} "
                    f"{_format_value(instrument.snapshot())}")
        return "\n".join(lines) + ("\n" if lines else "")
