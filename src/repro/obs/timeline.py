"""Streaming cluster-health timelines over the trace event stream.

The flat end-of-run summary says *how* a run went; the timeline says
*when*.  :class:`TimelineAggregator` consumes the same controller and
experiment hooks the :class:`~repro.obs.tracer.Tracer` records (it is
attached as a tracer sink, or replays an exported JSONL trace) and
maintains fixed-interval series of the System Layer's fleet signals:

- cluster utilization and per-board block occupancy,
- the fragmentation index (the :func:`repro.obs.stats.fragmentation_index`
  math, shared with ``analysis/occupancy``),
- ring-segment congestion (peak registered-flow count, recomputed with
  the same :class:`~repro.cluster.network.RingNetwork` flow accounting
  the service model uses),
- pending-queue depth and per-bucket arrival/deploy/completion rates,
- tenant sharing (active tenants and the largest per-tenant block
  share; the full per-tenant map is available via
  :meth:`TimelineAggregator.tenant_blocks` -- per-tenant *series* are
  deliberately not materialized because the experiment loop assigns one
  tenant per request, which would make the series set unbounded).

Determinism rules (these are what the regression gate relies on):

- bucket boundaries are pure functions of simulation time
  (``bucket = floor(t / interval_s)``) -- no wall clocks anywhere;
- a bucket's sample is the tracked state at the bucket's *end*, so the
  series is the step function sampled at deterministic instants, and
  feeding events one at a time is byte-identical to batch replay;
- export is key-sorted compact JSON (or fixed-column CSV), so two
  seeded runs produce byte-identical timeline files.

Cost: O(1) amortized per event (deploy/release updates touch only the
boards of that placement), O(num_boards) per closed bucket, and the
bucket count is bounded by ``horizon / interval_s`` regardless of event
rate.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.cluster.network import RingNetwork
from repro.obs.stats import fragmentation_index

__all__ = ["TimelineAggregator", "BUCKET_FIELDS"]

#: Column order of one bucket sample -- fixed so CSV/JSON exports are
#: stable and the diff tool can compare timelines field by field.
BUCKET_FIELDS: tuple[str, ...] = (
    "t", "utilization", "allocated_blocks", "queue_depth",
    "fragmentation", "ring_max_flows", "failed_boards",
    "quarantined_boards", "active_tenants", "max_tenant_share",
    "arrivals", "deploys", "completions", "migrations")


class TimelineAggregator:
    """Fixed-interval health series computed online from trace events.

    Attach to a live run with ``tracer.add_sink(timeline.on_record)``
    (``run_experiment(timeline=...)`` does this), or replay an exported
    trace with :meth:`from_events`.  Both paths see the identical event
    stream, so incremental and batch results are byte-identical -- the
    property tests assert this.
    """

    def __init__(self, interval_s: float = 10.0,
                 capacity_blocks: int | None = None,
                 num_boards: int | None = None,
                 board_capacity: int | None = None) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = float(interval_s)
        self.capacity_blocks = capacity_blocks
        self.num_boards = num_boards
        self.board_capacity = board_capacity
        self.buckets: list[dict] = []
        self.finished = False
        self._bucket = 0          # index of the bucket being filled
        self._listeners: list = []
        self._closing = False     # re-entrancy guard (sinks of sinks)
        # ---- tracked state (current values) --------------------------
        self._allocated = 0
        self._queue = 0
        #: per-board occupancy: a preallocated int64 vector when the
        #: board count is known (the hot path -- bucket closes read it
        #: wholesale), else a sparse dict (trace replays of unknown
        #: clusters)
        self._occ_arr: "np.ndarray | None" = (
            np.zeros(num_boards, dtype=np.int64) if num_boards
            else None)
        self._board_occ: dict[int, int] = {}
        self._tenant_blocks: dict[str, int] = {}
        self._failed_boards: set[int] = set()
        self._quarantined: set[int] = set()
        #: request id -> (blocks, ((board, count), ...), tenant, spans)
        self._holdings: dict[int, tuple] = {}
        self._arrivals = 0        # per-bucket rate counters
        self._deploys = 0
        self._completions = 0
        self._migrations = 0
        self._ring: RingNetwork | None = None
        if num_boards:
            self._ring = RingNetwork(num_boards)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def configured(self) -> bool:
        return self.capacity_blocks is not None

    def configure(self, capacity_blocks: int,
                  num_boards: int | None = None,
                  board_capacity: int | None = None) -> None:
        """Bind the cluster shape (capacity normalizes the series).

        Must happen before the first event; ``run_experiment`` calls
        this from the manager's own accounting when the aggregator was
        constructed bare.
        """
        if self.buckets or self._holdings or self._queue:
            raise RuntimeError("cannot reconfigure a running timeline")
        self.capacity_blocks = int(capacity_blocks)
        if num_boards is not None:
            self.num_boards = int(num_boards)
            self._ring = RingNetwork(self.num_boards)
            self._occ_arr = np.zeros(self.num_boards, dtype=np.int64)
        if board_capacity is not None:
            self.board_capacity = int(board_capacity)
        elif self.num_boards:
            self.board_capacity = self.capacity_blocks // self.num_boards

    def add_listener(self, listener) -> None:
        """Subscribe ``listener(t_end, sample_dict)`` to bucket closes
        (the SLO engine evaluates its rules from this hook)."""
        if not callable(listener):
            raise TypeError(f"listener must be callable: {listener!r}")
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def on_record(self, kind: str, name: str, t: float,
                  duration_s: float | None, fields: dict) -> None:
        """Tracer-sink entry point (live streaming)."""
        if kind != "event" or self.finished:
            return  # spans carry their *start* time; state is event-fed
        if name.startswith("slo."):
            return  # emitted during bucket close; never re-enter
        if self._closing:
            return
        self._advance(t)
        self._apply(name, fields)

    def observe(self, entry: dict) -> None:
        """Replay one exported JSONL trace entry (batch recomputation)."""
        self.on_record(entry.get("kind", "event"), entry["name"],
                       entry["t"], entry.get("duration_s"),
                       entry.get("fields", {}))

    @classmethod
    def from_events(cls, events: "list[dict]", interval_s: float,
                    capacity_blocks: int,
                    num_boards: int | None = None,
                    board_capacity: int | None = None,
                    end_t: float | None = None) -> "TimelineAggregator":
        """Batch-build a timeline from a loaded trace."""
        timeline = cls(interval_s=interval_s,
                       capacity_blocks=capacity_blocks,
                       num_boards=num_boards,
                       board_capacity=board_capacity)
        if timeline.board_capacity is None and num_boards:
            timeline.board_capacity = capacity_blocks // num_boards
        last_t = 0.0
        for entry in events:
            timeline.observe(entry)
            last_t = max(last_t, entry["t"])
        timeline.finish(last_t if end_t is None else end_t)
        return timeline

    def finish(self, t_end: float) -> None:
        """Close every bucket through the one containing ``t_end``."""
        if self.finished:
            return
        target = self._bucket_of(t_end) + 1
        while self._bucket < target:
            self._close_bucket()
        self.finished = True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bucket_of(self, t: float) -> int:
        """Index of the bucket containing ``t`` (float-robust).

        ``int(t // interval)`` misbuckets times that sit one ulp below
        a boundary: ``0.3 // 0.1 == 2.0`` because ``0.3 / 0.1`` is
        ``2.9999...96``, so an event *at* a boundary could close one
        bucket too few and land in the previous interval.  Snap
        quotients within a relative epsilon of the next integer up to
        it -- boundary events then bucket as if computed exactly.
        """
        q = t / self.interval_s
        k = math.floor(q)
        if (k + 1) - q <= 1e-9 * max(1.0, abs(q)):
            return k + 1
        return k

    def _advance(self, t: float) -> None:
        target = self._bucket_of(t)
        while self._bucket < target:
            self._close_bucket()

    def _close_bucket(self) -> None:
        self._closing = True
        try:
            sample = self._sample(
                (self._bucket + 1) * self.interval_s)
            self.buckets.append(sample)
            self._bucket += 1
            self._arrivals = self._deploys = self._completions = 0
            self._migrations = 0
            for listener in self._listeners:
                listener(sample["t"], sample)
        finally:
            self._closing = False

    def _sample(self, t_end: float) -> dict:
        capacity = self.capacity_blocks or 0
        utilization = (self._allocated / capacity) if capacity else 0.0
        max_share = (max(self._tenant_blocks.values(), default=0)
                     / capacity if capacity else 0.0)
        sample = {
            "t": t_end,
            "utilization": utilization,
            "allocated_blocks": self._allocated,
            "queue_depth": self._queue,
            "fragmentation": self._fragmentation(),
            "ring_max_flows": self._ring_max_flows(),
            "failed_boards": len(self._failed_boards),
            "quarantined_boards": len(self._quarantined),
            "active_tenants": len(self._tenant_blocks),
            "max_tenant_share": max_share,
            "arrivals": self._arrivals,
            "deploys": self._deploys,
            "completions": self._completions,
            "migrations": self._migrations,
        }
        if self.num_boards:
            sample["board_occupancy"] = self._occ_arr.tolist()
        return sample

    def _fragmentation(self) -> float:
        if not self.num_boards or not self.board_capacity:
            return 0.0
        free = self.board_capacity - self._occ_arr
        if self._failed_boards:
            keep = np.ones(self.num_boards, dtype=bool)
            keep[sorted(self._failed_boards)] = False
            free = free[keep]
        # .tolist() hands fragmentation_index python ints, keeping the
        # division bit-identical to the scalar path it shares with
        # analysis/occupancy
        return fragmentation_index(free.tolist())

    def _ring_max_flows(self) -> int:
        if self._ring is None:
            return 0
        return self._ring.peak_segment_flows()

    # ---- per-event state transitions ---------------------------------
    def _apply(self, name: str, fields: dict) -> None:
        if name == "sim.arrival":
            self._queue += 1
            self._arrivals += 1
        elif name == "sim.deploy":
            self._queue -= 1
            self._deploys += 1
        elif name == "sim.complete":
            self._completions += 1
        elif name == "sim.evict":
            if fields.get("reason") == "requeued":
                self._queue += 1
        elif name == "sim.permanent_failure":
            self._queue -= 1
        elif name == "ctrl.deploy":
            self._deploy(fields)
        elif name == "ctrl.migrate":
            self._migrations += 1
            if fields.get("blocks_by_board") is not None:
                # re-key the holding onto its new boards (release +
                # deploy keeps occupancy/tenant/ring math incremental);
                # legacy events without per-board counts only bump the
                # rate counter
                self._deploy(fields)
        elif name in ("ctrl.release", "ctrl.evict"):
            self._release(fields)
        elif name == "ctrl.board_fail":
            board = fields.get("board")
            if board is not None:
                self._failed_boards.add(int(board))
        elif name == "ctrl.board_repair":
            board = fields.get("board")
            if board is not None:
                self._failed_boards.discard(int(board))
        elif name == "sim.shed":
            self._queue -= 1
        elif name == "ctrl.quarantine":
            board = fields.get("board")
            if board is not None:
                self._quarantined.add(int(board))
        elif name == "ctrl.probation":
            # probation boards serve traffic again; only full
            # quarantine counts as lost capacity in the series
            board = fields.get("board")
            if board is not None:
                self._quarantined.discard(int(board))

    def _deploy(self, fields: dict) -> None:
        request = fields.get("request")
        blocks = int(fields.get("blocks", 0))
        tenant = fields.get("tenant", "")
        per_board = tuple((int(b), int(n)) for b, n in
                          fields.get("blocks_by_board") or ())
        spans = bool(fields.get("spans")) and len(per_board) > 1
        if request in self._holdings:
            # a redeploy without a matching release would double-count
            self._release({"request": request})
        self._allocated += blocks
        if self._occ_arr is not None:
            for board, count in per_board:
                self._occ_arr[board] += count
        else:
            for board, count in per_board:
                self._board_occ[board] = \
                    self._board_occ.get(board, 0) + count
        self._tenant_blocks[tenant] = \
            self._tenant_blocks.get(tenant, 0) + blocks
        if spans and self._ring is not None:
            self._ring.register_flow(request,
                                     [b for b, _ in per_board])
        self._holdings[request] = (blocks, per_board, tenant, spans)

    def _release(self, fields: dict) -> None:
        held = self._holdings.pop(fields.get("request"), None)
        if held is None:
            return  # e.g. a trace that starts mid-run
        blocks, per_board, tenant, spans = held
        self._allocated -= blocks
        if self._occ_arr is not None:
            for board, count in per_board:
                self._occ_arr[board] -= count
        else:
            for board, count in per_board:
                remaining = self._board_occ.get(board, 0) - count
                if remaining > 0:
                    self._board_occ[board] = remaining
                else:
                    self._board_occ.pop(board, None)
        remaining = self._tenant_blocks.get(tenant, 0) - blocks
        if remaining > 0:
            self._tenant_blocks[tenant] = remaining
        else:
            self._tenant_blocks.pop(tenant, None)
        if spans and self._ring is not None:
            self._ring.release_flow(fields.get("request"))

    # ------------------------------------------------------------------
    # accessors & export
    # ------------------------------------------------------------------
    def tenant_blocks(self) -> dict[str, int]:
        """Current per-tenant block holdings (live view, not a series)."""
        return dict(self._tenant_blocks)

    def series(self, field: str) -> list:
        """One column across all closed buckets."""
        return [bucket[field] for bucket in self.buckets]

    def as_dict(self) -> dict:
        return {
            "interval_s": self.interval_s,
            "capacity_blocks": self.capacity_blocks,
            "num_boards": self.num_boards,
            "buckets": [dict(bucket) for bucket in self.buckets],
        }

    def to_json(self) -> str:
        """Byte-stable export: compact, key-sorted JSON."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def to_csv(self) -> str:
        """Fixed-column CSV (board occupancy appended per board)."""
        boards = self.num_boards or 0
        header = list(BUCKET_FIELDS) + [f"board{b}"
                                        for b in range(boards)]
        lines = [",".join(header)]
        for bucket in self.buckets:
            # .get: buckets restored from pre-migration snapshots lack
            # the newest columns
            row = [_csv_cell(bucket.get(f, 0)) for f in BUCKET_FIELDS]
            occ = bucket.get("board_occupancy", [])
            row.extend(str(occ[b]) if b < len(occ) else "0"
                       for b in range(boards))
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def dump(self, path: "str | Path") -> int:
        """Write JSON (or CSV for a ``.csv`` path); returns bucket count."""
        path = Path(path)
        if path.suffix == ".csv":
            path.write_text(self.to_csv())
        else:
            path.write_text(self.to_json() + "\n")
        return len(self.buckets)

    def _board_occ_dict(self) -> dict[str, int]:
        """Occupancy as a sparse str-keyed dict (the snapshot format,
        shared by the array and dict representations)."""
        if self._occ_arr is not None:
            nz = np.nonzero(self._occ_arr)[0]
            return {str(int(b)): int(self._occ_arr[b]) for b in nz}
        return {str(b): n for b, n in sorted(self._board_occ.items())}

    # ------------------------------------------------------------------
    # snapshot / restore (warm-restart support)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able state capturing both the series and the live
        tracked values, so a restored aggregator continues the stream
        exactly where this one stopped."""
        return {
            "interval_s": self.interval_s,
            "capacity_blocks": self.capacity_blocks,
            "num_boards": self.num_boards,
            "board_capacity": self.board_capacity,
            "bucket": self._bucket,
            "finished": self.finished,
            "buckets": [dict(b) for b in self.buckets],
            "allocated": self._allocated,
            "queue": self._queue,
            "board_occ": self._board_occ_dict(),
            "tenant_blocks": dict(sorted(
                self._tenant_blocks.items())),
            "failed_boards": sorted(self._failed_boards),
            "quarantined": sorted(self._quarantined),
            "holdings": [
                [rid, blocks, [list(p) for p in per_board], tenant,
                 spans]
                for rid, (blocks, per_board, tenant, spans)
                in sorted(self._holdings.items())],
            "rates": [self._arrivals, self._deploys,
                      self._completions, self._migrations],
        }

    @classmethod
    def restore(cls, state: dict) -> "TimelineAggregator":
        timeline = cls(interval_s=state["interval_s"],
                       capacity_blocks=state["capacity_blocks"],
                       num_boards=state["num_boards"],
                       board_capacity=state["board_capacity"])
        timeline._bucket = state["bucket"]
        timeline.finished = state["finished"]
        timeline.buckets = [dict(b) for b in state["buckets"]]
        timeline._allocated = state["allocated"]
        timeline._queue = state["queue"]
        if timeline._occ_arr is not None:
            for b, n in state["board_occ"].items():
                timeline._occ_arr[int(b)] = int(n)
        else:
            timeline._board_occ = {int(b): n for b, n
                                   in state["board_occ"].items()}
        timeline._tenant_blocks = dict(state["tenant_blocks"])
        timeline._failed_boards = set(state["failed_boards"])
        # pre-guard snapshots have no quarantine set
        timeline._quarantined = set(state.get("quarantined", []))
        for rid, blocks, per_board, tenant, spans in state["holdings"]:
            pairs = tuple((int(b), int(n)) for b, n in per_board)
            timeline._holdings[rid] = (blocks, pairs, tenant, spans)
            if spans and timeline._ring is not None:
                timeline._ring.register_flow(
                    rid, [b for b, _ in pairs])
        rates = state["rates"]
        timeline._arrivals, timeline._deploys, \
            timeline._completions = rates[:3]
        # pre-migration snapshots carry three rate counters
        timeline._migrations = rates[3] if len(rates) > 3 else 0
        return timeline


def _csv_cell(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)
