"""Observability layer: structured tracing and metrics export.

``repro.obs`` is the measurement substrate under the System Layer's
performance claims: a :class:`Tracer` that records every scheduler,
allocator, compiler and fault decision with deterministic sim-time
timestamps (JSON-lines export, byte-identical across seeded runs), and
a :class:`MetricsRegistry` of counters/gauges/histograms exportable as
JSON or Prometheus text.  Both are purely observational -- with tracing
disabled the instrumented code paths cost one falsy check and simulation
results are bit-identical to an uninstrumented build.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.slo import SLOEngine, SLORule, parse_slo
from repro.obs.stats import (fragmentation_index, percentile,
                             quantile_from_cumulative)
from repro.obs.timeline import TimelineAggregator
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "TimelineAggregator",
    "PhaseProfiler",
    "SLOEngine",
    "SLORule",
    "parse_slo",
    "percentile",
    "quantile_from_cumulative",
    "fragmentation_index",
]
