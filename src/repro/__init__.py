"""ViTAL: Virtualizing FPGAs in the Cloud -- a full reproduction.

This library reimplements the ViTAL stack of Zha & Li (ASPLOS 2020): a
homogeneous virtual-block abstraction over FPGA clusters that decouples
compilation from resource allocation, a six-step compilation flow with a
placement-based partitioner and latency-insensitive interfaces, and a
runtime system controller with communication-aware allocation -- plus the
simulated hardware substrate (devices, cluster, interconnect) and the
baselines (per-device, slot-based, AmorphOS) its evaluation compares
against.

Quickstart::

    from repro import ViTALStack, benchmark

    stack = ViTALStack()                      # 4x XCVU37P cluster
    app = stack.compile(benchmark("svhn", "L"))
    deployment = stack.deploy(app)
    print(deployment.placement.boards, stack.utilization())
    stack.release(deployment)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core.stack import ViTALStack
from repro.core.programming import VirtualFPGA, custom_kernel
from repro.cluster.cluster import FPGACluster, make_cluster
from repro.compiler.flow import CompilationFlow
from repro.compiler.bitstream import CompiledApp
from repro.fabric.resources import ResourceVector
from repro.fabric.partition import PartitionPlanner
from repro.fabric.devices import make_xcvu37p, make_vu13p
from repro.hls.kernels import (
    KernelSpec,
    SizeClass,
    benchmark,
    all_benchmarks,
)
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation
from repro.faults import (
    FaultSchedule,
    FaultInjector,
    BoardDown,
    BoardUp,
    LinkDegraded,
    LinkRestored,
    ReconfigTransientFault,
    FailRequeuePolicy,
    MigrateOnFailurePolicy,
)

__version__ = "1.0.0"

__all__ = [
    "ViTALStack",
    "VirtualFPGA",
    "custom_kernel",
    "FPGACluster",
    "make_cluster",
    "CompilationFlow",
    "CompiledApp",
    "ResourceVector",
    "PartitionPlanner",
    "make_xcvu37p",
    "make_vu13p",
    "KernelSpec",
    "SizeClass",
    "benchmark",
    "all_benchmarks",
    "SystemController",
    "verify_isolation",
    "FaultSchedule",
    "FaultInjector",
    "BoardDown",
    "BoardUp",
    "LinkDegraded",
    "LinkRestored",
    "ReconfigTransientFault",
    "FailRequeuePolicy",
    "MigrateOnFailurePolicy",
    "__version__",
]
