"""AmorphOS in high-throughput mode (Fig. 2c).

AmorphOS (OSDI '18) raises utilization by *combining* several applications
into one design that is statically compiled onto a single FPGA.  The
consequences the paper leans on, all modeled here:

- **single-FPGA only**: an application never spans boards, so a large app
  that cannot co-reside with anything (e.g. workload set #3, all-Large)
  gets a device to itself;
- **coupled compilation and allocation**: every co-residence set must have
  been offline compiled.  We grant the scheduler an *oracle* combination
  library (every set it ever wants exists), which strictly favors
  AmorphOS; the combination count is still tracked, because Section 5.4
  contrasts ViTAL's one-compile-per-app against AmorphOS's "hundreds of
  combinations";
- **full-device reconfiguration on transition**: adding an application to
  a board reprograms the whole device, pausing the co-residents for the
  duration (returned as ``corunner_penalties`` for the simulator to
  apply).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import FPGACluster
from repro.compiler.bitstream import CompiledApp
from repro.fabric.resources import ResourceVector
from repro.runtime.types import Deployment, Placement

__all__ = ["AmorphOSManager"]

#: Fraction of device resources usable by combined user logic; the rest is
#: the AmorphOS hull (shell) -- comparable to ViTAL's reserved regions.
HULL_OVERHEAD = 0.10
#: A statically combined full-device design cannot fill the fabric either:
#: P&R needs the same routing/packing headroom ViTAL's partitioner leaves
#: per block (PACKING_HEADROOM), so combination feasibility is capped at
#: the same efficiency for a like-for-like comparison.
COMBINE_EFFICIENCY = 0.73


@dataclass(slots=True)
class _Board:
    capacity: ResourceVector
    used: ResourceVector = field(default_factory=ResourceVector.zero)
    residents: dict[int, CompiledApp] = field(default_factory=dict)
    next_slot: int = 0

    def fits(self, app: CompiledApp) -> bool:
        return (self.used + app.resources).fits_in(self.capacity)

    def leftover(self, app: CompiledApp) -> float:
        after = self.used + app.resources
        return 1.0 - after.utilization_of(self.capacity)


class AmorphOSManager:
    """High-throughput-mode scheduler over one cluster."""

    name = "amorphos-ht"

    def __init__(self, cluster: FPGACluster,
                 max_residents: int = 3) -> None:
        self.cluster = cluster
        #: largest co-residence set with an offline-compiled combination.
        #: Every k-subset of the 21-design benchmark set must be compiled
        #: ahead of time; k=3 already means >1500 combinations (Section
        #: 5.4's "hundreds"), so larger sets are not realistically
        #: available offline.
        self.max_residents = max_residents
        capacity = (cluster.boards[0].device.capacity
                    * (1 - HULL_OVERHEAD) * COMBINE_EFFICIENCY)
        self._boards = {b.board_id: _Board(capacity=capacity)
                        for b in cluster.boards}
        #: board id -> block-equivalents occupied; refreshed on the
        #: transitions that change ``used`` so per-event occupancy
        #: queries stop recomputing every board's utilization
        self._busy_cache: dict[int, float] = {
            b.board_id: 0.0 for b in cluster.boards}
        #: distinct co-residence sets ever materialized (each one is an
        #: offline compilation in real AmorphOS)
        self.combinations_seen: set[frozenset[str]] = set()

    # ------------------------------------------------------------------
    def try_deploy(self, app: CompiledApp, request_id: int,
                   now: float) -> Deployment | None:
        candidates = [
            (board_id, board)
            for board_id, board in self._boards.items()
            if board.fits(app)
            and len(board.residents) < self.max_residents]
        if not candidates:
            return None
        # best fit: least leftover after admission (densest packing)
        board_id, board = min(candidates,
                              key=lambda item: item[1].leftover(app))

        reconfig = self.cluster.reconfigurer.full_device_time_s()
        penalties = {rid: reconfig for rid in board.residents}

        board.residents[request_id] = app
        board.used = board.used + app.resources
        self._refresh_busy(board_id)
        combo = frozenset(a.name for a in board.residents.values())
        self.combinations_seen.add(combo)

        placement = Placement(mapping={0: (board_id, board.next_slot)})
        board.next_slot += 1
        return Deployment(
            request_id=request_id,
            app=app,
            tenant=f"tenant-{request_id}",
            placement=placement,
            deployed_at=now,
            reconfig_time_s=reconfig,
            service_time_s=app.service_time_s(),
            corunner_penalties=penalties,
        )

    def release(self, deployment: Deployment, now: float = 0.0) -> None:
        board_id = deployment.placement.boards[0]
        board = self._boards[board_id]
        app = board.residents.pop(deployment.request_id, None)
        if app is None:
            raise RuntimeError(
                f"request {deployment.request_id} not resident on "
                f"board {board_id}")
        board.used = (board.used - app.resources).clamp_nonnegative()
        self._refresh_busy(board_id)

    # ------------------------------------------------------------------
    def _refresh_busy(self, board_id: int) -> None:
        board = self._boards[board_id]
        frac = board.used.utilization_of(board.capacity)
        self._busy_cache[board_id] = \
            min(1.0, frac) * self.cluster.blocks_per_board

    def busy_blocks(self) -> float:
        """Block-equivalents occupied, for utilization comparison.

        AmorphOS has no blocks; its occupancy is resource-based, converted
        to the cluster's block units so Fig. 10 compares like units.
        """
        total = 0.0
        for busy in self._busy_cache.values():
            total += busy
        return total

    def capacity_blocks(self) -> float:
        return float(self.cluster.total_blocks)

    @property
    def combination_count(self) -> int:
        return len(self.combinations_seen)
