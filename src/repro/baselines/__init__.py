"""Baseline cluster managers the paper compares against (Section 5.2/5.5).

All managers implement the same duck-typed interface as
:class:`repro.runtime.controller.SystemController` -- ``try_deploy`` /
``release`` / ``busy_blocks`` / ``capacity_blocks`` -- so the simulator
can swap them freely:

- :class:`PerDeviceManager` -- the evaluation's baseline: one whole FPGA
  exhaustively allocated per application (AWS F1-style, Fig. 2a);
- :class:`SlotBasedManager` -- fixed identical slots per FPGA (Fig. 2b;
  also AmorphOS's low-latency mode);
- :class:`AmorphOSManager` -- AmorphOS high-throughput mode (Fig. 2c):
  applications combined onto a single FPGA via offline-compiled
  combinations, full-device reconfiguration on every transition, no
  multi-FPGA support.
"""

from repro.baselines.base import ClusterManager
from repro.baselines.per_device import PerDeviceManager
from repro.baselines.slot_based import SlotBasedManager
from repro.baselines.amorphos import AmorphOSManager

__all__ = [
    "ClusterManager",
    "PerDeviceManager",
    "SlotBasedManager",
    "AmorphOSManager",
]
