"""Slot-based management (Fig. 2b).

Several pre-ViTAL systems (Byma et al., Chen et al., AmorphOS in
low-latency mode) divide each FPGA into a few identical slots and give an
application one or more slots *on a single FPGA*.  The granularity is much
coarser than ViTAL's physical blocks -- four slots per device here, per
the cited systems -- so internal fragmentation persists: a small app
burns a quarter of a device, and a large app rounds up to whole slots.
There is no multi-FPGA support; an app needing more slots than one device
offers simply takes every slot of one device.
"""

from __future__ import annotations

from repro.cluster.cluster import FPGACluster
from repro.compiler.bitstream import CompiledApp
from repro.fabric.resources import ResourceVector
from repro.runtime.types import Deployment, Placement

__all__ = ["SlotBasedManager"]


class SlotBasedManager:
    """Fixed identical slots, single-FPGA placements."""

    name = "slot-based"

    def __init__(self, cluster: FPGACluster,
                 slots_per_fpga: int = 4) -> None:
        if slots_per_fpga < 1:
            raise ValueError("need at least one slot per FPGA")
        self.cluster = cluster
        self.slots_per_fpga = slots_per_fpga
        user = cluster.partition.user_resources()
        self.slot_capacity: ResourceVector = user * (1 / slots_per_fpga)
        #: (board, slot) -> owning request id
        self._owner: dict[tuple[int, int], int | None] = {
            (b.board_id, s): None
            for b in cluster.boards for s in range(slots_per_fpga)}
        #: occupied-slot count, so per-event occupancy queries are O(1)
        self._busy_slots = 0

    # ------------------------------------------------------------------
    def slots_needed(self, app: CompiledApp) -> int:
        """Whole slots the app rounds up to (internal fragmentation)."""
        need = app.resources.blocks_needed(self.slot_capacity)
        return min(need, self.slots_per_fpga)

    def try_deploy(self, app: CompiledApp, request_id: int,
                   now: float) -> Deployment | None:
        need = self.slots_needed(app)
        best_board: int | None = None
        best_free = None
        for board in self.cluster.boards:
            free = [s for s in range(self.slots_per_fpga)
                    if self._owner[(board.board_id, s)] is None]
            if len(free) >= need and (
                    best_free is None or len(free) < len(best_free)):
                best_board, best_free = board.board_id, free
        if best_board is None:
            return None
        taken = best_free[:need]
        for slot in taken:
            self._owner[(best_board, slot)] = request_id
        self._busy_slots += len(taken)
        placement = Placement(mapping={
            i: (best_board, slot) for i, slot in enumerate(taken)})
        slot_bitstream_mb = 180.0 / self.slots_per_fpga
        reconfig = sum(
            self.cluster.reconfigurer.partial_time_s(slot_bitstream_mb)
            for _ in taken)
        return Deployment(
            request_id=request_id,
            app=app,
            tenant=f"tenant-{request_id}",
            placement=placement,
            deployed_at=now,
            reconfig_time_s=reconfig,
            service_time_s=app.service_time_s(),
        )

    def release(self, deployment: Deployment, now: float = 0.0) -> None:
        freed = 0
        for key, owner in self._owner.items():
            if owner == deployment.request_id:
                self._owner[key] = None
                freed += 1
        if freed == 0:
            raise RuntimeError(
                f"request {deployment.request_id} holds no slots")
        self._busy_slots -= freed

    # ------------------------------------------------------------------
    def busy_blocks(self) -> float:
        blocks_per_slot = (self.cluster.blocks_per_board
                           / self.slots_per_fpga)
        return self._busy_slots * blocks_per_slot

    def capacity_blocks(self) -> float:
        return float(self.cluster.total_blocks)
