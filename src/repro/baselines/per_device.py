"""Per-device allocation: the paper's baseline (Fig. 2a).

"One simple strategy currently adopted by cloud vendors (e.g., Amazon AWS)
is to manage the pool of FPGA resources at a per-device granularity, i.e.,
allocating one physical FPGA device exhaustively to one application."

Every deployment gets a whole board regardless of its footprint -- the
internal fragmentation ViTAL's fine-grained sharing removes -- and pays a
full-device reconfiguration.
"""

from __future__ import annotations

from repro.cluster.cluster import FPGACluster
from repro.compiler.bitstream import CompiledApp
from repro.runtime.types import Deployment, Placement

__all__ = ["PerDeviceManager"]


class PerDeviceManager:
    """Whole-FPGA-per-application manager."""

    name = "per-device"

    def __init__(self, cluster: FPGACluster) -> None:
        self.cluster = cluster
        self._board_owner: dict[int, int | None] = {
            b.board_id: None for b in cluster.boards}
        #: owned-board count, so per-event occupancy queries are O(1)
        self._busy_boards = 0
        self._failed: set[int] = set()
        #: request id -> live deployment (fault eviction needs the
        #: deployment object to hand back to the recovery machinery)
        self._live: dict[int, Deployment] = {}

    # ------------------------------------------------------------------
    def try_deploy(self, app: CompiledApp, request_id: int,
                   now: float) -> Deployment | None:
        board_id = next((b for b, owner in self._board_owner.items()
                         if owner is None and b not in self._failed),
                        None)
        if board_id is None:
            return None
        self._board_owner[board_id] = request_id
        self._busy_boards += 1
        blocks = self.cluster.board(board_id).num_blocks
        placement = Placement(mapping={
            i: (board_id, i) for i in range(blocks)})
        deployment = Deployment(
            request_id=request_id,
            app=app,
            tenant=f"tenant-{request_id}",
            placement=placement,
            deployed_at=now,
            reconfig_time_s=self.cluster.reconfigurer.full_device_time_s(),
            service_time_s=app.service_time_s(),
        )
        self._live[request_id] = deployment
        return deployment

    def release(self, deployment: Deployment, now: float = 0.0) -> None:
        board_id = deployment.placement.boards[0]
        if self._board_owner.get(board_id) != deployment.request_id:
            raise RuntimeError(
                f"board {board_id} not held by "
                f"request {deployment.request_id}")
        self._board_owner[board_id] = None
        self._busy_boards -= 1
        self._live.pop(deployment.request_id, None)

    # ------------------------------------------------------------------
    # failure handling (fault model)
    # ------------------------------------------------------------------
    def fail_board(self, board_id: int,
                   now: float = 0.0) -> list[Deployment]:
        """Fail-stop one board, evicting its (single) tenant.

        Per-device bitstreams are compiled for one specific board, so an
        evicted application cannot be relocated -- it restarts from
        scratch wherever a whole free board appears (the recovery
        asymmetry the availability benchmark measures).
        """
        if board_id not in self._board_owner:
            raise KeyError(f"no board {board_id} in this cluster")
        if board_id in self._failed:
            return []
        self._failed.add(board_id)
        owner = self._board_owner.get(board_id)
        if owner is None:
            return []
        self._board_owner[board_id] = None
        self._busy_boards -= 1
        return [self._live.pop(owner)]

    def repair_board(self, board_id: int, now: float = 0.0) -> None:
        self._failed.discard(board_id)

    def failed_boards(self) -> list[int]:
        return sorted(self._failed)

    # ------------------------------------------------------------------
    def busy_blocks(self) -> float:
        return self.cluster.blocks_per_board * self._busy_boards

    def capacity_blocks(self) -> float:
        return float(self.cluster.total_blocks)

    def free_boards(self) -> int:
        return sum(1 for b, owner in self._board_owner.items()
                   if owner is None and b not in self._failed)
