"""The manager interface every resource manager implements.

The simulator (:mod:`repro.sim.experiment`) is manager-agnostic: anything
satisfying this protocol can be dropped into the Fig. 9 / Fig. 10
experiments, which is how ViTAL, the per-device baseline, the slot-based
method and AmorphOS are compared on identical workloads.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.compiler.bitstream import CompiledApp
from repro.runtime.types import Deployment

__all__ = ["ClusterManager"]


@runtime_checkable
class ClusterManager(Protocol):
    """A cluster resource manager."""

    name: str

    def try_deploy(self, app: CompiledApp, request_id: int,
                   now: float) -> Deployment | None:
        """Deploy ``app`` now, or return ``None`` if it must wait."""
        ...

    def release(self, deployment: Deployment, now: float) -> None:
        """Free everything ``deployment`` holds."""
        ...

    def busy_blocks(self) -> float:
        """Physical blocks (or block-equivalents) currently occupied."""
        ...

    def capacity_blocks(self) -> float:
        """Total physical blocks (or block-equivalents) managed."""
        ...
