"""Reporting helpers used by the benchmark harness."""

from repro.analysis.report import format_table, format_bar_series
from repro.analysis.spans import (decision_summary, format_trace_summary,
                                  load_trace_events, span_summary)
from repro.analysis.summary import build_report, write_report

__all__ = ["format_table", "format_bar_series", "build_report",
           "write_report", "load_trace_events", "span_summary",
           "decision_summary", "format_trace_summary"]
