"""Reporting helpers used by the benchmark harness."""

from repro.analysis.report import format_table, format_bar_series
from repro.analysis.summary import build_report, write_report

__all__ = ["format_table", "format_bar_series", "build_report",
           "write_report"]
