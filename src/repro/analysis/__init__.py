"""Reporting helpers used by the benchmark harness."""

from repro.analysis.bench import (BENCH_SCHEMA_VERSION,
                                  BenchSchemaError, append_entry,
                                  flatten_metrics, format_trajectory,
                                  load_bench, merge_metrics,
                                  metric_direction, trajectory_gate,
                                  validate_doc, validate_entry)
from repro.analysis.diff import (diff_metrics, diff_profiles,
                                 diff_traces, find_regressions,
                                 format_diff, trace_profile)
from repro.analysis.report import format_table, format_bar_series
from repro.analysis.spans import (decision_summary, format_trace_summary,
                                  load_trace_events, span_summary)
from repro.analysis.summary import build_report, write_report

__all__ = ["format_table", "format_bar_series", "build_report",
           "write_report", "load_trace_events", "span_summary",
           "decision_summary", "format_trace_summary", "trace_profile",
           "diff_profiles", "diff_traces", "diff_metrics",
           "find_regressions", "format_diff",
           "BENCH_SCHEMA_VERSION", "BenchSchemaError", "append_entry",
           "flatten_metrics", "format_trajectory", "load_bench",
           "merge_metrics", "metric_direction", "trajectory_gate",
           "validate_doc", "validate_entry"]
