"""Span-viewer: summarize a JSON-lines trace for operators.

A trace written by :class:`repro.obs.tracer.Tracer` is one decision per
line; this module turns it back into the questions an operator asks:
which spans dominated, how many deployments were rejected and *why*,
how hard the allocator searched, and the percentiles of the decision
latencies -- the ``repro report --trace`` / ``repro simulate --trace``
surfacing of the observability layer.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.report import format_table
from repro.obs.stats import percentile as _percentile

__all__ = ["load_trace_events", "span_summary", "decision_summary",
           "format_trace_summary"]


def load_trace_events(path: "str | Path") -> list[dict]:
    """Parse a JSONL trace file; malformed input raises ``ValueError``."""
    events: list[dict] = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not valid JSON ({exc.msg})") from exc
        if not isinstance(entry, dict) or "name" not in entry \
                or "t" not in entry:
            raise ValueError(
                f"{path}:{lineno}: not a trace entry "
                "(missing 'name'/'t')")
        events.append(entry)
    if not events:
        raise ValueError(f"{path}: empty trace")
    return events


def span_summary(events: list[dict]) -> list[dict]:
    """Per-name aggregates: count, total/mean/p95 duration (spans) or
    just counts (point events)."""
    by_name: dict[str, list[float]] = {}
    kinds: dict[str, str] = {}
    counts: dict[str, int] = {}
    for event in events:
        name = event["name"]
        kinds[name] = event.get("kind", "event")
        counts[name] = counts.get(name, 0) + 1
        by_name.setdefault(name, [])
        if "duration_s" in event:
            by_name[name].append(float(event["duration_s"]))
    out = []
    for name in sorted(by_name):
        durations = sorted(by_name[name])
        row = {"name": name, "kind": kinds[name],
               "count": counts[name]}
        if durations:
            row.update(
                total_s=sum(durations),
                mean_s=sum(durations) / len(durations),
                p95_s=_percentile(durations, 0.95))
        out.append(row)
    return out


def decision_summary(events: list[dict]) -> dict:
    """Controller/simulator decision accounting from one trace.

    Returns deploys, rejects-by-reason, evictions-by-reason, migrates,
    releases, and wait/response percentiles -- everything keyed by the
    machine-readable ``reason`` fields the instrumentation writes.
    Allocator effort counts both successful searches (``policy.allocate``
    events) and failed ones (the ``search`` tuple on ``ctrl.reject``).
    """
    rejects: dict[str, int] = {}
    evictions: dict[str, int] = {}
    waits: list[float] = []
    responses: list[float] = []
    search_visited = search_pruned = search_calls = 0
    counts = {"deploys": 0, "releases": 0, "migrates": 0,
              "recoveries": 0, "faults": 0, "permanent_failures": 0}
    for event in events:
        name = event["name"]
        fields = event.get("fields", {})
        if name == "ctrl.deploy":
            counts["deploys"] += 1
        elif name == "ctrl.reject":
            reason = fields.get("reason", "unknown")
            rejects[reason] = rejects.get(reason, 0) + 1
            # a failed allocator search rides along as
            # [reason, rounds, visited, pruned]
            search = fields.get("search")
            if search:
                search_calls += 1
                search_visited += int(search[2])
                search_pruned += int(search[3])
        elif name == "ctrl.release":
            counts["releases"] += 1
        elif name == "ctrl.migrate":
            counts["migrates"] += 1
        elif name == "ctrl.recover":
            counts["recoveries"] += 1
        elif name in ("sim.fault", "ctrl.board_fail"):
            counts["faults"] += name == "sim.fault"
        elif name == "sim.permanent_failure":
            counts["permanent_failures"] += 1
        elif name == "sim.evict" or name == "ctrl.evict":
            if name == "sim.evict":
                reason = fields.get("reason", "unknown")
                evictions[reason] = evictions.get(reason, 0) + 1
        elif name == "sim.deploy":
            waits.append(float(fields.get("wait_s", 0.0)))
        elif name == "sim.complete":
            responses.append(float(fields.get("response_s", 0.0)))
        elif name == "policy.allocate":
            search_calls += 1
            search_visited += int(fields.get("visited", 0))
            search_pruned += int(fields.get("pruned", 0))
    waits.sort()
    responses.sort()
    return {
        **counts,
        "rejects": dict(sorted(rejects.items())),
        "evictions": dict(sorted(evictions.items())),
        "wait_p50_s": _percentile(waits, 0.50),
        "wait_p95_s": _percentile(waits, 0.95),
        "response_p50_s": _percentile(responses, 0.50),
        "response_p95_s": _percentile(responses, 0.95),
        "allocator_calls": search_calls,
        "allocator_visited": search_visited,
        "allocator_pruned": search_pruned,
    }


def format_trace_summary(events: list[dict]) -> str:
    """Human-readable span + decision tables (the span viewer)."""
    spans = span_summary(events)
    span_rows = []
    for row in spans:
        if "total_s" in row:
            span_rows.append(
                [row["name"], row["count"], f"{row['total_s']:.3f}",
                 f"{row['mean_s']:.4f}", f"{row['p95_s']:.4f}"])
        else:
            span_rows.append([row["name"], row["count"], "-", "-", "-"])
    decisions = decision_summary(events)
    t0 = min(e["t"] for e in events)
    t1 = max(e["t"] for e in events)
    reject_text = " ".join(
        f"{reason}={n}" for reason, n in decisions["rejects"].items()) \
        or "-"
    evict_text = " ".join(
        f"{reason}={n}"
        for reason, n in decisions["evictions"].items()) or "-"
    decision_rows = [
        ["deploys", decisions["deploys"]],
        ["rejects", reject_text],
        ["releases", decisions["releases"]],
        ["migrates", decisions["migrates"]],
        ["recoveries", decisions["recoveries"]],
        ["evictions", evict_text],
        ["faults", decisions["faults"]],
        ["permanent failures", decisions["permanent_failures"]],
        ["wait p50 / p95 (s)",
         f"{decisions['wait_p50_s']:.2f} / "
         f"{decisions['wait_p95_s']:.2f}"],
        ["response p50 / p95 (s)",
         f"{decisions['response_p50_s']:.2f} / "
         f"{decisions['response_p95_s']:.2f}"],
        ["allocator calls", decisions["allocator_calls"]],
        ["subsets visited / pruned",
         f"{decisions['allocator_visited']} / "
         f"{decisions['allocator_pruned']}"],
    ]
    parts = [
        f"{len(events)} trace entries over "
        f"[{t0:.2f} s, {t1:.2f} s] sim time",
        "",
        format_table(["name", "count", "total_s", "mean_s", "p95_s"],
                     span_rows, title="spans & events"),
        "",
        format_table(["decision", "value"], decision_rows,
                     title="decisions"),
    ]
    return "\n".join(parts)
