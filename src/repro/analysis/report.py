"""Plain-text tables and bar series for the benchmark harness.

The paper's artifacts are tables and figures; each bench prints the same
rows or series the paper reports so runs can be compared side by side with
the published numbers (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_bar_series", "format_availability"]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_series(labels: Sequence[str], values: Sequence[float],
                      title: str = "", width: int = 40,
                      unit: str = "") -> str:
    """Render a horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values, default=0.0)
    lines = [title] if title else []
    label_w = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak else 0)
        lines.append(f"{label.ljust(label_w)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


#: column order of one availability row: label, then the five
#: fault metrics every :class:`~repro.sim.metrics.SummaryMetrics` carries
AVAILABILITY_KEYS = ("interruptions", "recoveries", "permanently_failed",
                     "mean_time_to_recovery_s", "goodput_fraction")


def format_availability(rows: "Sequence[tuple[str, object]]",
                        title: str = "") -> str:
    """Render the availability comparison table (Section 6 extension).

    ``rows`` pairs a label (manager + recovery policy) with any object
    exposing the :data:`AVAILABILITY_KEYS` attributes -- in practice a
    ``SummaryMetrics``, but a mapping with those keys works too, so this
    module keeps its no-sim-imports layering.
    """
    table = []
    for label, summary in rows:
        cells: list[object] = [label]
        for key in AVAILABILITY_KEYS:
            value = (summary[key] if isinstance(summary, dict)
                     else getattr(summary, key))
            if key == "goodput_fraction":
                cells.append(f"{value:.1%}")
            elif key == "mean_time_to_recovery_s":
                cells.append(f"{value:.2f} s")
            else:
                cells.append(f"{value:.1f}")
        table.append(cells)
    return format_table(
        ["manager/policy", "interruptions", "recoveries",
         "perm. failed", "MTTR", "goodput"],
        table, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)
