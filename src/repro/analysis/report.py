"""Plain-text tables and bar series for the benchmark harness.

The paper's artifacts are tables and figures; each bench prints the same
rows or series the paper reports so runs can be compared side by side with
the published numbers (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_bar_series"]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_series(labels: Sequence[str], values: Sequence[float],
                      title: str = "", width: int = 40,
                      unit: str = "") -> str:
    """Render a horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values, default=0.0)
    lines = [title] if title else []
    label_w = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak else 0)
        lines.append(f"{label.ljust(label_w)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)
