"""Trace/metrics comparator: semantic regression gating for CI.

Two seeded runs of the simulator produce byte-identical traces, so any
divergence between a baseline and a candidate trace is a *behaviour*
change -- but a byte diff cannot say whether the change matters.  This
module compares at the semantic level instead:

- **profiles**: a trace is folded into a :func:`trace_profile` (span
  durations, decision counts, reject/eviction reasons, SLO violations);
  :func:`diff_profiles` reports the deltas and
  :func:`find_regressions` classifies which of them regress (new
  reject reasons, missing span/event types, p95 shifts beyond a
  tolerance, more SLO violations or permanent failures);
- **metrics**: two :meth:`MetricsRegistry.as_dict` snapshots are
  flattened per ``(name, labels)`` series and compared value-by-value.

The CLI front end is ``python -m repro diff baseline candidate``
(``--fail-on-regression`` turns regressions into exit code 1 -- the CI
gate against the committed golden trace), and ``report --format json``
emits exactly the profile document this module consumes, so a candidate
can be diffed without shipping its full trace.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.report import format_table
from repro.analysis.spans import decision_summary, load_trace_events, \
    span_summary

__all__ = ["trace_profile", "diff_profiles", "diff_traces",
           "diff_metrics", "find_regressions", "format_diff",
           "load_diff_input"]

#: Scalar decision keys compared one-to-one between profiles.
_DECISION_SCALARS: tuple[str, ...] = (
    "deploys", "releases", "migrates", "recoveries", "faults",
    "permanent_failures", "wait_p50_s", "wait_p95_s",
    "response_p50_s", "response_p95_s", "allocator_calls",
    "allocator_visited", "allocator_pruned")


def trace_profile(events: list[dict]) -> dict:
    """Fold a trace into the semantic shape the differ compares.

    The same document ``report --trace --format json`` emits.
    """
    spans = {row["name"]: {k: v for k, v in row.items() if k != "name"}
             for row in span_summary(events)}
    violations: dict[str, int] = {}
    recovered: dict[str, int] = {}
    for event in events:
        if event["name"] == "slo.violation":
            rule = event.get("fields", {}).get("rule", "?")
            violations[rule] = violations.get(rule, 0) + 1
        elif event["name"] == "slo.recovered":
            rule = event.get("fields", {}).get("rule", "?")
            recovered[rule] = recovered.get(rule, 0) + 1
    return {
        "entries": len(events),
        "spans": spans,
        "decisions": decision_summary(events),
        "slo": {"violations": dict(sorted(violations.items())),
                "recovered": dict(sorted(recovered.items()))},
    }


def _count_deltas(base: dict, cand: dict) -> dict:
    """``{key: {baseline, candidate, delta}}`` for keys that moved."""
    out = {}
    for key in sorted(set(base) | set(cand)):
        b, c = base.get(key, 0), cand.get(key, 0)
        if b != c:
            out[key] = {"baseline": b, "candidate": c, "delta": c - b}
    return out


def diff_profiles(baseline: dict, candidate: dict) -> dict:
    """Semantic deltas between two :func:`trace_profile` documents."""
    base_spans, cand_spans = baseline["spans"], candidate["spans"]
    new_names = sorted(set(cand_spans) - set(base_spans))
    missing_names = sorted(set(base_spans) - set(cand_spans))
    count_deltas = _count_deltas(
        {n: r["count"] for n, r in base_spans.items()},
        {n: r["count"] for n, r in cand_spans.items()})
    span_shifts = {}
    for name in sorted(set(base_spans) & set(cand_spans)):
        b, c = base_spans[name], cand_spans[name]
        if "p95_s" not in b or "p95_s" not in c:
            continue
        if b["p95_s"] != c["p95_s"]:
            ratio = (c["p95_s"] / b["p95_s"]
                     if b["p95_s"] > 0 else float("inf"))
            span_shifts[name] = {"baseline_p95_s": b["p95_s"],
                                 "candidate_p95_s": c["p95_s"],
                                 "ratio": ratio}
    base_dec, cand_dec = baseline["decisions"], candidate["decisions"]
    decision_deltas = {}
    for key in _DECISION_SCALARS:
        b, c = base_dec.get(key, 0), cand_dec.get(key, 0)
        if b != c:
            decision_deltas[key] = {"baseline": b, "candidate": c,
                                    "delta": c - b}
    base_slo = baseline.get("slo", {"violations": {}, "recovered": {}})
    cand_slo = candidate.get("slo", {"violations": {}, "recovered": {}})
    diff = {
        "new_names": new_names,
        "missing_names": missing_names,
        "count_deltas": count_deltas,
        "span_shifts": span_shifts,
        "reject_deltas": _count_deltas(base_dec.get("rejects", {}),
                                       cand_dec.get("rejects", {})),
        "eviction_deltas": _count_deltas(base_dec.get("evictions", {}),
                                         cand_dec.get("evictions", {})),
        "decision_deltas": decision_deltas,
        "slo_deltas": _count_deltas(base_slo.get("violations", {}),
                                    cand_slo.get("violations", {})),
    }
    diff["identical"] = not any(diff[k] for k in (
        "new_names", "missing_names", "count_deltas", "span_shifts",
        "reject_deltas", "eviction_deltas", "decision_deltas",
        "slo_deltas"))
    return diff


def diff_traces(baseline: list[dict], candidate: list[dict]) -> dict:
    return diff_profiles(trace_profile(baseline),
                         trace_profile(candidate))


def _flatten_metrics(doc: dict) -> dict:
    """``(name, labels...) -> scalar`` series from an ``as_dict`` dump.

    Histograms contribute ``name/sum`` and ``name/count`` series (the
    bucket layout is an export detail, not behaviour).
    """
    flat: dict[str, float] = {}
    for name, series in doc.items():
        for entry in series:
            labels = ",".join(f"{k}={v}" for k, v in
                              sorted(entry.get("labels", {}).items()))
            key = f"{name}{{{labels}}}" if labels else name
            value = entry.get("value")
            if isinstance(value, dict):  # histogram snapshot
                flat[key + "/sum"] = float(value.get("sum", 0.0))
                flat[key + "/count"] = float(value.get("count", 0))
            else:
                flat[key] = float(value)
    return flat


def diff_metrics(baseline: dict, candidate: dict) -> dict:
    """Series-level deltas between two metrics snapshots."""
    base, cand = _flatten_metrics(baseline), _flatten_metrics(candidate)
    changed = {}
    for key in sorted(set(base) & set(cand)):
        if base[key] != cand[key]:
            changed[key] = {"baseline": base[key],
                            "candidate": cand[key],
                            "delta": cand[key] - base[key]}
    return {
        "added": sorted(set(cand) - set(base)),
        "removed": sorted(set(base) - set(cand)),
        "changed": changed,
        "identical": not changed and set(base) == set(cand),
    }


def find_regressions(diff: dict, p95_tolerance: float = 0.10,
                     ) -> list[str]:
    """Classify which deltas of a profile diff are regressions.

    A delta is a regression when it makes the candidate *worse*: a
    reject reason the baseline never hit, a span/event type that
    disappeared, a span or response p95 more than ``p95_tolerance``
    slower, or more SLO violations / permanent failures.  Improvements
    (faster spans, fewer rejects) are deltas but not regressions.
    """
    regressions: list[str] = []
    for name in diff["missing_names"]:
        regressions.append(f"span/event type disappeared: {name}")
    for reason, d in diff["reject_deltas"].items():
        if d["baseline"] == 0 and d["candidate"] > 0:
            regressions.append(
                f"new reject reason: {reason} "
                f"(x{d['candidate']})")
    for name, shift in diff["span_shifts"].items():
        if shift["ratio"] > 1.0 + p95_tolerance:
            regressions.append(
                f"span p95 regression: {name} "
                f"{shift['baseline_p95_s']:.4f}s -> "
                f"{shift['candidate_p95_s']:.4f}s "
                f"({shift['ratio']:.2f}x)")
    for key in ("response_p95_s", "wait_p95_s"):
        d = diff["decision_deltas"].get(key)
        if d and d["baseline"] > 0 \
                and d["candidate"] > d["baseline"] * (1 + p95_tolerance):
            regressions.append(
                f"{key} regression: {d['baseline']:.2f}s -> "
                f"{d['candidate']:.2f}s")
    d = diff["decision_deltas"].get("permanent_failures")
    if d and d["delta"] > 0:
        regressions.append(
            f"permanent failures increased: {d['baseline']} -> "
            f"{d['candidate']}")
    for rule, d in diff["slo_deltas"].items():
        if d["delta"] > 0:
            regressions.append(
                f"more SLO violations of '{rule}': "
                f"{d['baseline']} -> {d['candidate']}")
    return regressions


def load_diff_input(path: "str | Path") -> tuple[str, object]:
    """Detect and load one diff operand.

    Returns ``("profile", doc)`` for a ``report --format json``
    document, ``("metrics", doc)`` for a ``MetricsRegistry`` JSON dump,
    or ``("trace", events)`` for a raw JSONL trace.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.strip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict):
            if "spans" in doc and "decisions" in doc:
                return "profile", doc
            if doc and all(
                    isinstance(v, list) and v
                    and isinstance(v[0], dict) and "kind" in v[0]
                    for v in doc.values()):
                return "metrics", doc
            # fall through: a single-line JSONL trace is also a dict
    return "trace", load_trace_events(path)


def format_diff(diff: dict, regressions: list[str]) -> str:
    """Human-readable rendering of a profile diff."""
    if diff["identical"]:
        return "traces are semantically identical (zero deltas)"
    rows = []
    for name in diff["new_names"]:
        rows.append(["new type", name, "-", "-"])
    for name in diff["missing_names"]:
        rows.append(["missing type", name, "-", "-"])
    for bucket, label in [("count_deltas", "count"),
                          ("reject_deltas", "reject"),
                          ("eviction_deltas", "evict"),
                          ("decision_deltas", "decision"),
                          ("slo_deltas", "slo")]:
        for key, d in diff[bucket].items():
            rows.append([label, key,
                         _fmt(d["baseline"]), _fmt(d["candidate"])])
    for name, shift in diff["span_shifts"].items():
        rows.append(["p95 shift", name,
                     f"{shift['baseline_p95_s']:.4f}s",
                     f"{shift['candidate_p95_s']:.4f}s"])
    parts = [format_table(
        ["kind", "what", "baseline", "candidate"], rows,
        title="semantic deltas")]
    if regressions:
        parts.append("")
        parts.append(f"{len(regressions)} regression(s):")
        parts.extend(f"  - {r}" for r in regressions)
    else:
        parts.append("")
        parts.append("deltas present, none classified as regression")
    return "\n".join(parts)


def _fmt(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return str(value)
