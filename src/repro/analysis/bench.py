"""Perf-trajectory files: schema, validation, append, regression gate.

``BENCH_perf.json`` / ``BENCH_robustness.json`` are the repo's memory
of how fast it used to be.  Before this module they were schema-free
hand-edits -- every entry shaped differently, nothing checked, nothing
gated -- so a regression in an already-measured number was invisible
until the next human re-anchor.  This module gives them a contract:

- **schema** (version :data:`BENCH_SCHEMA_VERSION`): a bench document
  is ``{"bench": <name>, "schema": 1, "entries": [...]}``; every entry
  carries ``anchor`` (the measurement's identity, e.g.
  ``"pr7-array-kernel"``), ``date`` (ISO ``YYYY-MM-DD``), optional
  ``fingerprint`` (the campaign/config content address the numbers came
  from, ``None`` for hand measurements), and ``metrics`` -- a nested
  dict whose leaves are finite numbers;
- **validator** (:func:`validate_doc` / :func:`load_bench`) enforcing
  that shape, used by tests and the ``bench-trajectory`` CI job;
- **append** (:func:`append_entry`, the ``repro bench append`` CLI)
  so campaigns extend the trajectory mechanically;
- **gate** (:func:`trajectory_gate`): within each anchor, consecutive
  entries' shared metrics must stay inside a tolerance band.  Metric
  direction is inferred from the name (walls, pauses and latencies
  must not grow; throughputs and goodputs must not collapse); metrics
  with no recognizable direction are informational and never gate.

The default band is deliberately wide (4x): CI machines vary wildly,
and the gate exists to catch order-of-magnitude rot between re-anchors,
not 10% noise -- ``repro diff`` does the precise comparisons.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "validate_entry",
    "validate_doc",
    "load_bench",
    "append_entry",
    "merge_metrics",
    "flatten_metrics",
    "metric_direction",
    "trajectory_gate",
    "format_trajectory",
]

BENCH_SCHEMA_VERSION = 1

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")

#: substring / suffix patterns inferring a metric's good direction.
#: Higher-better wins ties ("requests_per_s" ends in "_s" but is a
#: rate), so it is checked first.
_HIGHER_BETTER = ("per_s", "goodput", "throughput", "utilization",
                  "speedup", "hit_rate")
_LOWER_BETTER_SUFFIX = ("_s", "_ms", "_us")
_LOWER_BETTER_SUBSTR = ("wall", "pause", "latency", "overhead",
                        "evictions", "violations", "interruptions")


class BenchSchemaError(ValueError):
    """A BENCH_*.json document violates the trajectory schema."""


def _check_metrics(node, path: str, errors: list[str]) -> None:
    if isinstance(node, dict):
        if not node:
            errors.append(f"{path}: empty metrics group")
        for key, value in node.items():
            if not isinstance(key, str) or not key:
                errors.append(f"{path}: non-string metric key "
                              f"{key!r}")
                continue
            _check_metrics(value, f"{path}.{key}", errors)
    elif isinstance(node, bool) or not isinstance(node, (int, float)):
        errors.append(f"{path}: leaf must be a number, "
                      f"got {type(node).__name__}")
    elif node != node or node in (float("inf"), float("-inf")):
        errors.append(f"{path}: leaf must be finite, got {node!r}")


def validate_entry(entry, where: str = "entry") -> list[str]:
    """Schema errors of one trajectory entry (empty when valid)."""
    errors: list[str] = []
    if not isinstance(entry, dict):
        return [f"{where}: must be an object, "
                f"got {type(entry).__name__}"]
    anchor = entry.get("anchor")
    if not isinstance(anchor, str) or not anchor:
        errors.append(f"{where}: 'anchor' must be a non-empty string")
    date = entry.get("date")
    if not isinstance(date, str) or not _DATE_RE.match(date):
        errors.append(f"{where}: 'date' must be YYYY-MM-DD, "
                      f"got {date!r}")
    fingerprint = entry.get("fingerprint")
    if fingerprint is not None and (not isinstance(fingerprint, str)
                                    or not fingerprint):
        errors.append(f"{where}: 'fingerprint' must be a non-empty "
                      f"string or null")
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append(f"{where}: 'metrics' must be a non-empty object")
    else:
        _check_metrics(metrics, f"{where}.metrics", errors)
    unknown = sorted(set(entry)
                     - {"anchor", "date", "fingerprint", "metrics"})
    if unknown:
        errors.append(f"{where}: unknown fields {unknown}")
    return errors


def validate_doc(doc) -> None:
    """Raise :class:`BenchSchemaError` listing every schema problem."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise BenchSchemaError(
            f"document must be an object, got {type(doc).__name__}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append("'bench' must be a non-empty string")
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        errors.append(f"'schema' must be {BENCH_SCHEMA_VERSION}, "
                      f"got {doc.get('schema')!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        errors.append("'entries' must be a list")
    else:
        for i, entry in enumerate(entries):
            errors.extend(validate_entry(entry, where=f"entries[{i}]"))
    unknown = sorted(set(doc) - {"bench", "schema", "entries"})
    if unknown:
        errors.append(f"unknown top-level fields {unknown}")
    if errors:
        raise BenchSchemaError("; ".join(errors))


def load_bench(path: "str | Path") -> dict:
    """Load and validate one BENCH_*.json document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path}: not valid JSON: {exc}") \
            from exc
    try:
        validate_doc(doc)
    except BenchSchemaError as exc:
        raise BenchSchemaError(f"{path}: {exc}") from exc
    return doc


def append_entry(path: "str | Path", entry: dict,
                 bench: "str | None" = None) -> dict:
    """Validate ``entry`` and append it to the trajectory at ``path``.

    A missing file starts a fresh document (``bench`` defaults to the
    ``BENCH_<name>.json`` stem).  The whole document re-validates after
    the append, is written back with sorted keys, and is returned.
    """
    path = Path(path)
    errors = validate_entry(entry)
    if errors:
        raise BenchSchemaError("; ".join(errors))
    if path.exists():
        doc = load_bench(path)
    else:
        if bench is None:
            stem = path.stem
            bench = stem[len("BENCH_"):].lower() \
                if stem.startswith("BENCH_") else stem
        doc = {"bench": bench, "schema": BENCH_SCHEMA_VERSION,
               "entries": []}
    doc["entries"].append(entry)
    validate_doc(doc)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    return doc


def merge_metrics(path: "str | Path", anchor: str, metrics: dict,
                  bench: "str | None" = None,
                  date: "str | None" = None,
                  fingerprint: "str | None" = None) -> dict:
    """Merge ``metrics`` into the entry for ``anchor`` at ``path``.

    The re-anchoring write path for the benchmark harness: each bench
    re-run overwrites its anchor's metric fields in place (one entry
    per anchor, never history), while :func:`append_entry` -- the
    campaign/CI path -- grows the trajectory.  Creates the entry (and
    the document) when missing; the result always re-validates.
    """
    path = Path(path)
    if path.exists():
        doc = load_bench(path)
    else:
        if bench is None:
            stem = path.stem
            bench = stem[len("BENCH_"):].lower() \
                if stem.startswith("BENCH_") else stem
        doc = {"bench": bench, "schema": BENCH_SCHEMA_VERSION,
               "entries": []}
    for entry in doc["entries"]:
        if entry["anchor"] == anchor:
            entry["metrics"].update(metrics)
            if date is not None:
                entry["date"] = date
            if fingerprint is not None:
                entry["fingerprint"] = fingerprint
            break
    else:
        if date is None:
            from datetime import date as _date
            date = _date.today().isoformat()
        doc["entries"].append({"anchor": anchor, "date": date,
                               "fingerprint": fingerprint,
                               "metrics": dict(metrics)})
    validate_doc(doc)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    return doc


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def flatten_metrics(metrics: dict, prefix: str = "") -> dict[str, float]:
    """Nested metrics dict -> ``{"a.b.c": value}``."""
    out: dict[str, float] = {}
    for key, value in metrics.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=path))
        else:
            out[path] = float(value)
    return out


def metric_direction(name: str) -> "str | None":
    """``"higher"`` / ``"lower"`` / ``None`` (informational)."""
    leaf = name.rsplit(".", 1)[-1].lower()
    if any(hint in leaf for hint in _HIGHER_BETTER):
        return "higher"
    if leaf.endswith(_LOWER_BETTER_SUFFIX) \
            or any(hint in leaf for hint in _LOWER_BETTER_SUBSTR):
        return "lower"
    return None


def trajectory_gate(doc: dict, band: float = 4.0) -> list[str]:
    """Out-of-band regressions across the trajectory (empty = pass).

    Within each anchor, every entry is compared to its predecessor:
    a lower-is-better metric may not grow past ``band`` times the
    previous value, a higher-is-better metric may not fall below
    ``1/band`` of it.  Different anchors measure different things and
    are never compared; a fresh anchor is its own baseline.
    """
    if band <= 1.0:
        raise ValueError(f"band must be > 1, got {band}")
    problems: list[str] = []
    last_by_anchor: dict[str, tuple[int, dict[str, float]]] = {}
    for i, entry in enumerate(doc.get("entries", [])):
        flat = flatten_metrics(entry["metrics"])
        anchor = entry["anchor"]
        previous = last_by_anchor.get(anchor)
        if previous is not None:
            prev_i, prev_flat = previous
            for name in sorted(set(flat) & set(prev_flat)):
                direction = metric_direction(name)
                if direction is None:
                    continue
                old, new = prev_flat[name], flat[name]
                if old <= 0 or new <= 0:
                    continue  # ratios are meaningless at zero
                if direction == "lower" and new > old * band:
                    problems.append(
                        f"{anchor}: {name} regressed "
                        f"{old:g} -> {new:g} "
                        f"(x{new / old:.2f} > band x{band:g}, "
                        f"entries {prev_i} -> {i})")
                elif direction == "higher" and new < old / band:
                    problems.append(
                        f"{anchor}: {name} collapsed "
                        f"{old:g} -> {new:g} "
                        f"(x{new / old:.2f} < band x{1 / band:.2f}, "
                        f"entries {prev_i} -> {i})")
        last_by_anchor[anchor] = (i, flat)
    return problems


def format_trajectory(docs: "list[dict]") -> str:
    """The consolidated REPORT.md section: one row per entry."""
    from repro.analysis.report import format_table
    rows = []
    for doc in docs:
        for entry in doc["entries"]:
            flat = flatten_metrics(entry["metrics"])
            headline = ", ".join(
                f"{name.rsplit('.', 1)[-1]}={value:g}"
                for name, value in sorted(flat.items())[:3])
            if len(flat) > 3:
                headline += f", +{len(flat) - 3} more"
            fingerprint = entry.get("fingerprint")
            rows.append([
                doc["bench"], entry["anchor"], entry["date"],
                fingerprint[:12] if fingerprint else "-",
                headline,
            ])
    return format_table(
        ["bench", "anchor", "date", "fingerprint", "metrics"], rows,
        title="perf trajectory (BENCH_*.json, schema v"
              f"{BENCH_SCHEMA_VERSION})")
