"""Consolidated experiment report.

Each bench persists its table under ``benchmarks/results/``;
:func:`build_report` stitches them into one Markdown document ordered
like the paper's evaluation section, so a full
``pytest benchmarks/ --benchmark-only`` run leaves a single reviewable
artifact behind.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["REPORT_ORDER", "build_report", "write_report"]

#: (result-file stem, section heading) in the paper's narrative order.
REPORT_ORDER: tuple[tuple[str, str], ...] = (
    ("fig1a", "Fig. 1a — motivation: application footprints"),
    ("fig1b", "Fig. 1b — motivation: capacity growth"),
    ("table1", "Table 1 — measured method capabilities"),
    ("table2", "Table 2 — accelerator designs"),
    ("fig7", "Fig. 7 / §5.3 — fabric partition"),
    ("fig7_ablation", "§3.5.2 — buffer-removal ablation"),
    ("table4", "Table 4 — bare-metal performance"),
    ("table4_sweep", "Benchmark set 1 — traffic sweep"),
    ("fig8", "Fig. 8 — compile-time breakdown"),
    ("fig8_partition_quality", "§5.4 — partition quality"),
    ("fig8_combinations", "§5.4 — compilation coupling"),
    ("partition_scaling", "§4 — partition runtime scaling"),
    ("fig9", "Fig. 9 — normalized response time"),
    ("fig10", "Fig. 10 / §5.5 — utilization & concurrency"),
    ("fig10_spanning", "§5.5 — spanning per workload set"),
    ("fig10_snapshots", "Fig. 10 — occupancy snapshots"),
    ("li_interface", "§3.2 — LI interface, cycle level"),
    ("ablation_policy", "Ablation — allocation policy"),
    ("ablation_backfill", "Ablation — queueing discipline"),
    ("ablation_partition", "Ablation — partition algorithm"),
    ("ablation_fm", "Ablation — vs FM min-cut"),
    ("ablation_granularity", "Ablation — block granularity"),
    ("ablation_sharing", "Ablation — function sharing"),
    ("ablation_defrag", "Ablation — defragmentation"),
    ("ablation_hardened", "Ablation — hardened regions"),
    ("ablation_dram", "Ablation — DRAM contention"),
    ("sensitivity_load", "Sensitivity — offered load"),
    ("sensitivity_arrivals", "Sensitivity — arrival shape"),
    ("sensitivity_fairness", "Sensitivity — fairness"),
    ("hetero_cluster", "§7 — heterogeneous cluster"),
    ("fault_tolerance", "Availability — board failures & recovery"),
    ("defrag_recovery",
     "Live migration — rejected-request recovery vs static allocation"),
    ("scalability", "§6 — System-Layer hot path at scale"),
    ("scalability_smoke", "§6 — scalability smoke (CI budget)"),
    ("observability_determinism", "Observability — trace determinism"),
    ("observability", "Observability — tracer overhead"),
    ("health_slo", "Health — SLO rules under the demo outage"),
    ("health_overhead", "Health — timeline/SLO engine overhead"),
    ("compile_cache", "Compile service — warm-cache economics"),
    ("compile_parallel", "Compile service — parallel cold compile"),
    ("kernel_scale", "Scale — array runtime kernel (1024 boards)"),
    ("robustness", "Robustness — degraded-mode vs recovery-only"),
    ("campaign_matrix", "Campaigns — standard scenario grid"),
    ("perf_trajectory", "Perf trajectory — BENCH_*.json history"),
)


def build_report(results_dir: "str | Path") -> str:
    """Assemble the Markdown report from whatever results exist."""
    results_dir = Path(results_dir)
    sections = []
    missing = []
    for stem, heading in REPORT_ORDER:
        path = results_dir / f"{stem}.txt"
        if path.exists():
            body = path.read_text().rstrip()
            sections.append(f"## {heading}\n\n```text\n{body}\n```\n")
        else:
            missing.append(stem)
    header = ["# ViTAL reproduction — experiment report", ""]
    header.append(f"{len(sections)} of {len(REPORT_ORDER)} experiment "
                  "artifacts present.")
    if missing:
        header.append(f"Missing (bench not yet run): "
                      f"{', '.join(missing)}.")
    header.append("")
    return "\n".join(header) + "\n" + "\n".join(sections)


def write_report(results_dir: "str | Path",
                 output: "str | Path | None" = None) -> Path:
    """Write the report next to the results; returns the path."""
    results_dir = Path(results_dir)
    output = Path(output) if output else results_dir / "REPORT.md"
    output.write_text(build_report(results_dir))
    return output
