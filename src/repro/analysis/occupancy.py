"""Cluster-occupancy rendering (the Fig. 10 snapshots, in ASCII).

Fig. 10 of the paper shows how relocation lets applications land in
whatever blocks are free.  These helpers render the same picture from
live controller state or from an audit log: one row per board, one cell
per physical block, letters identifying the deployment occupying each
block.
"""

from __future__ import annotations

from repro.obs.stats import fragmentation_index
from repro.runtime.audit import AuditEvent, AuditLog

__all__ = ["render_occupancy", "occupancy_timeline",
           "fragmentation_index", "cluster_fragmentation"]


def cluster_fragmentation(controller) -> float:
    """Fragmentation index of a live controller's free space.

    Thin wrapper over :func:`repro.obs.stats.fragmentation_index` (the
    shared math also feeding the health timeline and the controller's
    live ``fragmentation_index`` gauge) for post-hoc analysis code that
    holds a controller rather than raw free counts.
    """
    return fragmentation_index(
        controller.resource_db.free_counts_by_board())

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def _glyph(request_id: int) -> str:
    return _GLYPHS[request_id % len(_GLYPHS)]


def render_occupancy(controller) -> str:
    """Render the controller's current block map.

    ``.`` is a free block; letters identify deployments (stable per
    request id, recycled after 62 ids).
    """
    cluster = controller.cluster
    owner_of = {}
    for deployment in controller.running():
        for address in deployment.placement.addresses:
            owner_of[address] = deployment.request_id
    lines = []
    for board in cluster.boards:
        cells = []
        for block in range(board.num_blocks):
            rid = owner_of.get((board.board_id, block))
            cells.append("." if rid is None else _glyph(rid))
        lines.append(f"board{board.board_id} [{''.join(cells)}]")
    return "\n".join(lines)


def occupancy_timeline(audit: AuditLog, cluster,
                       max_snapshots: int = 12) -> str:
    """Replay an audit log into a sequence of occupancy snapshots.

    Block-accurate for deploys/releases recorded by the system
    controller (which logs boards and block counts); migrations update
    board assignments.  Snapshots are sampled evenly across the log.
    """
    # reconstruct block maps from log entries
    state: dict[tuple[int, int], int] = {}   # address -> request id
    held: dict[int, list[tuple[int, int]]] = {}
    frames: list[tuple[float, str]] = []

    def free_blocks_on(board: int) -> list[int]:
        board_obj = cluster.board(board)
        used = {blk for (b, blk) in state if b == board}
        return [i for i in range(board_obj.num_blocks)
                if i not in used]

    def render() -> str:
        lines = []
        for board in cluster.boards:
            cells = []
            for block in range(board.num_blocks):
                rid = state.get((board.board_id, block))
                cells.append("." if rid is None else _glyph(rid))
            lines.append(f"board{board.board_id} [{''.join(cells)}]")
        return "\n".join(lines)

    for entry in audit.entries():
        if entry.event is AuditEvent.DEPLOY \
                and "boards" in entry.detail:
            blocks_left = entry.detail["blocks"]
            addresses = []
            for board in entry.detail["boards"]:
                free = free_blocks_on(board)
                take = free[:blocks_left] if board \
                    == entry.detail["boards"][-1] else free
                for blk in take:
                    if blocks_left == 0:
                        break
                    addresses.append((board, blk))
                    blocks_left -= 1
            for address in addresses:
                state[address] = entry.request_id
            held[entry.request_id] = addresses
        elif entry.event is AuditEvent.RELEASE:
            for address in held.pop(entry.request_id, ()):
                state.pop(address, None)
        else:
            continue
        frames.append((entry.time_s, render()))

    if not frames:
        return "(no deployments in log)"
    step = max(1, len(frames) // max_snapshots)
    sampled = frames[::step][:max_snapshots]
    out = []
    for time_s, frame in sampled:
        out.append(f"t={time_s:8.1f}s\n{frame}")
    return "\n\n".join(out)
