"""Legacy setup shim.

The execution environment has no network access and no `wheel` package, so
PEP-517 editable installs fail; this shim lets `pip install -e .
--no-use-pep517` work with the stock setuptools.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
