"""Protection and isolation in a shared cluster (Sections 3.2 / 3.4).

Two tenants share one board.  Each accesses its own virtual address
space through the service region's translation unit; the access monitor
records the rogue tenant's attempt to read outside its allocation, and
the block-level isolation check confirms no physical block or DRAM range
is shared.

Run:  python examples/secure_multi_tenancy.py
"""

from repro import ViTALStack, custom_kernel
from repro.peripherals.dram import ProtectionError
from repro.peripherals.monitor import AccessMonitor


def main() -> None:
    stack = ViTALStack()
    alice = stack.deploy(custom_kernel(
        "alice-inference", lut=60e3, dff=70e3, dsp=96, bram_mb=5.0))
    bob = stack.deploy(custom_kernel(
        "bob-analytics", lut=90e3, dff=100e3, dsp=0, bram_mb=8.0))
    print(f"alice on blocks {alice.placement.addresses}")
    print(f"bob   on blocks {bob.placement.addresses}")
    stack.check_isolation()
    print("block-level isolation verified: no physical block shared\n")

    board = alice.placement.boards[0]
    memory = stack.controller.memories[board]
    monitor = AccessMonitor(memory)

    own = monitor.access(alice.tenant, 0x1000)
    print(f"alice reads her vaddr 0x1000 -> phys {own:#x} (ok)")

    bob_seg = memory.segments_of(bob.tenant)
    if bob_seg and bob.placement.boards[0] == board:
        print("alice now tries to scan far beyond her allocation...")
    try:
        monitor.access(alice.tenant, 1 << 40)
    except ProtectionError as exc:
        print(f"  blocked by the translation unit: {exc}")
    print(f"monitor: {monitor.access_count} accesses, "
          f"{monitor.fault_count} faults recorded")

    memory.check_isolation()
    print("DRAM segments of all tenants verified disjoint")

    stack.release(alice)
    stack.release(bob)
    print("tenants released; cluster clean")


if __name__ == "__main__":
    main()
